#!/usr/bin/env python
"""Trace archival workflow: freeze a workload, replay it anywhere.

The paper stresses that evaluating I-CASH needs *content-bearing* traces
("I/O address traces are not sufficient because deltas are content
dependent").  This example generates a SPEC-sfs style stream, saves it to
a single .npz file, and replays the archived trace — byte-identical —
into two different architectures.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.experiments.systems import make_system
from repro.workloads import SpecSFSWorkload
from repro.workloads.trace_io import load_trace, save_trace


def main() -> None:
    workload = SpecSFSWorkload(scale=0.25, n_requests=2500, seed=42)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "specsfs.npz"
        count = save_trace(path, workload.requests())
        size_mb = path.stat().st_size / 2**20
        print(f"archived {count} requests (full 4 KB payloads included) "
              f"to {path.name}: {size_mb:.1f} MiB compressed")

        for name in ("icash", "fusion-io"):
            system = make_system(name, workload)
            system.ingest()
            total_latency = 0.0
            replayed = 0
            for request in load_trace(path):
                total_latency += system.process(request)
                replayed += 1
            reads = system.stats.latency("read")
            writes = system.stats.latency("write")
            print(f"\nreplayed {replayed} archived requests into {name}:")
            print(f"  mean read : {reads.mean_us:9.1f} µs "
                  f"(n={reads.count})")
            print(f"  mean write: {writes.mean_us:9.1f} µs "
                  f"(n={writes.count})")
            print(f"  SSD writes: {system.ssd_write_ops}")

    print("\nthe archive replays identically every time — diff two "
          "storage builds on exactly the same byte stream.")


if __name__ == "__main__":
    main()
