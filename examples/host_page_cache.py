#!/usr/bin/env python
"""What the OS page cache hides — and what it cannot.

The paper measures block-level response times *below* the host page
cache, but applications live above it.  This example wraps the pure-SSD
baseline and I-CASH with the same host cache and shows the two regimes:

* with a generous cache, repeated reads are absorbed and the two
  architectures look nearly identical from above;
* the *sync* path (fsync-style flushes, here modelled by periodic cache
  flushes) still reaches the storage, and there I-CASH's delta writes
  keep their advantage.

Run:  python examples/host_page_cache.py
"""

from repro.experiments.systems import make_system
from repro.sim.pagecache import HostCachedSystem
from repro.workloads import SysBenchWorkload


def run(name: str, cache_fraction: float, sync_every: int = 0):
    workload = SysBenchWorkload(n_requests=6000)
    system = make_system(name, workload)
    if cache_fraction > 0:
        system = HostCachedSystem(
            system, max(8, int(workload.n_blocks * cache_fraction)))
    system.ingest()
    total = 0.0
    sync_total = 0.0
    syncs = 0
    for index, request in enumerate(workload.requests()):
        total += system.process(request)
        if sync_every and (index + 1) % sync_every == 0:
            sync_total += system.flush()
            syncs += 1
    reads = system.stats.latency("read")
    writes = system.stats.latency("write")
    return reads.mean_us, writes.mean_us, \
        (sync_total / syncs * 1e6 if syncs else 0.0)


def main() -> None:
    print(f"{'system':>10} {'cache':>6} {'read_us':>9} {'write_us':>9} "
          f"{'sync_us':>10}")
    for name in ("fusion-io", "icash"):
        for fraction in (0.0, 0.25):
            read_us, write_us, sync_us = run(name, fraction,
                                             sync_every=500)
            label = f"{fraction:.0%}" if fraction else "none"
            print(f"{name:>10} {label:>6} {read_us:>9.1f} "
                  f"{write_us:>9.1f} {sync_us:>10.1f}")
    print("\nabove a large host cache the architectures converge on the "
          "hit path;\nthe periodic sync column is where the storage "
          "design still shows.")


if __name__ == "__main__":
    main()
