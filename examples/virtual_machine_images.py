#!/usr/bin/env python
"""Virtual-machine image sprawl: the paper's multi-VM scenario.

Section 3.1, case 2: when VMs are cloned from a golden image, "the
difference between data blocks of a virtual machine image and the data
blocks of the native machine are very small and therefore it makes sense
to store only the difference/delta between the two."

This example composes five TPC-C VMs cloned from one image, runs them
concurrently against I-CASH and against a pure-SSD system sized for the
*whole* data set, and shows how cross-VM similarity lets I-CASH match it
with a tenth of the flash.

Run:  python examples/virtual_machine_images.py
"""

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.workloads import MultiVMWorkload, TPCCWorkload


def main() -> None:
    workload = MultiVMWorkload(TPCCWorkload, n_vms=5, scale=0.2,
                               n_requests_per_vm=1500, seed=2011)
    print(f"composed workload: {workload.name}")
    print(f"  {workload.n_vms} VM images x {workload.vm_blocks} blocks "
          f"= {workload.n_blocks} blocks "
          f"({workload.data_size_bytes / 2**20:.0f} MiB)")
    similarity = workload.cross_vm_similarity()
    print(f"  cross-VM image similarity: {similarity:.1%} of blocks are "
          f"byte-identical to the golden image")

    results = {}
    for name in ("fusion-io", "icash"):
        wl = MultiVMWorkload(TPCCWorkload, n_vms=5, scale=0.2,
                             n_requests_per_vm=1500, seed=2011)
        system = make_system(name, wl)
        results[name] = run_benchmark(wl, system, verify_reads=True)
        print(f"\n--- {name} ---")
        r = results[name]
        print(f"  transactions/s : {r.transactions_per_s:9.1f}")
        print(f"  mean read      : {r.read_mean_us:9.1f} µs")
        print(f"  mean write     : {r.write_mean_us:9.1f} µs")
        print(f"  runtime SSD writes: {r.ssd_write_ops}")
        print(f"  reads verified : {r.verified_reads}")
        if name == "icash":
            counts = system.block_kind_counts()
            total = sum(counts.values())
            print(f"  block population: "
                  + ", ".join(f"{k} {v / total:.0%}"
                              for k, v in counts.items()))
            print(f"  SSD budget: {system.config.ssd_capacity_blocks} "
                  f"blocks (~{system.config.ssd_capacity_blocks / workload.n_blocks:.0%} "
                  f"of the data set) vs fusion-io's 100%")

    ratio = results["icash"].transactions_per_s \
        / results["fusion-io"].transactions_per_s
    print(f"\nI-CASH vs pure SSD on 5 cloned VMs: {ratio:.2f}x "
          f"throughput with one tenth of the flash")
    print("(the paper's Figure 15 reports 2.8x on real hardware, where "
          "the pure-SSD card also saturated under 5 VMs' writes)")


if __name__ == "__main__":
    main()
