#!/usr/bin/env python
"""Quickstart: one I-CASH storage element, end to end.

Builds an I-CASH element over a small data set with strong content
locality, performs the offline ingest (reference selection + delta
packing), issues reads and writes, and prints what the architecture did
internally: how few reference blocks cover the population, where reads
were served from, and how rarely the SSD was written.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ICASHConfig, ICASHController

BLOCK = 4096


def build_dataset(n_blocks: int = 2048, n_families: int = 24,
                  seed: int = 1) -> np.ndarray:
    """Blocks clustered into content families (think: DB pages sharing a
    schema, VM images sharing an OS)."""
    rng = np.random.default_rng(seed)
    bases = rng.integers(0, 256, (n_families, BLOCK), dtype=np.uint8)
    dataset = bases[rng.integers(0, n_families, n_blocks)].copy()
    for lba in range(n_blocks):  # a little private noise per block
        idx = rng.integers(0, BLOCK, 24)
        dataset[lba, idx] = rng.integers(0, 256, 24)
    return dataset


def main() -> None:
    dataset = build_dataset()
    config = ICASHConfig(
        ssd_capacity_blocks=256,           # ~12% of the data set
        data_ram_bytes=128 * BLOCK,
        delta_ram_bytes=2 * 1024 * 1024,
        max_virtual_blocks=8192,
        log_blocks=2048,
        scan_interval=500,
    )
    icash = ICASHController(dataset.copy(), config)

    print("=== ingest: offline reference selection + delta packing ===")
    setup_time = icash.ingest()
    counts = icash.block_kind_counts()
    total = sum(counts.values())
    print(f"setup time (not charged to the benchmark): {setup_time:.3f}s")
    for kind, count in counts.items():
        print(f"  {kind:<12} {count:>5} blocks ({count / total:5.1%})")

    print("\n=== a write becomes a delta, not a device write ===")
    rng = np.random.default_rng(7)
    target = next(iter(icash.delta_map_snapshot()))
    content = dataset[target].copy()
    content[128:192] = rng.integers(0, 256, 64)   # small partial update
    latency = icash.write(target, [content])
    print(f"write to block {target}: {latency * 1e6:.1f} µs "
          f"(SSD untouched: {icash.stats.count('delta_writes')} delta "
          f"write(s) buffered in RAM)")

    print("\n=== a read reconstructs reference + delta ===")
    latency, (out,) = icash.read(target)
    assert np.array_equal(out, content), "content must round-trip!"
    print(f"read of block {target}: {latency * 1e6:.1f} µs "
          f"(SSD reference read + RAM delta + decompression)")

    print("\n=== a random-access burst ===")
    for i in range(2000):
        lba = int(rng.integers(0, dataset.shape[0]))
        if rng.random() < 0.3:
            block = dataset[lba].copy()
            block[0:64] = rng.integers(0, 256, 64)
            dataset[lba] = block
            icash.write(lba, [block])
        else:
            icash.read(lba)
    icash.flush()

    print(icash.stats.format_table("controller statistics"))
    print(f"\nSSD write ops (whole run): {icash.ssd.write_ops} — the "
          f"reason Table 6 projects a longer SSD life")
    print(f"HDD ops: {icash.hdd.read_ops} reads / "
          f"{icash.hdd.write_ops} writes (log appends are sequential)")


if __name__ == "__main__":
    main()
