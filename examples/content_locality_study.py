#!/usr/bin/env python
"""Measuring the content locality I-CASH feeds on (paper Section 2.2).

The paper's premise is empirical: storage blocks are full of identical
and near-identical content, and a typical write changes only 5-20% of a
block.  This example measures those properties for each benchmark's
data set and write stream, then shows what they buy a live I-CASH
element: the reference-coverage report (the "1% of blocks anchor 85%"
structure of Section 5.1) and a latency histogram of where reads were
actually served from.

Run:  python examples/content_locality_study.py
"""

from repro.analysis import (analyze_dataset, analyze_writes,
                            reference_coverage)
from repro.experiments.systems import make_system
from repro.sim.stats import LatencyStats
from repro.workloads import (LoadSimWorkload, SysBenchWorkload,
                             TPCCWorkload)


def study_workload(workload_cls) -> None:
    workload = workload_cls(scale=0.25, n_requests=2000)
    dataset = workload.build_dataset()
    locality = analyze_dataset(dataset, sample=1500)
    writes = analyze_writes(dataset, workload.requests())
    print(f"[{workload.name}]")
    print(f"  data set : {locality.summary()}")
    print(f"  writes   : {writes.summary()}")


def main() -> None:
    print("=== content locality per benchmark ===")
    for cls in (SysBenchWorkload, TPCCWorkload, LoadSimWorkload):
        study_workload(cls)
    print("\n(note LoadSim's weak locality — exactly why it is the one "
          "benchmark\nwhere the paper's pure-SSD baseline wins)\n")

    print("=== what locality buys a live element ===")
    workload = SysBenchWorkload(n_requests=6000)
    system = make_system("icash", workload)
    system.ingest()
    reads = LatencyStats()
    for request in workload.requests():
        latency = system.process(request)
        if request.is_read:
            reads.record(latency)
    coverage = reference_coverage(system)
    print("coverage :", coverage.summary())
    print(f"(the paper reports 1% references anchoring 85% of blocks "
          f"for SysBench)\n")
    print("read-latency histogram (log bins — RAM/SSD hits vs the "
          "mechanical tail):")
    print(reads.histogram(bins=8))


if __name__ == "__main__":
    main()
