#!/usr/bin/env python
"""Database-server evaluation: the paper's Figure 10/11 experiment.

Runs the TPC-C style workload across all five storage architectures and
prints the throughput, response time, CPU-utilisation and SSD-write
tables the paper reports — measured next to the paper's published
numbers, with a pairwise-ordering shape check.

Run:  python examples/database_server.py
"""

from repro.experiments import figures
from repro.experiments.report import speedup_summary


def main() -> None:
    print("running TPC-C across five architectures "
          "(this replays one trace five times)...\n")
    fig10a = figures.figure10a()
    fig10b = figures.figure10b()
    fig11 = figures.figure11()

    for result in (fig10a, fig10b, fig11):
        print(result.render())
        print()

    tps = fig10a.measured
    print("headline speedups (paper: 1.14x over fusion-io, 1.45x over "
          "RAID0):")
    for baseline in ("fusion-io", "raid0"):
        speedup = speedup_summary(tps, baseline, better="higher")
        for key, value in speedup.items():
            print(f"  {key}: {value:.2f}x")

    icash_run = fig10a.runs["icash"]
    print("\nwhere I-CASH's time went:")
    print(f"  foreground I/O : {icash_run.io_time_s:8.3f} s")
    print(f"  background work: {icash_run.background_s:8.3f} s "
          f"(flushes, scans — off the critical path)")
    print(f"  app compute    : {icash_run.app_cpu_s:8.3f} s")
    print(f"  delta writes buffered: "
          f"{icash_run.counters.get('delta_writes', 0)}")
    print(f"  runtime SSD writes   : {icash_run.ssd_write_ops} "
          f"(vs {fig10a.runs['fusion-io'].ssd_write_ops} for pure SSD)")


if __name__ == "__main__":
    main()
