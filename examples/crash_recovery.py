#!/usr/bin/env python
"""Crash recovery: Section 3.3's reliability story, demonstrated.

I-CASH buffers deltas in RAM and flushes them to the HDD log
periodically; a crash loses at most the un-flushed window.  This example
runs a write-heavy burst, simulates a crash at three points (before any
flush, mid-stream, after a final flush) and reports exactly how many
blocks each recovery lost — and that after a flush, recovery is
byte-exact by replaying the delta log against the SSD reference blocks.

Run:  python examples/crash_recovery.py
"""

import numpy as np

from repro.core import ICASHConfig, ICASHController
from repro.core.recovery import recover

BLOCK = 4096


def build_family_dataset(n_blocks: int = 1024, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bases = rng.integers(0, 256, (16, BLOCK), dtype=np.uint8)
    dataset = bases[rng.integers(0, 16, n_blocks)].copy()
    for lba in range(n_blocks):
        idx = rng.integers(0, BLOCK, 24)
        dataset[lba, idx] = rng.integers(0, 256, 24)
    return dataset


def lost_blocks(controller: ICASHController,
                shadow: np.ndarray) -> int:
    image = recover(controller)
    return sum(1 for lba in range(shadow.shape[0])
               if not np.array_equal(image.read(lba), shadow[lba]))


def main() -> None:
    dataset = build_family_dataset()
    shadow = dataset.copy()
    # A long flush interval exaggerates the loss window on purpose.
    controller = ICASHController(dataset.copy(), ICASHConfig(
        ssd_capacity_blocks=128,
        data_ram_bytes=64 * BLOCK,
        delta_ram_bytes=1 << 20,
        max_virtual_blocks=4096,
        log_blocks=2048,
        scan_interval=400,
        flush_interval=100_000,      # only explicit flushes
        flush_dirty_count=100_000,
    ))
    controller.ingest()
    rng = np.random.default_rng(99)

    def write_burst(n: int) -> None:
        for _ in range(n):
            lba = int(rng.integers(0, shadow.shape[0]))
            content = shadow[lba].copy()
            content[0:80] = rng.integers(0, 256, 80)
            shadow[lba] = content
            controller.write(lba, [content])

    write_burst(300)
    loss = lost_blocks(controller, shadow)
    print(f"crash after 300 unflushed writes: {loss} blocks recover to "
          f"an older version (bounded by the dirty set)")

    controller.flush()
    print(f"crash right after a flush:        "
          f"{lost_blocks(controller, shadow)} blocks lost — the log "
          f"replay is byte-exact")

    write_burst(150)
    mid_loss = lost_blocks(controller, shadow)
    controller.flush()
    final_loss = lost_blocks(controller, shadow)
    print(f"crash mid-second-burst:           {mid_loss} blocks stale")
    print(f"crash after the final flush:      {final_loss} blocks lost")

    image = recover(controller)
    print(f"\nrecovery sources: {image.logged_blocks} blocks rebuilt "
          f"from log deltas + SSD references; the rest from the HDD "
          f"data region and SSD spills")
    print("tune config.flush_interval / flush_dirty_count to trade the "
          "loss window against log-append batching (Section 3.3).")


if __name__ == "__main__":
    main()
