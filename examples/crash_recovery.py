#!/usr/bin/env python
"""Crash recovery and fault injection: Section 3.3, adversarially.

I-CASH buffers deltas in RAM and flushes them to the HDD log
periodically; a crash loses at most the un-flushed window, reference
blocks carry content signatures, and a dead disk rebuilds while the
array keeps serving.  This example drives all of that through the
fault-injection layer (`repro.sim.faults`, documented in
docs/RELIABILITY.md):

1. a seeded `FaultPlan` fires a power loss, an HDD failure and a
   silent-corruption fault inside one live event-engine run, and the
   resulting `FaultReport` shows each degraded-mode window;
2. an offline crash ladder (the original Section 3.3 demo) measures
   the data-loss window at three crash points via `core/recovery.py`;
3. a torn-log corruption shows replay degrading damaged blocks to
   their last durable content — never garbage.

Run:  python examples/crash_recovery.py
"""

import numpy as np

from repro.core import ICASHConfig, ICASHController
from repro.core.recovery import recover
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.faults import FaultPlan, FaultSpec, scrub_references
from repro.sim.load import OpenLoopLoad
from repro.sim.metrics import Monitor
from repro.workloads import SysBenchWorkload

BLOCK = 4096


def live_fault_run() -> None:
    """Three faults against one live run under open-loop load."""
    workload = SysBenchWorkload(n_requests=1500)
    system = make_system("icash", workload)
    plan = FaultPlan([
        FaultSpec("power_loss", at_request=500),
        FaultSpec("hdd_failure", at_request=800, rebuild_blocks=2048),
        FaultSpec("silent_corruption", at_request=1100),
    ], seed=42)
    monitor = Monitor(interval_s=0.02)
    result = run_benchmark(workload, system, engine="event",
                           load=OpenLoopLoad(3000.0, seed=42),
                           monitor=monitor, fault_plan=plan)
    print("=== live fault injection (event engine, 3000 req/s) ===")
    print(result.faults.render())
    print(f"foreground read p99 across the whole run: "
          f"{result.read_p99_us:.0f} us; "
          f"{len(result.slo_breaches)} SLO breach windows")
    print()


def crash_ladder() -> None:
    """The offline Section 3.3 demo: loss window at three crash points."""
    rng = np.random.default_rng(5)
    bases = rng.integers(0, 256, (16, BLOCK), dtype=np.uint8)
    dataset = bases[rng.integers(0, 16, 1024)].copy()
    for lba in range(1024):
        idx = rng.integers(0, BLOCK, 24)
        dataset[lba, idx] = rng.integers(0, 256, 24)
    shadow = dataset.copy()
    # A long flush interval exaggerates the loss window on purpose.
    controller = ICASHController(dataset.copy(), ICASHConfig(
        ssd_capacity_blocks=128,
        data_ram_bytes=64 * BLOCK,
        delta_ram_bytes=1 << 20,
        max_virtual_blocks=4096,
        log_blocks=2048,
        scan_interval=400,
        flush_interval=100_000,      # only explicit flushes
        flush_dirty_count=100_000,
    ))
    controller.ingest()
    writer = np.random.default_rng(99)

    def write_burst(n: int) -> None:
        for _ in range(n):
            lba = int(writer.integers(0, shadow.shape[0]))
            content = shadow[lba].copy()
            content[0:80] = writer.integers(0, 256, 80)
            shadow[lba] = content
            controller.write(lba, [content])

    def lost_blocks() -> int:
        image = recover(controller)
        return sum(1 for lba in range(shadow.shape[0])
                   if not np.array_equal(image.read(lba), shadow[lba]))

    print("=== crash ladder (offline recovery) ===")
    write_burst(300)
    print(f"crash after 300 unflushed writes: {lost_blocks()} blocks "
          f"recover to an older version "
          f"(dirty window: {controller.dirty_delta_count} deltas)")
    controller.flush()
    print(f"crash right after a flush:        {lost_blocks()} blocks "
          f"lost — the log replay is byte-exact")
    write_burst(150)
    mid_loss = lost_blocks()
    controller.flush()
    print(f"crash mid-second-burst:           {mid_loss} blocks stale")
    print(f"crash after the final flush:      {lost_blocks()} blocks "
          f"lost")

    # Silent corruption on a signed reference: the scrub catches it.
    victim = sorted(ref for ref, _slot
                    in controller.delta_map_snapshot().values()
                    if controller.ssd_block_content(ref) is not None)[0]
    content = controller.ssd_block_content(victim)
    saved = content[:64].copy()
    content[:64] ^= 0xFF
    flagged = scrub_references(controller)
    content[:64] = saved
    print(f"\nsignature scrub on a corrupted reference block "
          f"{victim}: flagged {flagged}")

    # Torn log block: replay skips it and degrades, never garbage.
    slot = (controller.log._next - 1) % controller.log.size_blocks
    controller.log.corrupt_block(slot)
    image = recover(controller)
    degraded = sum(1 for lba in range(shadow.shape[0])
                   if not np.array_equal(image.read(lba), shadow[lba]))
    print(f"torn log block at slot {slot}: replay skipped "
          f"{image.corrupt_blocks_skipped} block(s), {degraded} "
          f"block(s) degraded to their last durable content")
    print("\ntune config.flush_interval / flush_dirty_count to trade "
          "the loss window against log-append batching (Section 3.3); "
          "run the full adversarial matrix with `python -m repro "
          "chaos` (docs/RELIABILITY.md).")


def main() -> None:
    live_fault_run()
    crash_ladder()


if __name__ == "__main__":
    main()
