#!/usr/bin/env python
"""Scaling out: an *array* of intelligently coupled SSD+HDD pairs.

The paper's architecture is an array of storage elements (its title
says so); the prototype measures one element.  This example stripes one
TPC-C block space across 1, 2 and 4 elements — each with its own SSD
reference store, Heatmap and delta log — and reports how the
composition behaves, including each element's independent status
report.

Run:  python examples/array_scaleout.py
"""

from repro.core import ICASHConfig
from repro.core.array import ICASHArray
from repro.experiments.runner import run_benchmark
from repro.workloads import TPCCWorkload


def element_config(total_blocks: int, n_elements: int) -> ICASHConfig:
    per_element = total_blocks // n_elements
    return ICASHConfig(
        ssd_capacity_blocks=max(64, per_element // 10),
        data_ram_bytes=max(1 << 19, per_element * 4096 // 4),
        delta_ram_bytes=max(1 << 19, per_element * 4096 // 2),
        max_virtual_blocks=max(8192, 2 * per_element),
        log_blocks=max(4096, per_element),
        scan_interval=500)


def main() -> None:
    for n_elements in (1, 2, 4):
        workload = TPCCWorkload(n_requests=5000)
        array = ICASHArray(
            workload.build_dataset(), n_elements=n_elements,
            chunk_blocks=64,
            config=element_config(workload.n_blocks, n_elements))
        result = run_benchmark(workload, array, verify_reads=True,
                               warmup_fraction=0.4)
        print(f"--- {n_elements} element(s) ---")
        print(f"  transactions/s: {result.transactions_per_s:8.1f}")
        print(f"  mean read     : {result.read_mean_us:8.1f} µs")
        print(f"  mean write    : {result.write_mean_us:8.1f} µs")
        print(f"  reads verified: {result.verified_reads}")
        counts = array.block_kind_counts()
        total = sum(counts.values())
        print("  population    : "
              + ", ".join(f"{k} {v / total:.0%}"
                          for k, v in counts.items()))
        print()

    print("per-element status of the last array:")
    for index, element in enumerate(array.elements):
        print(f"\n[element {index}]")
        print(element.describe())


if __name__ == "__main__":
    main()
