#!/usr/bin/env python
"""Replaying a real-world-format block trace through I-CASH.

The MSR-Cambridge CSV format (timestamp, host, disk, type, offset,
size, response time) is the community standard for block traces.  This
example fabricates a small trace in that format — in practice you would
point the adapter at a downloaded `.csv` — and replays it through
I-CASH and the pure-SSD baseline.

Because such traces carry no data content (and I-CASH is content
dependent), the adapter synthesises write payloads from the repository's
family-based content model; the addresses, sizes, ordering and
read/write mix are the trace's own.

Run:  python examples/msr_trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.workloads.msr import MSRTraceWorkload

BLOCK = 4096


def fabricate_trace(path: Path, n_requests: int = 4000,
                    seed: int = 9) -> None:
    """An MSR-format file with a skewed, bursty access pattern."""
    rng = np.random.default_rng(seed)
    hot = rng.permutation(4096)[:400]
    lines = []
    for i in range(n_requests):
        if rng.random() < 0.8:
            block = int(hot[rng.integers(0, len(hot))])
        else:
            block = int(rng.integers(0, 4096))
        op = "Write" if rng.random() < 0.3 else "Read"
        nblocks = int(rng.geometric(0.5))
        lines.append(f"{i * 1000},web0,0,{op},{block * BLOCK},"
                     f"{min(nblocks, 16) * BLOCK},0")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "web0.csv"
        fabricate_trace(trace_path)
        workload = MSRTraceWorkload(trace_path, mutation_fraction=0.08)
        print(workload.footprint_summary())
        print()
        for name in ("icash", "fusion-io"):
            wl = MSRTraceWorkload(trace_path, mutation_fraction=0.08)
            system = make_system(name, wl)
            result = run_benchmark(wl, system, verify_reads=True,
                                   warmup_fraction=0.3)
            print(f"{name:>10}: read {result.read_mean_us:8.1f} µs, "
                  f"write {result.write_mean_us:8.1f} µs, "
                  f"runtime SSD writes {result.ssd_write_ops:6d}, "
                  f"verified {result.verified_reads} reads")
    print("\n(point MSRTraceWorkload at any MSR-Cambridge CSV to replay "
          "production access patterns)")


if __name__ == "__main__":
    main()
