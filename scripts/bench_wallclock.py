#!/usr/bin/env python
"""Median-of-N host wall time for the QUICK suite or the 10k case.

The BENCH_<n>.json metrics are virtual-clock deterministic, so they
cannot show whether the harness itself got faster or slower.  This
script measures that: it runs the chosen workload N times (default 5)
and reports per-repeat and median *host* wall seconds — the numbers
docs/TUNING.md quotes and the trend `host_wall_s` (schema v2) tracks
per case.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--repeats N]
        [--jobs J] [--tenk] [--json PATH]

``--tenk`` measures the single 10k-request sysbench/icash event-engine
run (the serial hot-path yardstick) instead of the QUICK suite.
``--json`` additionally writes the measurements as a JSON document —
CI uploads it as a trend-only artifact; it never gates.

The first repeat includes one-time costs (imports, numpy warmup, cold
memoisation caches); median-of-N is quoted precisely so that outlier
doesn't dominate.
"""

import argparse
import json
import statistics
import sys
import time

from repro.experiments.bench import run_suite
from repro.experiments.parallel import RunSpec, execute_spec

#: The 10k-cell yardstick: the paper's headline workload at full
#: request count, one serial run, profiler attached (matching the
#: committed-baseline bench cases' configuration).
TENK_SPEC = RunSpec(workload="sysbench", system="icash", engine="event",
                    n_requests=10000, seed=2011, scale=0.5, profile=True)


def _measure_suite(repeats: int, jobs: int):
    walls = []
    for repeat in range(repeats):
        start = time.perf_counter()
        document = run_suite(quick=True, jobs=jobs)
        wall = time.perf_counter() - start
        walls.append(wall)
        per_case = ", ".join(
            f"{case['case']}={case['host_wall_s']:.3f}s"
            for case in document["cases"])
        print(f"repeat {repeat + 1}/{repeats}: {wall:.3f}s ({per_case})")
    return walls


def _measure_tenk(repeats: int):
    walls = []
    for repeat in range(repeats):
        start = time.perf_counter()
        execute_spec(TENK_SPEC)
        wall = time.perf_counter() - start
        walls.append(wall)
        print(f"repeat {repeat + 1}/{repeats}: {wall:.3f}s")
    return walls


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="median-of-N host wall time for the QUICK suite "
                    "or the 10k sysbench/icash case")
    parser.add_argument("--repeats", type=int, default=5,
                        help="repetitions (default 5)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per suite run "
                             "(default 1: measure the serial hot path)")
    parser.add_argument("--tenk", action="store_true",
                        help="measure the single 10k-request "
                             "sysbench/icash run instead of the suite")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the measurements as JSON "
                             "(trend artifact; never a gate)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        print("need at least one repeat", file=sys.stderr)
        return 2

    if args.tenk:
        subject = "sysbench-icash-event-10k"
        walls = _measure_tenk(args.repeats)
    else:
        subject = f"quick-suite-jobs{args.jobs}"
        walls = _measure_suite(args.repeats, args.jobs)

    median = statistics.median(walls)
    print(f"\n{subject}: median of {args.repeats} repeats = "
          f"{median:.3f}s (min {min(walls):.3f}s, max {max(walls):.3f}s)")

    if args.json:
        document = {
            "subject": subject,
            "jobs": args.jobs if not args.tenk else 1,
            "repeats": args.repeats,
            "walls_s": [round(w, 6) for w in walls],
            "median_s": round(median, 6),
            "min_s": round(min(walls), 6),
            "max_s": round(max(walls), 6),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
