#!/usr/bin/env python
"""Median-of-N host wall time for the QUICK bench suite.

The BENCH_<n>.json metrics are virtual-clock deterministic, so they
cannot show whether the harness itself got faster or slower.  This
script measures that: it runs the QUICK suite N times (default 5) and
reports per-repeat and median *host* wall seconds — the number
docs/TUNING.md quotes and the trend `host_wall_s` (schema v2) tracks
per case.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--repeats N]
        [--jobs J]

The first repeat includes one-time costs (imports, numpy warmup);
median-of-N is quoted precisely so that outlier doesn't dominate.
"""

import argparse
import statistics
import sys
import time

from repro.experiments.bench import run_suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="median-of-N host wall time for the QUICK suite")
    parser.add_argument("--repeats", type=int, default=5,
                        help="suite repetitions (default 5)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per suite run "
                             "(default 1: measure the serial hot path)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        print("need at least one repeat", file=sys.stderr)
        return 2

    walls = []
    for repeat in range(args.repeats):
        start = time.perf_counter()
        document = run_suite(quick=True, jobs=args.jobs)
        wall = time.perf_counter() - start
        walls.append(wall)
        per_case = ", ".join(
            f"{case['case']}={case['host_wall_s']:.3f}s"
            for case in document["cases"])
        print(f"repeat {repeat + 1}/{args.repeats}: {wall:.3f}s "
              f"({per_case})")

    median = statistics.median(walls)
    print(f"\nQUICK suite, jobs={args.jobs}: median of {args.repeats} "
          f"repeats = {median:.3f}s "
          f"(min {min(walls):.3f}s, max {max(walls):.3f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
