#!/usr/bin/env python
"""Measure the wall-clock overhead of the observability layers.

Runs the same SysBench replay on the I-CASH element five ways:

* ``null``  — the default ``NULL_TRACER`` and ``NULL_REGISTRY`` (every
  hook is a guarded no-op; this is what every benchmark and test pays
  all the time),
* ``ring``  — a recording ``RingBufferTracer`` with the default 1 Mi
  event capacity,
* ``ring+chrome`` — recording plus a Chrome ``trace_event`` export,
* ``monitor`` — a sampling metrics ``Monitor`` (real registry,
  periodic sampler, per-request latency histograms; no tracer),
* ``event`` — the discrete-event queueing engine
  (``run_benchmark(engine="event")``: capture tracer, per-device
  stations, event heap) against the same legacy ``null`` baseline,
* ``profile`` — the event engine with a recording ``Profiler``
  (per-request ``(device, phase)`` attribution); compare against
  ``event`` for the profiler's own cost, and note that ``null`` (the
  ``NULL_PROFILER`` default) is the profiler-disabled case,
* ``ledger`` — the legacy run plus one ``LedgerWriter.record`` into a
  throwaway store (provenance capture, metric snapshot, SQLite insert
  and JSONL append); ``null`` (the ``NULL_LEDGER`` default) is the
  ledger-disabled case.  This is a *per-run* cost, not per-request —
  it does not grow with ``--requests``.
* ``explain`` — the ``profile`` run (event engine, recording profiler,
  sampling monitor) plus one full self-diff through the
  ``repro.analysis.explain`` engine: attribution, scalar, phase and
  queueing diffs, suspect ranking and both renderings.  Compare
  against ``profile`` for the engine's own cost; like ``ledger`` it is
  a per-diagnosis cost, not per-request.

Prints median wall-clock over ``--repeats`` runs and the overhead of
each mode relative to ``null``, then one single-line JSON summary per
mode (``{"mode": ..., "median_ms": ..., "overhead_vs_null": ...}``) so
CI and scripts can scrape the numbers without parsing the prose.  The
numbers quoted in the tracer and sampler overhead sections of
``docs/TUNING.md`` come from this script::

    PYTHONPATH=src python scripts/bench_tracer_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import run_benchmark  # noqa: E402
from repro.experiments.systems import make_system  # noqa: E402
from repro.ledger import LedgerWriter  # noqa: E402
from repro.sim.metrics import Monitor  # noqa: E402
from repro.sim.profile import Profiler  # noqa: E402
from repro.sim.trace import (RingBufferTracer,  # noqa: E402
                             export_chrome_trace)
from repro.workloads import SysBenchWorkload  # noqa: E402


def one_run(n_requests: int, mode: str) -> float:
    workload = SysBenchWorkload(n_requests=n_requests)
    system = make_system("icash", workload)
    tracer = RingBufferTracer() if mode.startswith("ring") else None
    monitor = (Monitor(interval_s=0.01)
               if mode in ("monitor", "explain") else None)
    profiler = Profiler() if mode in ("profile", "explain") else None
    engine = ("event" if mode in ("event", "profile", "explain")
              else "legacy")
    ledger = None
    if mode == "ledger":
        store_dir = tempfile.mkdtemp(prefix="repro-ledger-bench-")
        ledger = LedgerWriter(root=store_dir)
    started = time.perf_counter()
    result = run_benchmark(workload, system, tracer=tracer,
                           monitor=monitor, engine=engine,
                           profiler=profiler, ledger=ledger)
    if mode == "ring+chrome":
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=True) as handle:
            export_chrome_trace(tracer.events, handle)
    if mode == "explain":
        from repro.analysis.explain import explain_results

        report = explain_results(result, result)
        report.render()
        report.render_json()
    elapsed = time.perf_counter() - started
    if mode == "ledger":
        shutil.rmtree(store_dir, ignore_errors=True)
    if tracer is not None and tracer.dropped:
        print(f"  warning: {tracer.dropped} events dropped", file=sys.stderr)
    return elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=6000)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    modes = ("null", "ring", "ring+chrome", "monitor", "event",
             "profile", "ledger", "explain")
    medians = {}
    extremes = {}
    for mode in modes:
        times = [one_run(args.requests, mode)
                 for _ in range(args.repeats)]
        medians[mode] = statistics.median(times)
        extremes[mode] = (min(times), max(times))
        print(f"{mode:<12} median {medians[mode] * 1e3:8.1f} ms "
              f"over {args.repeats} runs "
              f"(min {min(times) * 1e3:.1f}, max {max(times) * 1e3:.1f})")
    base = medians["null"]
    for mode in modes[1:]:
        print(f"{mode:<12} overhead vs null: "
              f"{(medians[mode] / base - 1.0):+.1%}")
    # One machine-readable line per mode, last so a log scraper can
    # just take the tail of the output.
    for mode in modes:
        low, high = extremes[mode]
        print(json.dumps({
            "mode": mode,
            "requests": args.requests,
            "repeats": args.repeats,
            "median_ms": round(medians[mode] * 1e3, 3),
            "min_ms": round(low * 1e3, 3),
            "max_ms": round(high * 1e3, 3),
            "overhead_vs_null": round(medians[mode] / base - 1.0, 4),
        }, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
