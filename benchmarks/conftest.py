"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment once (``benchmark.pedantic`` with a single round — these
are simulations, not microbenchmarks), prints the measured-vs-paper
table (run pytest with ``-s`` to see it), stores the measured series in
``benchmark.extra_info`` for the JSON report, and asserts that a minimum
fraction of the paper's pairwise orderings survived.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult


def run_figure(benchmark, figure_fn, min_shape: float = 0.6,
               **kwargs) -> FigureResult:
    """Execute one figure under pytest-benchmark and report it."""
    result = benchmark.pedantic(lambda: figure_fn(**kwargs),
                                rounds=1, iterations=1)
    report_figure(benchmark, result, min_shape)
    return result


def report_figure(benchmark, result: FigureResult,
                  min_shape: float) -> None:
    print()
    print(result.render())
    for system, value in result.measured.items():
        benchmark.extra_info[f"measured_{system}"] = round(value, 3)
    score = result.shape_score()
    benchmark.extra_info["shape_score"] = round(score, 3)
    assert score >= min_shape, (
        f"{result.figure}: only {score:.0%} of the paper's pairwise "
        f"orderings were preserved (required {min_shape:.0%})")
