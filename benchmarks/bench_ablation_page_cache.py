"""Ablation: a host page cache in front of the storage architectures.

The paper measured block-level response *below* the OS page cache, but
the cache shapes what the application sees: it absorbs repeated reads
and batches write-back, flattening the gap between architectures.  The
sweep quantifies how much of the I-CASH advantage a generous host cache
hides — and how much survives (the write path and the miss tail).
"""

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.pagecache import HostCachedSystem
from repro.workloads import SysBenchWorkload

CACHE_FRACTIONS = (0.0, 0.05, 0.25)


def run_cached(system_name: str, cache_fraction: float):
    workload = SysBenchWorkload(n_requests=8000)
    system = make_system(system_name, workload)
    if cache_fraction > 0:
        cache_blocks = max(8, int(workload.n_blocks * cache_fraction))
        system = HostCachedSystem(system, cache_blocks)
    return run_benchmark(workload, system, warmup_fraction=0.4)


def test_ablation_page_cache(benchmark):
    def sweep():
        return {(name, frac): run_cached(name, frac)
                for name in ("fusion-io", "icash")
                for frac in CACHE_FRACTIONS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: host page cache (SysBench)")
    print(f"{'system':>10} {'cache':>6} {'tx/s':>9} {'read_us':>9} "
          f"{'write_us':>9}")
    for (name, frac), result in outcomes.items():
        print(f"{name:>10} {frac:>6.2f} "
              f"{result.transactions_per_s:>9.1f} "
              f"{result.read_mean_us:>9.1f} {result.write_mean_us:>9.1f}")
        benchmark.extra_info[f"tx_{name}_{frac}"] = round(
            result.transactions_per_s, 1)
    # A big host cache narrows the architecture gap...
    gap_none = abs(outcomes[("icash", 0.0)].transactions_per_s
                   - outcomes[("fusion-io", 0.0)].transactions_per_s)
    gap_big = abs(outcomes[("icash", 0.25)].transactions_per_s
                  - outcomes[("fusion-io", 0.25)].transactions_per_s)
    assert gap_big <= gap_none * 1.5
    # ...and never makes either system slower.
    for name in ("fusion-io", "icash"):
        assert outcomes[(name, 0.25)].transactions_per_s \
            >= outcomes[(name, 0.0)].transactions_per_s * 0.95
