"""Figure 11: TPC-C application-level response time."""

from repro.experiments import figures

from conftest import run_figure


def test_fig11_tpcc_response_time(benchmark):
    result = run_figure(benchmark, figures.figure11, min_shape=0.7)
    # Paper: I-CASH improves application response time over both
    # fusion-io (64%) and RAID0 (81%) — i.e. it is the fastest.
    assert result.measured["icash"] == min(result.measured.values())
