"""Ablation: the 2,048-byte delta spill threshold (Section 5.3).

Small thresholds spill aggressively (more SSD writes, less delta
machinery); huge thresholds keep even near-full-block deltas in RAM
segments (bloated pool, decompression on fat deltas).  The paper's
2,048 B sits where SSD writes are low and reads stay fast.
"""

from dataclasses import replace

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.core import ICASHController
from repro.workloads import SpecSFSWorkload

THRESHOLDS = (512, 1024, 2048, 3072, 4000)


def run_with_threshold(threshold: int):
    workload = SpecSFSWorkload(n_requests=6000)
    config = replace(make_icash_config(workload),
                     delta_spill_bytes=threshold,
                     delta_accept_bytes=min(threshold, 2048))
    system = ICASHController(workload.build_dataset(), config)
    return run_benchmark(workload, system, warmup_fraction=0.4)


def test_ablation_delta_threshold(benchmark):
    def sweep():
        return {t: run_with_threshold(t) for t in THRESHOLDS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: delta spill threshold (SPEC-sfs, write heavy)")
    print(f"{'threshold':>9} {'write_us':>9} {'ssd_writes':>10} "
          f"{'spills':>8}")
    for threshold, result in outcomes.items():
        spills = result.counters.get("delta_spills", 0)
        print(f"{threshold:>9} {result.write_mean_us:>9.1f} "
              f"{result.ssd_write_ops:>10} {spills:>8}")
        benchmark.extra_info[f"ssd_writes_{threshold}"] = \
            result.ssd_write_ops
    # Aggressive spilling must cost more SSD writes than the default.
    assert outcomes[512].ssd_write_ops >= outcomes[2048].ssd_write_ops
