"""Ablation: SSD provisioning (the paper's one-tenth rule).

Sweeps the reference-store budget from 2.5% to 40% of the data set on
SysBench.  The paper's observation — I-CASH needs only a small fraction
of the data set in flash because references anchor many associates —
shows up as rapidly diminishing returns past ~10%.
"""

from dataclasses import replace

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.core import ICASHController
from repro.workloads import SysBenchWorkload

FRACTIONS = (0.025, 0.05, 0.10, 0.20, 0.40)


def run_with_budget(fraction: float):
    workload = SysBenchWorkload(n_requests=8000)
    blocks = max(64, int(workload.n_blocks * fraction))
    config = replace(make_icash_config(workload),
                     ssd_capacity_blocks=blocks)
    system = ICASHController(workload.build_dataset(), config)
    return run_benchmark(workload, system, warmup_fraction=0.4)


def test_ablation_ssd_size(benchmark):
    def sweep():
        return {f: run_with_budget(f) for f in FRACTIONS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: SSD reference-store budget (SysBench)")
    print(f"{'fraction':>8} {'tx/s':>9} {'read_us':>9}")
    for fraction, result in outcomes.items():
        print(f"{fraction:>8.3f} {result.transactions_per_s:>9.1f} "
              f"{result.read_mean_us:>9.1f}")
        benchmark.extra_info[f"tx_{fraction}"] = round(
            result.transactions_per_s, 1)
    # Throughput grows with budget, then saturates: 40% gains little
    # over 10% compared with what 10% gains over 2.5%.
    t = {f: outcomes[f].transactions_per_s for f in FRACTIONS}
    assert t[0.10] >= t[0.025]
    gain_low = t[0.10] - t[0.025]
    gain_high = t[0.40] - t[0.10]
    assert gain_high <= max(gain_low, 0.15 * t[0.10])
