"""Ablation: software (host CPU) vs hardware (embedded) implementation.

Section 3.2 describes both bodies for the same architecture; the
conclusion names the hardware prototype as future work.  The tradeoff
this sweep exposes: the embedded core decodes slower (higher read
latency) but the host CPU is completely freed — storage computation no
longer competes with the application at all.
"""

from repro.core.embedded import EmbeddedICASHController, EmbeddedSpec
from repro.experiments.breakdown import (read_breakdown,
                                         semiconductor_fraction)
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config, make_system
from repro.workloads import SysBenchWorkload


def run_software():
    workload = SysBenchWorkload(n_requests=8000)
    system = make_system("icash", workload)
    return run_benchmark(workload, system, warmup_fraction=0.4), system


def run_hardware(slowdown: float):
    workload = SysBenchWorkload(n_requests=8000)
    system = EmbeddedICASHController(
        workload.build_dataset(), make_icash_config(workload),
        embedded=EmbeddedSpec(codec_slowdown=slowdown))
    return run_benchmark(workload, system, warmup_fraction=0.4), system


def test_ablation_hw_implementation(benchmark):
    def sweep():
        out = {"software": run_software()}
        out.update({f"hw(x{slowdown})": run_hardware(slowdown)
                    for slowdown in (1.5, 2.5, 4.0)})
        return out

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: implementation body (SysBench)")
    print(f"{'variant':>10} {'tx/s':>9} {'read_us':>9} "
          f"{'host_cpu_s':>10} {'semiconductor':>13}")
    for variant, (result, system) in outcomes.items():
        semi = semiconductor_fraction(system)
        print(f"{variant:>10} {result.transactions_per_s:>9.1f} "
              f"{result.read_mean_us:>9.1f} {result.storage_cpu_s:>10.4f} "
              f"{semi:>13.1%}")
        benchmark.extra_info[f"read_us_{variant}"] = round(
            result.read_mean_us, 1)
    sw = outcomes["software"][0]
    hw = outcomes["hw(x2.5)"][0]
    # The tradeoff both ways: hardware frees the host CPU entirely...
    assert hw.storage_cpu_s == 0.0
    assert sw.storage_cpu_s > 0.0
    # ...while its slower codec costs read latency.
    assert hw.read_mean_us >= sw.read_mean_us
