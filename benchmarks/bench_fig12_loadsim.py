"""Figure 12: LoadSim (Exchange server) score — lower is better.

The one benchmark the paper concedes to pure SSD: LoadSim is almost
100% random with little locality, so fusion-io wins; I-CASH still beats
both same-budget caches by catching what content locality exists.
"""

from repro.experiments import figures

from conftest import run_figure


def test_fig12_loadsim_score(benchmark):
    result = run_figure(benchmark, figures.figure12, min_shape=0.6)
    measured = result.measured
    # The concession: pure SSD beats I-CASH here (lower = better)...
    assert measured["fusion-io"] < measured["icash"]
    # ...but I-CASH still beats the same-budget LRU and dedup caches.
    assert measured["icash"] < measured["lru"]
    assert measured["icash"] < measured["dedup"]
