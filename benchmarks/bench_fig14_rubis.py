"""Figure 14: RUBiS (auction site) request rate.

99% reads mute I-CASH's write-path advantage: the paper reports pure
SSD 10% ahead of I-CASH, with I-CASH still beating the LRU (1.04x) and
dedup (1.29x) caches and RAID0 (1.5x).
"""

from repro.experiments import figures

from conftest import run_figure


def test_fig14_rubis_request_rate(benchmark):
    result = run_figure(benchmark, figures.figure14, min_shape=0.8)
    measured = result.measured
    assert measured["icash"] > measured["lru"]
    assert measured["icash"] > measured["dedup"]
    assert measured["icash"] > 1.3 * measured["raid0"]
    # Pure SSD and I-CASH bracket each other within ~15% either way.
    ratio = measured["icash"] / measured["fusion-io"]
    assert 0.85 < ratio < 1.15
