"""Figure 10: TPC-C transaction rate and CPU utilisation."""

from repro.experiments import figures

from conftest import run_figure


def test_fig10a_tpcc_transaction_rate(benchmark):
    result = run_figure(benchmark, figures.figure10a, min_shape=0.9)
    measured = result.measured
    # Paper: I-CASH processes more tx/min than everything else.
    assert measured["icash"] == max(measured.values())
    # ...and RAID0 trails badly on small random transactions.
    assert measured["raid0"] == min(measured.values())


def test_fig10b_tpcc_cpu_utilisation(benchmark):
    result = run_figure(benchmark, figures.figure10b, min_shape=0.0)
    gap = result.measured["icash"] - result.measured["fusion-io"]
    assert gap < 0.15
