"""Ablation: delta-block packing order — arrival vs address.

Section 3.1's first case: "I-CASH can pack deltas of all sequential
I/Os into one delta block.  Upon read operations of these sequential
data blocks, one HDD operation serves all the I/O requests in the
sequence."  Arrival-order packing realises exactly that; address-order
packing favours spatially clustered re-access instead.  The sweep
measures how many sibling deltas each log fetch hydrates under both
policies, on a workload with sequential bursts (Hadoop-style).
"""

from dataclasses import replace

from repro.core import ICASHController
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.workloads import HadoopWorkload


def run_with_order(order: str):
    workload = HadoopWorkload(n_requests=5000)
    config = replace(make_icash_config(workload),
                     flush_order=order,
                     # A small pool forces deltas through the log so the
                     # hydration behaviour is actually exercised.
                     delta_ram_bytes=1 << 20)
    system = ICASHController(workload.build_dataset(), config)
    result = run_benchmark(workload, system, warmup_fraction=0.4)
    fetches = result.counters.get("log_delta_fetches", 0)
    hydrations = result.counters.get("delta_hydrations", 0)
    return result, fetches, hydrations


def test_ablation_flush_order(benchmark):
    def sweep():
        return {order: run_with_order(order)
                for order in ("arrival", "lba")}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: delta packing order (Hadoop, small delta pool)")
    print(f"{'order':>8} {'read_us':>9} {'log_fetches':>11} "
          f"{'hydrated/fetch':>14}")
    for order, (result, fetches, hydrations) in outcomes.items():
        per_fetch = hydrations / fetches if fetches else 0.0
        print(f"{order:>8} {result.read_mean_us:>9.1f} {fetches:>11} "
              f"{per_fetch:>14.2f}")
        benchmark.extra_info[f"hydrated_per_fetch_{order}"] = round(
            per_fetch, 2)
    # Both policies must stay correct and produce hydration; which wins
    # is workload dependent, so assert only sanity here.
    for result, _fetches, _hydrations in outcomes.values():
        assert result.read_mean_us > 0
