"""Figure 9: Hadoop block-level read/write response times."""

from repro.experiments import figures

from conftest import report_figure


def test_fig9_hadoop_response_times(benchmark):
    read, write = benchmark.pedantic(figures.figure9,
                                     rounds=1, iterations=1)
    report_figure(benchmark, read, min_shape=0.5)
    print()
    print(write.render())
    assert write.shape_score() >= 0.5
    # Figure 9's standout: I-CASH writes ~12x faster than the pure-SSD
    # baseline (586 µs vs 7301 µs in the paper).
    assert write.measured["icash"] * 5 < write.measured["fusion-io"]
