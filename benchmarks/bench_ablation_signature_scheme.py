"""Ablation: sampled sub-signatures vs full-sub-block hashing.

Section 4.2's design argument: hashing detects identity but a single
changed byte destroys the match, so a hash-based Heatmap finds far
fewer similar pairs.  The sampled scheme tolerates changes outside its
probe offsets and keeps similar blocks matchable.
"""

from dataclasses import replace

from repro.core import ICASHController
from repro.core.signatures import SignatureScheme
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.workloads import SysBenchWorkload


def run_with_scheme(scheme: SignatureScheme):
    workload = SysBenchWorkload(n_requests=8000)
    config = replace(make_icash_config(workload),
                     signature_scheme=scheme)
    system = ICASHController(workload.build_dataset(), config)
    result = run_benchmark(workload, system, warmup_fraction=0.4)
    return result, system.block_kind_counts()


def test_ablation_signature_scheme(benchmark):
    def sweep():
        return {scheme.value: run_with_scheme(scheme)
                for scheme in SignatureScheme}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: signature scheme (SysBench)")
    print(f"{'scheme':>8} {'tx/s':>9} {'associates':>10} "
          f"{'references':>10}")
    for scheme, (result, counts) in outcomes.items():
        print(f"{scheme:>8} {result.transactions_per_s:>9.1f} "
              f"{counts['associate']:>10} {counts['reference']:>10}")
        benchmark.extra_info[f"associates_{scheme}"] = counts["associate"]
    sampled = outcomes["sampled"][1]["associate"]
    hashed = outcomes["hash"][1]["associate"]
    # The paper's point: sampling finds (far) more similarity.
    assert sampled > hashed
