"""Figure 16: five RUBiS VMs, normalised request rate.

Read-intensive multi-VM: the paper reports I-CASH 1.2x over pure SSD
and ~4x over the same-budget caches.
"""

from repro.experiments import figures

from conftest import run_figure


def test_fig16_five_rubis_vms(benchmark):
    result = run_figure(benchmark, figures.figure16, min_shape=0.9)
    measured = result.measured
    assert measured["icash"] >= 0.95 * measured["fusion-io"]
    assert measured["icash"] > 2 * measured["lru"]
    assert measured["icash"] > 2 * measured["dedup"]
    assert measured["icash"] > 4 * measured["raid0"]
