"""Figure 6: SysBench transaction rate and CPU utilisation."""

from repro.experiments import figures

from conftest import run_figure


def test_fig6a_sysbench_transaction_rate(benchmark):
    result = run_figure(benchmark, figures.figure6a, min_shape=0.9)
    # The paper's headline here: I-CASH tops the chart.
    assert result.measured["icash"] == max(result.measured.values())


def test_fig6b_sysbench_cpu_utilisation(benchmark):
    result = run_figure(benchmark, figures.figure6b, min_shape=0.0)
    # The paper's claim is not an ordering but a bound: the I-CASH
    # computation adds only a few points of CPU over the baselines.
    gap = result.measured["icash"] - result.measured["fusion-io"]
    assert gap < 0.15
