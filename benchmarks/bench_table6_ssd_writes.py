"""Table 6: number of runtime write requests on the SSD.

The lifetime argument: I-CASH performs drastically fewer SSD writes
than the LRU/dedup caches (which churn on every miss and write) and
than pure SSD — except on SPEC-sfs, where most deltas exceed the spill
threshold and I-CASH's SSD writes approach the baseline's, exactly as
the paper reports.
"""

import pytest

from repro.experiments import figures
from repro.metrics.wear import wear_report

from conftest import report_figure

MIN_SHAPE = {"sysbench": 1.0, "hadoop": 1.0, "tpcc": 1.0, "specsfs": 0.5}


@pytest.mark.parametrize("bench", ["sysbench", "hadoop", "tpcc",
                                   "specsfs"])
def test_table6_ssd_writes(benchmark, bench):
    results = benchmark.pedantic(figures.table6, rounds=1, iterations=1)
    result = results[bench]
    report_figure(benchmark, result, MIN_SHAPE[bench])
    measured = result.measured
    assert measured["icash"] == min(measured.values())


def test_table6_lifetime_projection(benchmark):
    """The paragraph under Table 6: fewer writes imply prolonged life.
    Quantified via per-block erase counters and endurance cycles."""
    results = benchmark.pedantic(figures.table6, rounds=1, iterations=1)
    runs = results["sysbench"].runs
    print("\nSSD wear after SysBench (runtime window):")
    for name in ("fusion-io", "lru", "icash"):
        run = runs[name]
        system_writes = run.ssd_write_blocks
        print(f"  {name:<10} host page writes: {system_writes}")
    icash = runs["icash"].ssd_write_blocks
    lru = runs["lru"].ssd_write_blocks
    assert icash < lru / 2
