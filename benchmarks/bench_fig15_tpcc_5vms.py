"""Figure 15: five TPC-C VMs, normalised transaction rate.

The multi-VM headline: cross-VM image similarity lets I-CASH beat the
full-size pure-SSD system (paper: 2.8x; this simulator preserves the
ordering and the 5-6x gap over the cache baselines, with a smaller
absolute margin — see EXPERIMENTS.md).
"""

from repro.experiments import figures

from conftest import run_figure


def test_fig15_five_tpcc_vms(benchmark):
    result = run_figure(benchmark, figures.figure15, min_shape=0.9)
    measured = result.measured
    assert measured["icash"] >= measured["fusion-io"]
    assert measured["icash"] > 2 * measured["raid0"]
    assert measured["icash"] > 2 * measured["lru"]
