"""Ablation: similarity-scan interval (the paper's 2,000-I/O choice).

Sweeps how often the scan runs.  Too rare and blocks leave RAM before
they can be associated (fewer delta hits, more HDD misses); too frequent
and CPU time goes up for no extra coverage.
"""

from dataclasses import replace

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.core import ICASHController
from repro.workloads import SysBenchWorkload

INTERVALS = (125, 250, 500, 1000, 2000, 4000)


def run_with_interval(interval: int):
    workload = SysBenchWorkload(n_requests=8000)
    config = replace(make_icash_config(workload), scan_interval=interval)
    system = ICASHController(workload.build_dataset(), config)
    # No ingest: this ablation isolates what the *online* scan achieves.
    result = run_benchmark(workload, system, preload=False,
                           warmup_fraction=0.4)
    counts = system.block_kind_counts()
    return result, counts


def test_ablation_scan_interval(benchmark):
    def sweep():
        return {interval: run_with_interval(interval)
                for interval in INTERVALS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: scan interval (online-only, no ingest)")
    print(f"{'interval':>9} {'tx/s':>9} {'read_us':>9} "
          f"{'associates':>10} {'scan_cpu_s':>10}")
    coverage = {}
    for interval, (result, counts) in outcomes.items():
        print(f"{interval:>9} {result.transactions_per_s:>9.1f} "
              f"{result.read_mean_us:>9.1f} {counts['associate']:>10} "
              f"{result.storage_cpu_s:>10.4f}")
        coverage[interval] = counts["associate"] + counts["reference"]
        benchmark.extra_info[f"tx_{interval}"] = round(
            result.transactions_per_s, 1)
    # More frequent scans must not *reduce* structure coverage.
    assert coverage[250] >= coverage[4000] * 0.8
