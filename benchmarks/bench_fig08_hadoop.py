"""Figure 8: Hadoop execution time and CPU utilisation."""

from repro.experiments import figures

from conftest import run_figure


def test_fig8a_hadoop_execution_time(benchmark):
    result = run_figure(benchmark, figures.figure8a, min_shape=0.6)
    # I-CASH finishes the job fastest (paper: 18s vs 24-32s).
    assert result.measured["icash"] == min(result.measured.values())


def test_fig8b_hadoop_cpu_utilisation(benchmark):
    result = run_figure(benchmark, figures.figure8b, min_shape=0.0)
    # Hadoop finishes much faster on I-CASH here, so utilisation over the
    # (shorter) wall is naturally higher; the paper measures at closer
    # wall times and sees <4% spread.  Bound the gap loosely.
    gap = result.measured["icash"] - result.measured["fusion-io"]
    assert gap < 0.40
