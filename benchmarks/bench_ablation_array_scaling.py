"""Ablation: scaling out the *array* of coupled SSD+HDD pairs.

The paper's title promises an array of storage elements; the prototype
evaluates one.  This sweep stripes the same TPC-C workload over 1, 2
and 4 I-CASH elements and measures the aggregate-throughput scaling of
the composition — each element runs its own Heatmap, reference store
and delta log.
"""

from dataclasses import replace

from repro.core import ICASHConfig
from repro.core.array import ICASHArray
from repro.experiments.runner import run_benchmark
from repro.workloads import TPCCWorkload

ELEMENT_COUNTS = (1, 2, 4)


def element_config(workload, n_elements: int) -> ICASHConfig:
    per_element_blocks = workload.n_blocks // n_elements
    return ICASHConfig(
        ssd_capacity_blocks=max(64, per_element_blocks // 10),
        data_ram_bytes=max(1 << 19, per_element_blocks * 4096 // 4),
        delta_ram_bytes=max(1 << 19, per_element_blocks * 4096 // 2),
        max_virtual_blocks=max(8192, 2 * per_element_blocks),
        log_blocks=max(4096, per_element_blocks),
        scan_interval=500)


def run_with_elements(n_elements: int):
    workload = TPCCWorkload(n_requests=6000)
    array = ICASHArray(workload.build_dataset(), n_elements=n_elements,
                       chunk_blocks=64,
                       config=element_config(workload, n_elements))
    return run_benchmark(workload, array, warmup_fraction=0.4)


def test_ablation_array_scaling(benchmark):
    def sweep():
        return {n: run_with_elements(n) for n in ELEMENT_COUNTS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: I-CASH array width (TPC-C)")
    print(f"{'elements':>8} {'tx/s':>9} {'read_us':>9} {'write_us':>9}")
    for n, result in outcomes.items():
        print(f"{n:>8} {result.transactions_per_s:>9.1f} "
              f"{result.read_mean_us:>9.1f} {result.write_mean_us:>9.1f}")
        benchmark.extra_info[f"tx_{n}"] = round(
            result.transactions_per_s, 1)
    # More elements must never hurt and spanning requests should gain.
    assert outcomes[4].transactions_per_s \
        >= 0.9 * outcomes[1].transactions_per_s
