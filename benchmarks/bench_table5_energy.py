"""Table 5: activity energy (watt-hours) for Hadoop and TPC-C.

The paper's power-meter finding: RAID0's four spindles burn 2.4x the
energy of I-CASH on Hadoop; the SSD-based systems are comparable, with
I-CASH cheapest because it finishes sooner and writes flash less.
"""

import pytest

from repro.experiments import figures

from conftest import report_figure


@pytest.mark.parametrize("bench", ["hadoop", "tpcc"])
def test_table5_energy(benchmark, bench):
    results = benchmark.pedantic(figures.table5, rounds=1, iterations=1)
    result = results[bench]
    report_figure(benchmark, result, min_shape=0.5)
    measured = result.measured
    # The robust claims at simulation scale: spinning four dedicated
    # RAID spindles costs several times the hybrid's energy, and I-CASH
    # never costs more than the SSD-cache baselines.
    assert measured["raid0"] > 2 * measured["icash"]
    assert measured["icash"] <= measured["lru"]
    assert measured["icash"] <= measured["dedup"]
    # I-CASH and pure SSD are in the same band (paper: 7 vs 8 Wh).
    ratio = measured["icash"] / measured["fusion-io"]
    assert 0.4 < ratio < 2.0
