"""Table 2: reference-block selection worked example.

The paper computes block popularities {3, 4, 5, 4} from Table 1's
Heatmap and selects the most popular block, (A, D) at LBA3, as the
reference — minimising cache space once the others delta-compress
against it.
"""

from repro.core.heatmap import Heatmap
from repro.core.similarity import popularity_ranking, select_reference

A, B, C, D = 0, 1, 2, 3
ENTRIES = [("LBA1", (A, B)), ("LBA2", (C, D)),
           ("LBA3", (A, D)), ("LBA4", (B, D))]
PAPER_POPULARITY = {"LBA1": 3, "LBA2": 4, "LBA3": 5, "LBA4": 4}


def test_table2_reference_selection(benchmark):
    def select():
        heatmap = Heatmap(rows=2, values=4)
        for _, sigs in ENTRIES:
            heatmap.record(sigs)
        ranked = popularity_ranking(ENTRIES, heatmap)
        chosen = select_reference(ENTRIES, heatmap)
        return ranked, chosen

    ranked, chosen = benchmark.pedantic(select, rounds=1, iterations=1)
    print("\nTable 2: popularity and reference selection")
    for key, pop in ranked:
        marker = " <-- reference" if key == chosen else ""
        print(f"  {key}: popularity {pop} "
              f"(paper: {PAPER_POPULARITY[key]}){marker}")
        assert pop == PAPER_POPULARITY[key]
    assert chosen == "LBA3"
    benchmark.extra_info["selected"] = chosen
