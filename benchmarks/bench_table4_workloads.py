"""Table 4: workload characteristics.

Generates every benchmark's stream and prints its measured profile next
to the paper's Table 4 row.  Exact counts differ (runs are scaled ~1/30
and ~1/80 in request count); the read/write mix and request-size shape
must match.
"""

import pytest

from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_table4_profile(benchmark, workload_cls):
    workload = workload_cls(scale=0.25, n_requests=4000)
    profile = benchmark.pedantic(workload.measured_profile,
                                 rounds=1, iterations=1)
    paper = workload_cls.paper_profile
    print(f"\nTable 4 ({workload_cls.name}):")
    print(f"  measured: {profile.format_row()}")
    print(f"  paper:    {paper.format_row()}")
    benchmark.extra_info["read_fraction"] = round(profile.read_fraction, 3)
    benchmark.extra_info["paper_read_fraction"] = round(
        paper.read_fraction, 3)
    assert abs(profile.read_fraction - paper.read_fraction) < 0.06
