"""Ablation: the flush interval (Section 3.3's reliability knob).

"For reliability purposes, we would like to perform write to HDD as
soon as possible whereas for performance purposes we would like to pack
as many deltas in one block as possible."  The sweep quantifies both
sides: HDD log writes per flushed delta (packing efficiency) and the
crash-loss window (blocks whose latest content recovery cannot see).
"""

from dataclasses import replace

import numpy as np

from repro.core import ICASHController
from repro.core.recovery import recover
from repro.experiments.systems import make_icash_config
from repro.workloads import SysBenchWorkload

INTERVALS = (64, 256, 1024, 4096)


def run_with_interval(interval: int):
    workload = SysBenchWorkload(n_requests=6000)
    config = replace(make_icash_config(workload),
                     flush_interval=interval,
                     flush_dirty_count=10 ** 9)  # interval is the knob
    system = ICASHController(workload.build_dataset(), config)
    system.ingest()
    for request in workload.requests():
        system.process(request)
    # Crash *without* a final flush: measure the loss window.
    image = recover(system)
    shadow = workload.shadow
    lost = sum(1 for lba in range(workload.n_blocks)
               if not np.array_equal(image.read(lba), shadow[lba]))
    flushes = system.stats.count("delta_flushes")
    records = system.stats.count("delta_records_flushed")
    log_blocks = system.log.blocks_written
    return lost, flushes, records, log_blocks


def test_ablation_flush_interval(benchmark):
    def sweep():
        return {i: run_with_interval(i) for i in INTERVALS}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: flush interval (crash with no final flush)")
    print(f"{'interval':>9} {'lost_blocks':>11} {'flushes':>8} "
          f"{'deltas/log_block':>16}")
    for interval, (lost, flushes, records, log_blocks) in outcomes.items():
        density = records / log_blocks if log_blocks else 0.0
        print(f"{interval:>9} {lost:>11} {flushes:>8} {density:>16.1f}")
        benchmark.extra_info[f"lost_{interval}"] = lost
    # The tradeoff must be visible: rare flushes lose more on a crash.
    assert outcomes[4096][0] >= outcomes[64][0]
