"""Table 1: the Heatmap buildup worked example.

Reproduces the paper's Table 1 exactly — a 2-sub-block, Vs=4 Heatmap fed
the four-request sequence — and times Heatmap updates at production
dimensions (8 x 256) to show the per-I/O bookkeeping cost is trivial.
"""

import numpy as np

from repro.core.heatmap import Heatmap

A, B, C, D = 0, 1, 2, 3
SEQUENCE = [("LBA1", (A, B)), ("LBA2", (C, D)),
            ("LBA3", (A, D)), ("LBA4", (B, D))]
PAPER_ROWS = {
    "LBA1": ((1, 0, 0, 0), (0, 1, 0, 0)),
    "LBA2": ((1, 0, 1, 0), (0, 1, 0, 1)),
    "LBA3": ((2, 0, 1, 0), (0, 1, 0, 2)),
    "LBA4": ((2, 1, 1, 0), (0, 1, 0, 3)),
}


def test_table1_heatmap_buildup(benchmark):
    def build():
        heatmap = Heatmap(rows=2, values=4)
        rows = {}
        for lba, sigs in SEQUENCE:
            heatmap.record(sigs)
            rows[lba] = (heatmap.row(0), heatmap.row(1))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\nTable 1: Heatmap buildup (measured == paper, exact)")
    for lba, sigs in SEQUENCE:
        print(f"  after {lba} {sigs}: row0={rows[lba][0]} "
              f"row1={rows[lba][1]}")
        assert rows[lba] == PAPER_ROWS[lba]
    benchmark.extra_info["exact_match"] = True


def test_heatmap_update_throughput(benchmark):
    """Per-access Heatmap cost at production dimensions."""
    heatmap = Heatmap()
    rng = np.random.default_rng(0)
    sigs = [tuple(int(v) for v in rng.integers(0, 256, 8))
            for _ in range(1000)]

    def record_thousand():
        for s in sigs:
            heatmap.record(s)

    benchmark(record_thousand)
