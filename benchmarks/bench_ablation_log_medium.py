"""Ablation: delta-log medium — HDD region vs byte-addressable NVRAM.

Section 2.1 cites Sun et al.'s PRAM log region; this sweep quantifies
what an NVRAM delta log buys I-CASH: near-free flushes (the crash-loss
window can shrink to per-write persistence) at identical read-path
behaviour.
"""

from dataclasses import replace

from repro.core import ICASHController
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_icash_config
from repro.workloads import SpecSFSWorkload


def run_with_log(on_nvram: bool, flush_interval: int):
    workload = SpecSFSWorkload(n_requests=6000)
    config = replace(make_icash_config(workload),
                     log_on_nvram=on_nvram,
                     flush_interval=flush_interval)
    system = ICASHController(workload.build_dataset(), config)
    result = run_benchmark(workload, system, warmup_fraction=0.4)
    return result, system


def test_ablation_log_medium(benchmark):
    def sweep():
        return {(medium, interval): run_with_log(on_nvram, interval)
                for medium, on_nvram in (("hdd", False), ("nvram", True))
                for interval in (64, 1024)}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: delta-log medium x flush interval (SPEC-sfs)")
    print(f"{'medium':>7} {'interval':>9} {'write_us':>9} "
          f"{'background_s':>12}")
    for (medium, interval), (result, _system) in outcomes.items():
        print(f"{medium:>7} {interval:>9} {result.write_mean_us:>9.1f} "
              f"{result.background_s:>12.4f}")
        benchmark.extra_info[f"bg_{medium}_{interval}"] = round(
            result.background_s, 4)
    # Aggressive flushing is near-free on NVRAM but costs HDD busy time.
    hdd_aggr = outcomes[("hdd", 64)][0].background_s
    nvram_aggr = outcomes[("nvram", 64)][0].background_s
    assert nvram_aggr < hdd_aggr
