"""Figure 13: SPEC-sfs (NFS server) response time — lower is better.

Write-dominated with large rewrites: most deltas exceed the spill
threshold, so I-CASH behaves much like the pure-SSD system (the paper
reports 1.5 ms vs 1.4 ms) while the dedup cache pays copy-on-write.
"""

from repro.experiments import figures

from conftest import run_figure


def test_fig13_specsfs_response_time(benchmark):
    result = run_figure(benchmark, figures.figure13, min_shape=0.5)
    measured = result.measured
    # I-CASH stays ahead of the same-budget caches (paper: 28% over
    # dedup) and far ahead of RAID0.
    assert measured["icash"] < measured["dedup"]
    assert measured["icash"] < measured["lru"]
    assert measured["icash"] < measured["raid0"]
