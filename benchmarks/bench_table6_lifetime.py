"""Section 5.3's conclusion, quantified: the SSD-write reduction of
Table 6 projects into a longer device lifetime.

Runs SysBench on every SSD-bearing architecture, reads the FTL's
per-block erase counters, and projects lifetime at each run's observed
wear rate.  I-CASH's SSD — written almost exclusively by offline ingest
and rare spills — must project the longest life per flash block.
"""

from repro.experiments.lifetime import (lifetime_projection,
                                        render_lifetime_table)
from repro.workloads import SysBenchWorkload


def test_table6_lifetime_projection(benchmark):
    rows = benchmark.pedantic(
        lambda: lifetime_projection(
            lambda: SysBenchWorkload(n_requests=10000)),
        rounds=1, iterations=1)
    print()
    print(render_lifetime_table(rows, "SSD lifetime after SysBench"))
    for name, row in rows.items():
        benchmark.extra_info[f"erases_{name}"] = row.total_erases
    # The lifetime argument: I-CASH erases its flash the least (per
    # block — its device is a tenth of fusion-io's but same-sized as
    # the cache baselines').
    icash = rows["icash"]
    for other in ("dedup", "lru"):
        assert icash.total_erases <= rows[other].total_erases
    # And projected life is never worse than the same-budget caches'.
    if icash.projected_years is not None:
        for other in ("dedup", "lru"):
            years = rows[other].projected_years
            if years is not None:
                assert icash.projected_years >= years
