"""Figure 7: SysBench block-level read/write response times."""

from repro.experiments import figures

from conftest import report_figure


def test_fig7_sysbench_response_times(benchmark):
    read, write = benchmark.pedantic(figures.figure7,
                                     rounds=1, iterations=1)
    report_figure(benchmark, read, min_shape=0.6)
    print()
    print(write.render())
    assert write.shape_score() >= 0.6
    # The paper's standout: I-CASH writes are ~10x faster than pure SSD.
    assert write.measured["icash"] * 5 < write.measured["fusion-io"]
