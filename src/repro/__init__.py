"""repro — a reproduction of I-CASH (Ren & Yang, HPCA 2011).

I-CASH — the Intelligently Coupled Array of SSD and HDD — stores
seldom-changed *reference blocks* on an SSD and a sequential log of
content *deltas* on an HDD, trading cheap CPU cycles (delta compression,
similarity detection) for expensive mechanical disk operations while
keeping random writes off the SSD.

Quickstart::

    import numpy as np
    from repro import ICASHController, ICASHConfig

    dataset = np.zeros((4096, 4096), dtype=np.uint8)   # 16 MiB of blocks
    icash = ICASHController(dataset, ICASHConfig(ssd_capacity_blocks=512))
    latency = icash.write(7, [np.full(4096, 0xAB, dtype=np.uint8)])
    latency, (content,) = icash.read(7)

Package map:

* :mod:`repro.core` — the I-CASH controller and its machinery.
* :mod:`repro.devices` — SSD (NAND + FTL), HDD, RAID0 and DRAM models.
* :mod:`repro.delta` — the delta codec, segment pool and HDD delta log.
* :mod:`repro.baselines` — the paper's four comparison architectures.
* :mod:`repro.workloads` — the six benchmark trace generators.
* :mod:`repro.metrics` — energy, SSD-wear and CPU-utilisation models.
* :mod:`repro.experiments` — runners regenerating every table and figure.
"""

from repro.baselines import (DedupCacheStorage, LRUCacheStorage, PureSSD,
                             RAID0Storage, StorageSystem)
from repro.core import Heatmap, ICASHConfig, ICASHController
from repro.sim import IORequest, OpType

__version__ = "1.0.0"

__all__ = [
    "DedupCacheStorage",
    "Heatmap",
    "ICASHConfig",
    "ICASHController",
    "IORequest",
    "LRUCacheStorage",
    "OpType",
    "PureSSD",
    "RAID0Storage",
    "StorageSystem",
    "__version__",
]
