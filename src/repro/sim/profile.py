"""Simulated-time profiler: critical-path attribution and flame stacks.

The tracer (:mod:`repro.sim.trace`) records *what happened*; the event
engine (:mod:`repro.sim.engine`) decides *when*.  This module closes
the loop and answers the paper's actual question — **which phase on
which device dominates a request's latency** — by attributing every
second of end-to-end response time to a ``(device, phase)`` pair:
``("hdd", "queue_wait")``, ``("ssd", "read")``, ``("cpu",
"delta_decode")``...  The paper's headline claims are exactly such
attributions (a read becomes one SSD read + delta fetch + µs-scale
decompression instead of a ms-scale random HDD access), and under
concurrency only per-pair accounting can show, e.g., that 72 % of p99
read latency is HDD queue wait at the saturation knee.

Three pieces:

* **Profilers.**  :data:`NULL_PROFILER` (the default) makes recording
  a no-op behind one ``enabled`` check, so the hot path stays at zero
  overhead; :class:`Profiler` aggregates per-request phase items into
  an :class:`AttributionTable`.  ``run_benchmark(..., profiler=...)``
  threads it through both engines: the event engine feeds exact
  per-station queue waits plus captured service phases, the legacy
  runner feeds service phases alone (no queues exist in that model).
* **The attribution table.**  Per operation class and ``(device,
  phase)`` pair: total and mean time, p50/p99 of per-request
  contributions, share of the class's latency, plus a *blame* summary
  over the p99 tail.  Per-request sums reconcile exactly with the
  end-to-end latency statistics — asserted by the test suite.
* **The folded-stack exporter.**  :func:`export_folded` collapses a
  recorded trace's span trees into ``component;device;phase count_us``
  lines consumable by standard flamegraph tooling (flamegraph.pl,
  speedscope, inferno), complementing the Chrome trace export.

Documented in the "Profiling & critical path" section of
``docs/OBSERVABILITY.md``; ``repro critpath`` is the CLI front end and
``repro bench`` snapshots attribution tables into ``BENCH_<n>.json``
for regression tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, \
    Tuple, Union

from repro.sim.stats import LatencyStats
from repro.sim.trace import TRACK_BACKGROUND, TRACK_REQUEST, TRACK_RUN, \
    TraceEvent

#: Device heads a span name may start with; ``classify_phase`` splits
#: ``{device}_{phase}`` names on this set (``hdd_log_read`` ->
#: ``("hdd", "log_read")``).
DEVICE_HEADS = ("dram", "ssd", "hdd", "nvram", "raid0")

#: Pseudo-devices attribution rows may use beyond :data:`DEVICE_HEADS`:
#: ``cpu`` for codec/host computation phases, ``queue`` for pooled
#: queue time recovered from a trace (the trace does not say which
#: station), ``host`` for the uninstrumented residual.
PSEUDO_DEVICES = ("cpu", "queue", "host")

#: The phase name end-to-end time not covered by any emitted item is
#: attributed to, paired with the ``host`` pseudo-device.
RESIDUAL_PHASE = "other"


def classify_phase(name: str,
                   device: Optional[str] = None) -> Tuple[str, str]:
    """Map a trace span name to its ``(device, phase)`` attribution pair.

    ``device`` pins the device when the caller knows it (the engine's
    capture tracer records which device model emitted a span, so a
    re-labelled ``hdd_log_append`` on an NVRAM log still attributes to
    ``nvram``); without it the name is split on :data:`DEVICE_HEADS`.
    CPU phases (``delta_encode``/``delta_decode``) and anything else
    unprefixed attribute to the ``cpu`` pseudo-device; the engine's
    aggregate ``queue`` span becomes ``("queue", "wait")``.
    """
    if device is not None:
        if name.startswith(device + "_"):
            return device, name[len(device) + 1:]
        return device, name
    if name == "queue":
        return "queue", "wait"
    head, sep, rest = name.partition("_")
    if sep and head in DEVICE_HEADS:
        return head, rest
    return "cpu", name


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestAttribution:
    """One request's attributed phase list, in emission order."""

    op: str
    latency_s: float
    #: ``(device, phase, seconds)`` items including queue waits and the
    #: ``(host, other, ...)`` residual; they sum to ``latency_s``.
    items: Tuple[Tuple[str, str, float], ...]

    @property
    def covered_s(self) -> float:
        return sum(dur for _d, _p, dur in self.items)


class AttributionRow:
    """One ``(device, phase)`` pair's aggregate for one request class.

    ``stats`` holds the per-request contributions of the requests that
    *touched* the pair (so ``p50_us``/``p99_us`` describe how much a
    request pays when it pays at all); ``mean_us`` spreads the total
    over *every* request of the class, so the rows of a class sum to
    its mean latency.
    """

    __slots__ = ("op", "device", "phase", "total_s", "stats")

    def __init__(self, op: str, device: str, phase: str) -> None:
        self.op = op
        self.device = device
        self.phase = phase
        self.total_s = 0.0
        self.stats = LatencyStats()

    @property
    def n_touched(self) -> int:
        return self.stats.count

    def p50_us(self) -> float:
        return self.stats.percentile(50) * 1e6

    def p99_us(self) -> float:
        return self.stats.percentile(99) * 1e6


@dataclass(frozen=True)
class Blame:
    """The dominant pair over a class's p99 latency tail."""

    op: str
    device: str
    phase: str
    #: The pair's fraction of all latency in the tail set.
    share: float
    #: Requests with latency >= the class p99 (the tail set size).
    tail_n: int
    threshold_us: float

    def render(self) -> str:
        return (f"blame: {self.share:.0%} of the {self.op} p99 tail "
                f"({self.tail_n} requests >= {self.threshold_us:.1f} us) "
                f"is {self.device} {self.phase}")


class AttributionTable:
    """Per-class, per-``(device, phase)`` latency attribution.

    Fed one request at a time (:meth:`record_request`); any end-to-end
    time the caller's items do not cover is attributed to ``(host,
    other)`` so per-request sums always equal the request latency —
    the invariant the acceptance test asserts.
    """

    def __init__(self) -> None:
        self._rows: Dict[Tuple[str, str, str], AttributionRow] = {}
        self._latency: Dict[str, LatencyStats] = {}
        self._requests: List[RequestAttribution] = []

    # -- recording --------------------------------------------------------

    def record_request(self, op: str,
                       items: Sequence[Tuple[str, str, float]],
                       latency_s: float) -> None:
        """Attribute one request's ``(device, phase, seconds)`` items.

        Items of the same pair merge; a positive residual against
        ``latency_s`` lands on ``(host, other)``.
        """
        covered = 0.0
        merged: Dict[Tuple[str, str], float] = {}
        kept: List[Tuple[str, str, float]] = []
        for device, phase, dur in items:
            if dur <= 0.0:
                continue
            covered += dur
            merged[(device, phase)] = merged.get((device, phase),
                                                 0.0) + dur
            kept.append((device, phase, dur))
        residual = latency_s - covered
        if residual > 1e-12:
            merged[("host", RESIDUAL_PHASE)] = residual
            kept.append(("host", RESIDUAL_PHASE, residual))
        for (device, phase), total in merged.items():
            row = self._rows.get((op, device, phase))
            if row is None:
                row = AttributionRow(op, device, phase)
                self._rows[(op, device, phase)] = row
            row.total_s += total
            row.stats.record(total)
        self._latency.setdefault(op, LatencyStats()).record(latency_s)
        self._requests.append(RequestAttribution(op, latency_s,
                                                 tuple(kept)))

    # -- queries ----------------------------------------------------------

    @property
    def ops(self) -> List[str]:
        return sorted(self._latency)

    @property
    def requests(self) -> List[RequestAttribution]:
        return list(self._requests)

    def latency(self, op: str) -> LatencyStats:
        return self._latency.setdefault(op, LatencyStats())

    def n_requests(self, op: str) -> int:
        return self.latency(op).count

    def total_s(self, op: str) -> float:
        return self.latency(op).total

    def mean_us(self, op: str) -> float:
        return self.latency(op).mean_us

    def rows(self, op: str) -> List[AttributionRow]:
        """The class's rows, heaviest total first."""
        rows = [row for key, row in self._rows.items() if key[0] == op]
        return sorted(rows, key=lambda r: (-r.total_s, r.device,
                                           r.phase))

    def row_mean_us(self, row: AttributionRow) -> float:
        """The row's total spread over every request of its class."""
        n = self.n_requests(row.op)
        return row.total_s / n * 1e6 if n else 0.0

    def share(self, row: AttributionRow) -> float:
        total = self.total_s(row.op)
        return row.total_s / total if total > 0 else 0.0

    def blame(self, op: str,
              tail_percentile: float = 99.0) -> Optional[Blame]:
        """Which pair dominates the class's latency tail.

        Pools the per-request attributions of every request whose
        latency reaches the class's ``tail_percentile`` and returns the
        pair holding the largest share of that pooled time.
        """
        stats = self.latency(op)
        if not stats.count:
            return None
        threshold = stats.percentile(tail_percentile)
        pooled: Dict[Tuple[str, str], float] = {}
        tail_n = 0
        tail_total = 0.0
        for request in self._requests:
            if request.op != op or request.latency_s < threshold:
                continue
            tail_n += 1
            tail_total += request.latency_s
            for device, phase, dur in request.items:
                pooled[(device, phase)] = pooled.get((device, phase),
                                                     0.0) + dur
        if not pooled or tail_total <= 0.0:
            return None
        (device, phase), heaviest = max(
            pooled.items(), key=lambda kv: (kv[1], kv[0]))
        return Blame(op=op, device=device, phase=phase,
                     share=heaviest / tail_total, tail_n=tail_n,
                     threshold_us=threshold * 1e6)

    # -- rendering --------------------------------------------------------

    def render(self, op: Optional[str] = None) -> str:
        """The attribution table (one class, or every class)."""
        ops = [op] if op is not None else self.ops
        sections = [self._render_op(o) for o in ops]
        return "\n\n".join(sections) if sections else "(no requests profiled)"

    def _render_op(self, op: str) -> str:
        n = self.n_requests(op)
        title = (f"{op} critical path (n={n}, "
                 f"mean {self.mean_us(op):.1f} us, "
                 f"p99 {self.latency(op).percentile(99) * 1e6:.1f} us)")
        lines = [title, "-" * len(title)]
        if not n:
            lines.append("(no requests profiled)")
            return "\n".join(lines)
        lines.append(f"{'device':<8} {'phase':<14} {'mean_us':>10} "
                     f"{'p50_us':>10} {'p99_us':>10} {'share':>7} "
                     f"{'hit':>6}")
        lines.extend(
                f"{row.device:<8} {row.phase:<14} "
                f"{self.row_mean_us(row):>10.2f} {row.p50_us():>10.2f} "
                f"{row.p99_us():>10.2f} {self.share(row):>7.1%} "
                f"{row.n_touched / n:>6.0%}"
                for row in self.rows(op))
        lines.append(f"{'total':<8} {'':<14} {self.mean_us(op):>10.2f} "
                     f"{'':>10} {'':>10} {1:>7.1%}")
        blame = self.blame(op)
        if blame is not None:
            lines.append(blame.render())
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        """JSON-ready rows (the ``attribution`` array of a bench case)."""
        out: List[Dict[str, object]] = []
        for op in self.ops:
            out.extend({
                "op": op,
                "device": row.device,
                "phase": row.phase,
                "total_us": row.total_s * 1e6,
                "mean_us": self.row_mean_us(row),
                "p50_us": row.p50_us(),
                "p99_us": row.p99_us(),
                "share": self.share(row),
                "n_touched": row.n_touched,
            } for row in self.rows(op))
        return out

    def top_rows(self, per_op: int = 3) -> List[Dict[str, object]]:
        """The heaviest ``per_op`` JSON-ready rows of each class.

        The curated form ledger snapshots keep: where the latency
        went, without the full table (see docs/LEDGER.md).
        """
        keep = {(op, row.device, row.phase)
                for op in self.ops
                for row in self.rows(op)[:per_op]}
        return [row for row in self.to_rows()
                if (row["op"], row["device"], row["phase"]) in keep]


# ---------------------------------------------------------------------------
# Profilers
# ---------------------------------------------------------------------------


class NullProfiler:
    """The default profiler: recording is a no-op.

    The engines guard every profiling step with ``if
    profiler.enabled:``, so the disabled layer costs one attribute
    load and a predictable branch per completed request — measured
    within run-to-run noise (see ``docs/TUNING.md``).
    """

    __slots__ = ()

    enabled = False
    table = None

    def record_request(self, op: str,
                       items: Sequence[Tuple[str, str, float]],
                       latency_s: float) -> None:
        pass


#: Shared no-op profiler instance; the default everywhere.
NULL_PROFILER = NullProfiler()


class Profiler:
    """Aggregates per-request phase items into an attribution table."""

    enabled = True

    def __init__(self) -> None:
        self.table = AttributionTable()

    def record_request(self, op: str,
                       items: Sequence[Tuple[str, str, float]],
                       latency_s: float) -> None:
        self.table.record_request(op, items, latency_s)


# ---------------------------------------------------------------------------
# Trace-based attribution (offline; either engine)
# ---------------------------------------------------------------------------


def profile_trace(events: Iterable[TraceEvent]) -> AttributionTable:
    """Fold a recorded trace into an attribution table.

    Works on any trace — legacy or event engine, fresh or re-read from
    a JSONL/Chrome file.  Only request-track spans count (background
    and device-internal time is off the critical path by construction).
    Queue time appears as the pooled ``(queue, wait)`` pair: the trace
    does not record which station a request waited at, unlike the live
    engine profiler, which attributes waits per device.
    """
    table = AttributionTable()
    children: Dict[int, List[TraceEvent]] = {}
    roots: List[TraceEvent] = []
    for event in events:
        if event.track != TRACK_REQUEST or event.req is None:
            continue
        if event.name == "request_start":
            roots.append(event)
        elif event.dur > 0.0:
            children.setdefault(event.req, []).append(event)
    for root in roots:
        items = [classify_phase(child.name) + (child.dur,)
                 for child in children.get(root.req, ())]
        table.record_request(str(root.outcome), items, root.dur)
    return table


# ---------------------------------------------------------------------------
# Folded-stack export (flamegraph tooling)
# ---------------------------------------------------------------------------


#: Enclosing background-section span names: they cover their children
#: on the timeline, so the fold keeps them as a single stack frame.
_SECTION_NAMES = ("flush", "scan")


def _fold_nested(events: List[TraceEvent], root: str,
                 stacks: Dict[str, float]) -> None:
    """Collapse one track's interval-nested spans into ``stacks``.

    Spans sorted by ``(ts, -dur)`` visit parents before the children
    laid inside their interval; a stack of open ``(end_ts, path)``
    entries recovers the nesting.  Each span first contributes its full
    duration at its path, then has every child's duration subtracted
    from it — leaving exactly its *self* time, the flamegraph
    convention.
    """
    open_spans: List[Tuple[float, List[str]]] = []  # (end_ts, path)
    ordered = sorted((e for e in events if e.dur > 0.0),
                     key=lambda e: (e.ts, -e.dur))
    for event in ordered:
        while open_spans and open_spans[-1][0] <= event.ts + 1e-12:
            open_spans.pop()
        if event.name in _SECTION_NAMES:
            frames = [event.name]
        else:
            frames = list(classify_phase(event.name))
        parent = open_spans[-1][1] if open_spans else [root]
        path = parent + frames
        key = ";".join(path)
        stacks[key] = stacks.get(key, 0.0) + event.dur
        if open_spans:  # convert the parent's emission to self time
            parent_key = ";".join(parent)
            stacks[parent_key] = stacks.get(parent_key,
                                            0.0) - event.dur
        open_spans.append((event.ts + event.dur, path))


def _fold_requests(events: List[TraceEvent],
                   stacks: Dict[str, float]) -> None:
    """Request track: one stack per phase under the request's op."""
    latency: Dict[int, Tuple[str, float]] = {}
    covered: Dict[int, float] = {}
    for event in events:
        if event.name == "request_start" and event.req is not None:
            latency[event.req] = (str(event.outcome), event.dur)
    for event in events:
        if event.name == "request_start" or event.req is None or \
                event.dur <= 0.0 or event.req not in latency:
            continue
        op = latency[event.req][0]
        device, phase = classify_phase(event.name)
        key = f"{op};{device};{phase}"
        stacks[key] = stacks.get(key, 0.0) + event.dur
        covered[event.req] = covered.get(event.req, 0.0) + event.dur
    for req, (op, total) in latency.items():
        residual = total - covered.get(req, 0.0)
        if residual > 1e-12:
            key = f"{op};host;{RESIDUAL_PHASE}"
            stacks[key] = stacks.get(key, 0.0) + residual


def fold_stacks(events: Iterable[TraceEvent]) -> Dict[str, float]:
    """Collapse a trace into ``{semicolon-joined stack: seconds}``.

    Request-track spans fold under their request's operation class
    (``read;ssd;read``), background and run tracks fold under their
    track name with span nesting preserved
    (``background;flush;hdd;log_append``).  Device-internal marks are
    excluded — their time already lives inside an enclosing span.
    """
    by_track: Dict[str, List[TraceEvent]] = {}
    for event in events:
        by_track.setdefault(event.track, []).append(event)
    stacks: Dict[str, float] = {}
    _fold_requests(by_track.get(TRACK_REQUEST, []), stacks)
    _fold_nested(by_track.get(TRACK_BACKGROUND, []), TRACK_BACKGROUND,
                 stacks)
    _fold_nested(by_track.get(TRACK_RUN, []), TRACK_RUN, stacks)
    return stacks


def export_folded(events: Iterable[TraceEvent],
                  destination: Union[str, TextIO]) -> int:
    """Write folded flame stacks (``frame;frame;frame count_us``).

    One line per distinct stack, counts in integer microseconds —
    directly consumable by flamegraph.pl, inferno or speedscope.
    Sub-microsecond stacks are dropped (they would round to zero).
    Returns the number of lines written.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_folded(events, handle)
    stacks = fold_stacks(events)
    count = 0
    for key in sorted(stacks):
        value = round(stacks[key] * 1e6)
        if value < 1:
            continue
        destination.write(f"{key} {value}\n")
        count += 1
    return count


def parse_folded(source: Union[str, TextIO, Iterable[str]]
                 ) -> Dict[str, int]:
    """Read folded flame stacks back: ``{stack: count_us}``.

    The inverse of :func:`export_folded` (and the single-count half of
    the flame-diff round trip in :mod:`repro.analysis.explain`).
    Accepts a path, an open handle, or an iterable of lines; blank
    lines are skipped, and the count is the text after the last space
    — stack frames themselves may contain spaces.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_folded(handle)
    stacks: Dict[str, int] = {}
    for line in source:
        line = line.strip()
        if not line:
            continue
        stack, _sep, count = line.rpartition(" ")
        stacks[stack] = stacks.get(stack, 0) + int(count)
    return stacks
