"""Per-request structured tracing for simulation runs.

:class:`~repro.sim.stats.StatsCollector` answers *how fast on average*;
this module answers *where each request's time went*.  Every request
flowing through a :class:`~repro.baselines.base.StorageSystem` can emit
typed span events — device operations, delta codec time, cache lookups,
background flushes and scans — stamped with sim-clock timestamps, block
addresses, byte counts and outcome tags.

Three pieces:

* **Tracers.**  :data:`NULL_TRACER` (the default) makes every hook a
  no-op and costs one attribute load plus a branch per instrumentation
  site; :class:`RingBufferTracer` records events into a bounded ring so
  memory stays fixed no matter how long the run is.
* **Exporters.**  :func:`export_jsonl` writes one JSON object per line
  (greppable, streamable); :func:`export_chrome_trace` writes the Chrome
  ``trace_event`` format, which opens directly in ``chrome://tracing``
  or https://ui.perfetto.dev.
* **Breakdown.**  :func:`phase_breakdown` folds a trace back into the
  paper's response-time decomposition: mean time per request spent in
  each phase (SSD read, delta decode, HDD log fetch...), summing to the
  mean request latency.

The full event schema — every event type, its fields and units — is
documented in ``docs/OBSERVABILITY.md``; a test keeps that document and
:data:`EVENT_TYPES` in lockstep.

Timeline semantics: the tracer lays request spans end to end on a
:class:`~repro.sim.clock.VirtualClock` — the *device busy time*
timeline, before the experiment runner divides by workload concurrency.
Background work (flushes, scans, destages) runs on its own track so it
never pollutes per-request attribution.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, TextIO, Tuple, \
    Union

from repro.sim.clock import VirtualClock

#: Every event type any instrumentation site may emit.  Tracers reject
#: unknown names, and a test asserts ``docs/OBSERVABILITY.md`` documents
#: exactly this set — the schema cannot silently drift.
EVENT_TYPES = frozenset({
    # request lifecycle
    "request_start",
    "cache_lookup",
    "queue",
    # device operations (named {device}_{operation})
    "dram_access",
    "ssd_read",
    "ssd_write",
    "hdd_read",
    "hdd_write",
    "nvram_read",
    "nvram_write",
    "raid0_read",
    "raid0_write",
    # delta-log operations (device ops re-labelled while the log runs)
    "hdd_log_append",
    "hdd_log_read",
    # CPU phases of the delta codec
    "delta_encode",
    "delta_decode",
    # background / device-internal activity
    "flush",
    "scan",
    "gc",
    # fault injection (repro.sim.faults; see docs/RELIABILITY.md)
    "fault",
})

#: Track names: where an event sits on the timeline.
TRACK_REQUEST = "request"        # on some request's critical path
TRACK_BACKGROUND = "background"  # off the critical path (flush, scan...)
TRACK_RUN = "run"                # outside any request (ingest, final flush)
TRACK_DEVICE = "device"          # device-internal, nested inside another
#                                # span's duration (GC inside an SSD write)

_TRACKS = (TRACK_REQUEST, TRACK_BACKGROUND, TRACK_RUN, TRACK_DEVICE)


class TraceEvent:
    """One typed span (``dur > 0``) or instant (``dur == 0``) event.

    Timestamps and durations are in *seconds* of virtual time; exporters
    convert to the microseconds trace viewers expect.
    """

    __slots__ = ("name", "ts", "dur", "track", "req", "lba", "nbytes",
                 "outcome")

    def __init__(self, name: str, ts: float, dur: float, track: str,
                 req: Optional[int] = None, lba: Optional[int] = None,
                 nbytes: Optional[int] = None,
                 outcome: Optional[str] = None) -> None:
        self.name = name
        self.ts = ts
        self.dur = dur
        self.track = track
        self.req = req
        self.lba = lba
        self.nbytes = nbytes
        self.outcome = outcome

    @property
    def is_instant(self) -> bool:
        return self.dur == 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSONL wire form (times in microseconds, ``None`` omitted)."""
        out: Dict[str, object] = {
            "name": self.name,
            "ts_us": self.ts * 1e6,
            "dur_us": self.dur * 1e6,
            "track": self.track,
        }
        if self.req is not None:
            out["req"] = self.req
        if self.lba is not None:
            out["lba"] = self.lba
        if self.nbytes is not None:
            out["bytes"] = self.nbytes
        if self.outcome is not None:
            out["outcome"] = self.outcome
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        return cls(
            name=str(data["name"]),
            ts=float(data["ts_us"]) / 1e6,  # type: ignore[arg-type]
            dur=float(data["dur_us"]) / 1e6,  # type: ignore[arg-type]
            track=str(data["track"]),
            req=data.get("req"),  # type: ignore[arg-type]
            lba=data.get("lba"),  # type: ignore[arg-type]
            nbytes=data.get("bytes"),  # type: ignore[arg-type]
            outcome=data.get("outcome"))  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceEvent({self.name!r}, ts={self.ts * 1e6:.1f}us, "
                f"dur={self.dur * 1e6:.1f}us, track={self.track!r})")


class NullTracer:
    """The default tracer: every hook is a no-op.

    Instrumentation sites guard emission with ``if tracer.enabled:``, so
    with this tracer the whole observability layer costs one attribute
    load and a predictable branch per site — measured under 2 % of
    benchmark wall-clock (see ``docs/TUNING.md``).
    """

    __slots__ = ()

    enabled = False

    def begin_request(self, op: str, lba: int, nblocks: int) -> None:
        pass

    def end_request(self, latency_s: float) -> None:
        pass

    def span(self, name: str, dur_s: float, lba: Optional[int] = None,
             nbytes: Optional[int] = None,
             outcome: Optional[str] = None) -> None:
        pass

    def instant(self, name: str, lba: Optional[int] = None,
                outcome: Optional[str] = None) -> None:
        pass

    def mark(self, name: str, dur_s: float, lba: Optional[int] = None,
             nbytes: Optional[int] = None,
             outcome: Optional[str] = None) -> None:
        pass

    def device_span(self, device: str, kind: str, dur_s: float,
                    lba: Optional[int] = None, nbytes: Optional[int] = None,
                    outcome: Optional[str] = None) -> None:
        pass

    def begin_background(self, name: Optional[str] = None,
                         outcome: Optional[str] = None) -> None:
        pass

    def end_background(self, extra_s: float = 0.0) -> None:
        pass

    def push_name_scope(self, name: str) -> None:
        pass

    def pop_name_scope(self) -> None:
        pass


#: Shared no-op tracer instance; the default everywhere.
NULL_TRACER = NullTracer()


class RingBufferTracer:
    """Records :class:`TraceEvent`\\ s into a bounded ring buffer.

    ``capacity_events`` bounds memory (one evicted event bumps
    :attr:`dropped` per overflow); ``None`` keeps every event.  The
    tracer owns a :class:`~repro.sim.clock.VirtualClock` (or shares one
    passed in) and advances it by each foreground span's duration, so
    request spans tile the busy-time timeline deterministically.
    """

    enabled = True

    def __init__(self, capacity_events: Optional[int] = 1 << 20,
                 clock: Optional[VirtualClock] = None) -> None:
        if capacity_events is not None and capacity_events < 1:
            raise ValueError(
                f"capacity must be >= 1 event, got {capacity_events}")
        self._capacity = capacity_events
        self.events: Deque[TraceEvent] = deque()
        self.dropped = 0
        self.clock = clock if clock is not None else VirtualClock()
        # Request state.
        self._req_seq = 0
        self._in_request = False
        self._req_op = ""
        self._req_lba = 0
        self._req_nblocks = 0
        self._req_start = 0.0
        # Background-section state: a stack of (name, start, outcome);
        # while non-empty, spans land on the background track at
        # ``_bg_cursor`` instead of advancing the foreground clock.
        self._bg_stack: List[Tuple[Optional[str], float,
                                   Optional[str]]] = []
        self._bg_cursor = 0.0
        self._bg_free_at = 0.0
        # Device-span renaming scopes (the delta log re-labels the raw
        # device operations it issues).
        self._name_scopes: List[str] = []

    # -- emission core ----------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        if self._capacity is not None and \
                len(self.events) >= self._capacity:
            self.events.popleft()
            self.dropped += 1
        self.events.append(event)

    def _place(self, dur_s: float) -> Tuple[float, str]:
        """Allot ``dur_s`` of timeline; returns (start ts, track)."""
        if self._bg_stack:
            ts = self._bg_cursor
            self._bg_cursor += dur_s
            return ts, TRACK_BACKGROUND
        ts = self.clock.now
        self.clock.advance(dur_s)
        return ts, TRACK_REQUEST if self._in_request else TRACK_RUN

    # -- request lifecycle ------------------------------------------------

    def begin_request(self, op: str, lba: int, nblocks: int) -> None:
        if self._in_request:
            raise RuntimeError("begin_request while a request is open")
        self._req_seq += 1
        self._in_request = True
        self._req_op = op
        self._req_lba = lba
        self._req_nblocks = nblocks
        self._req_start = self.clock.now

    def end_request(self, latency_s: float) -> None:
        if not self._in_request:
            raise RuntimeError("end_request without begin_request")
        # Reconcile: whatever slice of the latency was not covered by
        # emitted spans still advances the timeline, so the next request
        # starts after this one ends.
        self.clock.advance_to(self._req_start + latency_s)
        self._emit(TraceEvent(
            "request_start", self._req_start, latency_s, TRACK_REQUEST,
            req=self._req_seq, lba=self._req_lba,
            nbytes=self._req_nblocks * 4096, outcome=self._req_op))
        self._in_request = False

    # -- spans, instants, marks -------------------------------------------

    def span(self, name: str, dur_s: float, lba: Optional[int] = None,
             nbytes: Optional[int] = None,
             outcome: Optional[str] = None) -> None:
        """A phase that occupies ``dur_s`` of the current timeline."""
        if name not in EVENT_TYPES:
            raise ValueError(f"unknown trace event type {name!r}; add it "
                             f"to EVENT_TYPES and docs/OBSERVABILITY.md")
        ts, track = self._place(dur_s)
        self._emit(TraceEvent(name, ts, dur_s, track,
                              req=self._req_seq if self._in_request
                              else None,
                              lba=lba, nbytes=nbytes, outcome=outcome))

    def instant(self, name: str, lba: Optional[int] = None,
                outcome: Optional[str] = None) -> None:
        """A zero-duration marker (cache lookup outcomes and the like)."""
        self.span(name, 0.0, lba=lba, outcome=outcome)

    def mark(self, name: str, dur_s: float, lba: Optional[int] = None,
             nbytes: Optional[int] = None,
             outcome: Optional[str] = None) -> None:
        """A device-internal span whose time is *already inside* another
        span's duration (SSD garbage collection inside a program).  Does
        not advance the timeline and is excluded from breakdowns."""
        if name not in EVENT_TYPES:
            raise ValueError(f"unknown trace event type {name!r}; add it "
                             f"to EVENT_TYPES and docs/OBSERVABILITY.md")
        ts = self._bg_cursor if self._bg_stack else self.clock.now
        self._emit(TraceEvent(name, ts, dur_s, TRACK_DEVICE,
                              req=self._req_seq if self._in_request
                              else None,
                              lba=lba, nbytes=nbytes, outcome=outcome))

    def device_span(self, device: str, kind: str, dur_s: float,
                    lba: Optional[int] = None, nbytes: Optional[int] = None,
                    outcome: Optional[str] = None) -> None:
        """A device operation; named ``{device}_{kind}`` unless a name
        scope (e.g. the delta log) re-labels it."""
        if self._name_scopes:
            name = self._name_scopes[-1]
        else:
            name = f"{device}_{kind}"
        self.span(name, dur_s, lba=lba, nbytes=nbytes, outcome=outcome)

    # -- background sections ----------------------------------------------

    def begin_background(self, name: Optional[str] = None,
                         outcome: Optional[str] = None) -> None:
        """Enter a section charged off the request critical path.

        Spans emitted until :meth:`end_background` land on the
        background track; the foreground clock does not move.  A named
        section additionally emits one enclosing span covering its
        children.  Sections nest (a scan can trigger a flush).
        """
        if not self._bg_stack:
            # Background work is initiated now but the track may still
            # be busy with earlier background work; queue behind it so
            # the track stays non-overlapping and monotonic.
            self._bg_cursor = max(self.clock.now, self._bg_free_at)
        self._bg_stack.append((name, self._bg_cursor, outcome))

    def end_background(self, extra_s: float = 0.0) -> None:
        """Close the innermost background section.

        ``extra_s`` extends the section by time that had no individual
        spans (e.g. the similarity scan's CPU comparisons).
        """
        if not self._bg_stack:
            raise RuntimeError("end_background without begin_background")
        name, start, outcome = self._bg_stack.pop()
        self._bg_cursor += extra_s
        if name is not None:
            self._emit(TraceEvent(name, start, self._bg_cursor - start,
                                  TRACK_BACKGROUND,
                                  req=self._req_seq if self._in_request
                                  else None,
                                  outcome=outcome))
        if not self._bg_stack:
            self._bg_free_at = self._bg_cursor

    # -- device-span renaming scopes ---------------------------------------

    def push_name_scope(self, name: str) -> None:
        """Re-label device spans until :meth:`pop_name_scope` (the delta
        log labels its raw device I/O ``hdd_log_append``/``hdd_log_read``)."""
        if name not in EVENT_TYPES:
            raise ValueError(f"unknown trace event type {name!r}")
        self._name_scopes.append(name)

    def pop_name_scope(self) -> None:
        self._name_scopes.pop()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

def completeness_header(tracer) -> Dict[str, object]:
    """Trace-completeness metadata for an exported trace.

    Carries the ring buffer's bookkeeping into the file itself, so an
    exported trace can no longer silently under-report: ``recorded`` is
    the number of surviving events, ``dropped`` the number the ring
    evicted, and ``complete`` is ``True`` only when nothing was lost.
    """
    recorded = len(tracer.events)
    dropped = tracer.dropped
    return {"recorded": recorded, "dropped": dropped,
            "complete": dropped == 0}


def export_jsonl(events: Iterable[TraceEvent],
                 destination: Union[str, TextIO],
                 tracer=None) -> int:
    """Write events as JSON Lines; returns the number written.

    With ``tracer`` (the :class:`RingBufferTracer` that recorded the
    events), the first line is a ``{"trace_header": ...}`` object
    carrying :func:`completeness_header` metadata; readers recognise it
    by the absence of a ``name`` field.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_jsonl(events, handle, tracer=tracer)
    if tracer is not None:
        destination.write(json.dumps(
            {"trace_header": completeness_header(tracer)},
            sort_keys=True))
        destination.write("\n")
    count = 0
    for event in events:
        destination.write(json.dumps(event.to_dict(), sort_keys=True))
        destination.write("\n")
        count += 1
    return count


def read_jsonl(source: Union[str, TextIO]) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` objects.

    Header lines (objects without a ``name`` field) are skipped; use
    :func:`read_jsonl_header` to recover the completeness metadata.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    events = []
    for line in source:
        line = line.strip()
        if line:
            data = json.loads(line)
            if "name" in data:
                events.append(TraceEvent.from_dict(data))
    return events


def read_jsonl_header(source: Union[str, TextIO]) \
        -> Optional[Dict[str, object]]:
    """The ``trace_header`` of a JSONL trace, or None if absent."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl_header(handle)
    for line in source:
        line = line.strip()
        if line:
            data = json.loads(line)
            header = data.get("trace_header")
            return header if isinstance(header, dict) else None
    return None


#: Stable thread ids for the Chrome exporter, one per track.
_CHROME_TIDS = {TRACK_REQUEST: 1, TRACK_BACKGROUND: 2, TRACK_RUN: 3,
                TRACK_DEVICE: 4}
_CHROME_TRACK_NAMES = {TRACK_REQUEST: "requests",
                       TRACK_BACKGROUND: "background",
                       TRACK_RUN: "run (ingest / final flush)",
                       TRACK_DEVICE: "device internal"}


def export_chrome_trace(events: Iterable[TraceEvent],
                        destination: Union[str, TextIO],
                        process_name: str = "repro",
                        tracer=None) -> int:
    """Write the Chrome ``trace_event`` JSON format.

    The output loads directly in ``chrome://tracing`` and Perfetto
    (https://ui.perfetto.dev): spans become complete (``"X"``) events,
    instants become ``"i"`` events, and each track gets a named thread.
    Returns the number of trace events written (metadata excluded).

    With ``tracer``, :func:`completeness_header` metadata is written
    both as a top-level ``"metadata"`` key and as a
    ``trace_completeness`` metadata (``"M"``) record, so the drop count
    survives viewers that strip unknown top-level keys.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_chrome_trace(events, handle, process_name,
                                       tracer=tracer)
    records: List[Dict[str, object]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    header = completeness_header(tracer) if tracer is not None else None
    if header is not None:
        records.append({"ph": "M", "pid": 0, "tid": 0,
                        "name": "trace_completeness", "args": header})
    records.extend({"ph": "M", "pid": 0, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": _CHROME_TRACK_NAMES[track]}}
                   for track, tid in _CHROME_TIDS.items())
    count = 0
    for event in events:
        args: Dict[str, object] = {}
        if event.req is not None:
            args["req"] = event.req
        if event.lba is not None:
            args["lba"] = event.lba
        if event.nbytes is not None:
            args["bytes"] = event.nbytes
        if event.outcome is not None:
            args["outcome"] = event.outcome
        record: Dict[str, object] = {
            "name": event.name,
            "pid": 0,
            "tid": _CHROME_TIDS.get(event.track, 0),
            "ts": event.ts * 1e6,
            "args": args,
        }
        if event.is_instant:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = event.dur * 1e6
        records.append(record)
        count += 1
    payload: Dict[str, object] = {"traceEvents": records,
                                  "displayTimeUnit": "ms"}
    if header is not None:
        payload["metadata"] = {"trace_completeness": header}
    json.dump(payload, destination)
    return count


def load_chrome_metadata(source: Union[str, TextIO]) \
        -> Optional[Dict[str, object]]:
    """The ``trace_completeness`` metadata of a Chrome trace, or None."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_chrome_metadata(handle)
    payload = json.load(source)
    meta = payload.get("metadata", {})
    header = meta.get("trace_completeness")
    if isinstance(header, dict):
        return header
    for record in payload.get("traceEvents", ()):
        if record.get("ph") == "M" and \
                record.get("name") == "trace_completeness":
            args = record.get("args")
            return args if isinstance(args, dict) else None
    return None


def load_chrome_trace(source: Union[str, TextIO]) -> List[TraceEvent]:
    """Read a Chrome-format trace back into :class:`TraceEvent` objects.

    Round-trip helper for tests and offline analysis; metadata events
    are skipped and tracks recovered from the thread-id mapping.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_chrome_trace(handle)
    payload = json.load(source)
    tid_to_track = {tid: track for track, tid in _CHROME_TIDS.items()}
    events = []
    for record in payload["traceEvents"]:
        if record.get("ph") not in ("X", "i"):
            continue
        args = record.get("args", {})
        events.append(TraceEvent(
            name=record["name"],
            ts=record["ts"] / 1e6,
            dur=record.get("dur", 0.0) / 1e6,
            track=tid_to_track.get(record.get("tid"), TRACK_RUN),
            req=args.get("req"),
            lba=args.get("lba"),
            nbytes=args.get("bytes"),
            outcome=args.get("outcome")))
    return events


# ---------------------------------------------------------------------------
# Per-phase latency breakdown
# ---------------------------------------------------------------------------

class PhaseBreakdown:
    """Mean per-request time spent in each phase, for one request class.

    ``phases`` maps phase name to total seconds across all requests of
    the class; ``other`` is request latency no child span covered
    (zero for the I-CASH controller, whose instrumentation is exact).
    The per-phase means sum to the class's mean request latency — the
    paper's response-time decomposition recovered from one trace.
    """

    def __init__(self, op: str, n_requests: int, total_s: float,
                 phases: Dict[str, float], other_s: float) -> None:
        self.op = op
        self.n_requests = n_requests
        self.total_s = total_s
        self.phases = phases
        self.other_s = other_s

    @property
    def mean_us(self) -> float:
        """Mean request latency in microseconds."""
        return (self.total_s / self.n_requests * 1e6
                if self.n_requests else 0.0)

    def phase_mean_us(self, name: str) -> float:
        return (self.phases.get(name, 0.0) / self.n_requests * 1e6
                if self.n_requests else 0.0)

    def render(self) -> str:
        title = (f"{self.op} phase breakdown "
                 f"(n={self.n_requests}, mean {self.mean_us:.1f} us)")
        lines = [title, "-" * len(title)]
        if not self.n_requests:
            lines.append("(no requests traced)")
            return "\n".join(lines)
        rows = sorted(self.phases.items(), key=lambda kv: -kv[1])
        if self.other_s > 0:
            rows.append(("other", self.other_s))
        total = self.total_s or 1.0
        for name, seconds in rows:
            if seconds == 0.0:
                continue
            mean_us = seconds / self.n_requests * 1e6
            lines.append(f"{name:<20} {mean_us:>10.2f} us/op "
                         f"{seconds / total:>7.1%}")
        lines.append(f"{'total':<20} {self.mean_us:>10.2f} us/op "
                     f"{1:>7.1%}")
        return "\n".join(lines)


def phase_breakdown(events: Iterable[TraceEvent],
                    op: str = "read") -> PhaseBreakdown:
    """Fold request-track events into a per-phase latency breakdown.

    Only spans on the request track count (background and
    device-internal time is off the critical path by construction), so
    the phases partition each request's service latency exactly.
    """
    request_total: Dict[int, float] = {}
    child_totals: Dict[int, float] = {}
    phases: Dict[str, float] = {}
    pending: List[TraceEvent] = []
    for event in events:
        if event.track != TRACK_REQUEST:
            continue
        if event.name == "request_start":
            if event.outcome == op and event.req is not None:
                request_total[event.req] = event.dur
        elif event.dur > 0.0 and event.req is not None:
            pending.append(event)
    for event in pending:
        if event.req in request_total:
            phases[event.name] = phases.get(event.name, 0.0) + event.dur
            child_totals[event.req] = \
                child_totals.get(event.req, 0.0) + event.dur
    total = sum(request_total.values())
    covered = sum(child_totals.values())
    other = max(0.0, total - covered)
    return PhaseBreakdown(op, len(request_total), total, phases, other)
