"""Latency and counter statistics for simulation runs.

The paper reports mean read/write response times (Figures 7, 9, 11, 13),
throughput (Figures 6, 10, 14) and operation counts (Table 6).  This module
collects exactly those quantities: per-class latency samples with summary
statistics, and named integer counters.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from typing import Dict, Iterable, List, Optional


class LatencyStats:
    """Streaming summary of one class of latencies (e.g. all reads).

    Stores every sample so percentiles are exact; simulation runs in this
    repository stay in the tens-of-thousands of requests, which makes the
    memory cost negligible and the fidelity worth it.  The sorted order
    is computed once and patched incrementally, so interleaving
    ``record`` with ``percentile`` (as live reporting does) never
    re-sorts the whole sample set.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sum = 0.0
        #: Cached ascending order of ``_samples``; ``None`` when stale.
        self._sorted: Optional[List[float]] = None
        #: Streaming extrema, maintained on every record/merge so the
        #: ``min``/``max`` properties never rescan the sample list.
        self._min = math.inf
        self._max = -math.inf
        #: Streaming sum of squares, so ``variance``/``std`` never
        #: rescan the sample list (the bench harness sizes its
        #: noise tolerances from these).
        self._sumsq = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency cannot be negative: {seconds}")
        self._samples.append(seconds)
        self._sum += seconds
        self._sumsq += seconds * seconds
        if seconds < self._min:
            self._min = seconds
        if seconds > self._max:
            self._max = seconds
        if self._sorted is not None:
            # Keep the cache warm with an O(n) insertion rather than
            # throwing away the O(n log n) sort behind it.
            insort(self._sorted, seconds)

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples, in seconds."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean latency in seconds; 0.0 when no samples were recorded."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds, the unit the paper plots."""
        return self.mean * 1e6

    @property
    def variance(self) -> float:
        """Population variance in seconds²; 0.0 with < 2 samples.

        Computed from streaming moments; clamped at zero because the
        ``E[x²] - E[x]²`` form can go slightly negative in floating
        point when all samples are (near-)identical.
        """
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self._sum / n
        return max(0.0, self._sumsq / n - mean * mean)

    @property
    def std(self) -> float:
        """Population standard deviation in seconds."""
        return math.sqrt(self.variance)

    @property
    def std_us(self) -> float:
        """Population standard deviation in microseconds."""
        return self.std * 1e6

    def percentile(self, p: float) -> float:
        """Exact percentile (0 <= p <= 100) by nearest-rank.

        Returns 0.0 when no samples were recorded.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = self._ordered()
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def max(self) -> float:
        return self._max if self._samples else 0.0

    @property
    def min(self) -> float:
        return self._min if self._samples else 0.0

    def merge(self, other: "LatencyStats") -> None:
        """Fold another stats object into this one."""
        self._samples.extend(other._samples)
        self._sum += other._sum
        self._sumsq += other._sumsq
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._sorted = None

    def histogram(self, bins: int = 8, width: int = 40) -> str:
        """A log-scale ASCII latency histogram.

        Storage latencies span five orders of magnitude (RAM hits to
        mechanical seeks), so the bins are logarithmic — the bimodal
        hit/miss structure of a cache shows up at a glance.
        """
        if not self._samples:
            return "(no samples)"
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins}")
        low = max(min(self._samples), 1e-9)
        high = max(self._samples)
        if high <= low:
            return (f"[{low * 1e6:10.1f}us] "
                    f"{'#' * width} {len(self._samples)}")
        edges = [low * (high / low) ** (i / bins) for i in range(bins + 1)]
        edges[-1] = high * 1.0000001
        counts = [0] * bins
        # Binary-search each sample into its bin: O(samples x log bins)
        # instead of the O(samples x bins) linear scan.
        for sample in self._samples:
            i = bisect_right(edges, max(sample, low)) - 1
            counts[min(max(i, 0), bins - 1)] += 1
        peak = max(counts) or 1
        lines = []
        for i in range(bins):
            bar = "#" * max(0, round(counts[i] / peak * width))
            lines.append(
                f"[{edges[i] * 1e6:10.1f}us - {edges[i + 1] * 1e6:10.1f}us)"
                f" {bar:<{width}} {counts[i]}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LatencyStats(count={self.count}, "
                f"mean_us={self.mean_us:.1f})")


class StatsCollector:
    """Named counters plus named latency classes for one simulation run.

    Counters use plain string keys (``"ssd_writes"``, ``"hdd_reads"``,
    ``"delta_hits"``…) so each subsystem can record what matters to it
    without a central registry.  Latency classes work the same way
    (``"read"``, ``"write"``, or finer-grained keys).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._latencies: Dict[str, LatencyStats] = {}

    # -- counters ---------------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    # -- latencies --------------------------------------------------------

    def record_latency(self, klass: str, seconds: float) -> None:
        """Record one latency sample under class ``klass``."""
        self._latencies.setdefault(klass, LatencyStats()).record(seconds)

    def latency(self, klass: str) -> LatencyStats:
        """The stats object for ``klass`` (empty if nothing recorded)."""
        return self._latencies.setdefault(klass, LatencyStats())

    def latency_classes(self) -> Iterable[str]:
        return list(self._latencies)

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector into this one (counters add, samples pool)."""
        for name, value in other._counters.items():
            self.bump(name, value)
        for klass, stats in other._latencies.items():
            self.latency(klass).merge(stats)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary view useful for report tables and tests."""
        out: Dict[str, float] = {k: float(v) for k, v in self._counters.items()}
        for klass, stats in self._latencies.items():
            out[f"{klass}_mean_us"] = stats.mean_us
            out[f"{klass}_count"] = float(stats.count)
        return out

    def format_table(self, title: Optional[str] = None) -> str:
        """Human-readable rendering of the collected statistics."""
        lines: List[str] = []
        if title:
            lines.append(title)
            lines.append("-" * len(title))
        lines.extend(f"{name:<32} {self._counters[name]:>12}"
                     for name in sorted(self._counters))
        for klass in sorted(self._latencies):
            stats = self._latencies[klass]
            lines.append(
                f"{klass + ' latency':<32} mean={stats.mean_us:>10.1f}us "
                f"p99={stats.percentile(99) * 1e6:>10.1f}us n={stats.count}"
            )
        return "\n".join(lines)
