"""Discrete-event queueing engine for concurrent-load simulation.

The legacy experiment runner approximates wall-clock as *aggregate
device busy time / io_concurrency* — queueing delay, device contention
and saturation behaviour simply do not exist in that model.  This
module supplies the missing substrate: a deterministic discrete-event
simulation in which requests *arrive* on a timeline (driven by a
:mod:`repro.sim.load` generator), wait in per-device FIFO queues, and
overlap their service across devices, so per-request latency becomes
``queue_wait + service`` and throughput saturates when the bottleneck
device does.

Three pieces:

* **The capture tracer.**  Storage systems already emit one trace span
  per device operation (see :mod:`repro.sim.trace`).  The engine
  attaches a :class:`_CaptureTracer` that records, for each request,
  the ordered per-device spans of its service — the request's *phase
  list* — plus any background work (flushes, scans) the request
  triggered.  Requests are still processed in stream order, so block
  contents, device counters and service latencies are identical to a
  legacy run; the event simulation only re-times them.
* **Stations and the event heap.**  One :class:`DeviceStation` per
  device (keyed by trace name) with a configurable number of service
  slots (NCQ depth) and a FIFO queue.  A request's phases route
  through the stations in emission order, so request A's HDD phase
  overlaps request B's SSD phase.  Background work becomes *deferrable
  backlog*: it runs in bounded quanta only when a station has an idle
  slot and no waiting foreground request, and a foreground arrival
  waits at most one quantum — background yields to foreground.
* **Determinism.**  The event heap is keyed on ``(virtual time,
  sequence number)``; all randomness lives in the load generator's
  seeded RNG.  Two runs with the same seed produce identical event
  orders, latencies and queue waits — asserted by the test suite.

The experiment runner front end is
``run_benchmark(..., engine="event", load=...)``; the ``repro
loadtest`` CLI sweeps arrival rates over this engine to locate a
system's saturation knee.  Architecture notes: the "Event engine &
load generation" section of ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.profile import NULL_PROFILER, classify_phase
from repro.sim.stats import LatencyStats

#: Default service-slot counts (NCQ depth) per device trace name.
#: Flash exposes channel parallelism, a mechanical disk has one head,
#: the RAID stripe has one slot per member by default.
DEFAULT_DEVICE_SLOTS: Dict[str, int] = {
    "ssd": 8,
    "raid0": 4,
    "nvram": 4,
    "dram": 64,
}


@dataclass
class EngineConfig:
    """Tunables of the event engine.

    ``device_slots`` maps a device trace name to its number of parallel
    service slots (the queue depth the device accepts — NCQ for an
    AHCI disk, channel parallelism for flash); unlisted devices get
    ``default_slots``.  ``background_quantum_s`` bounds how long one
    deferrable background chunk may hold a slot, i.e. the worst-case
    time a foreground arrival waits behind background work.
    """

    device_slots: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_DEVICE_SLOTS))
    default_slots: int = 1
    background_quantum_s: float = 2e-3

    def slots_for(self, device: str) -> int:
        slots = self.device_slots.get(device, self.default_slots)
        if slots < 1:
            raise ValueError(
                f"station {device!r} needs at least one slot, got {slots}")
        return slots


# ---------------------------------------------------------------------------
# Capture tracer: per-request phase decomposition via the trace hooks
# ---------------------------------------------------------------------------


class _Span:
    """One buffered foreground emission of the current request."""

    __slots__ = ("kind", "name", "device", "dur", "lba", "nbytes",
                 "outcome")

    def __init__(self, kind: str, name: str, device: Optional[str],
                 dur: float, lba, nbytes, outcome) -> None:
        self.kind = kind  # "device" | "span" | "instant" | "mark"
        self.name = name
        self.device = device
        self.dur = dur
        self.lba = lba
        self.nbytes = nbytes
        self.outcome = outcome


class _CaptureTracer:
    """Implements the tracer protocol to harvest per-request phases.

    Attached by the engine via ``system.set_tracer``; every device
    operation, codec span and background section the system emits lands
    here.  Foreground (in-request) emissions are buffered and returned
    by :meth:`take_request`; background device spans accumulate as
    ``(device, seconds)`` backlog jobs; everything is optionally
    forwarded to a ``downstream`` recording tracer so ``engine="event"``
    runs still produce full traces (with an added ``queue`` span per
    delayed request).
    """

    enabled = True

    def __init__(self, downstream=None) -> None:
        self.downstream = downstream \
            if downstream is not None and downstream.enabled else None
        self._name_scopes: List[str] = []
        self._bg_depth = 0
        self._in_request = False
        self._req: Optional[Tuple[str, int, int]] = None
        self._entries: List[_Span] = []
        self._bg_jobs: List[Tuple[str, float]] = []

    # -- request lifecycle ------------------------------------------------

    def begin_request(self, op: str, lba: int, nblocks: int) -> None:
        if self._in_request:
            raise RuntimeError("begin_request while a request is open")
        self._in_request = True
        self._req = (op, lba, nblocks)
        self._entries = []

    def end_request(self, latency_s: float) -> None:
        if not self._in_request:
            raise RuntimeError("end_request without begin_request")
        self._in_request = False

    def take_request(self) -> Tuple[Tuple[str, int, int], List[_Span],
                                    List[Tuple[str, float]]]:
        """The last request's (op info, foreground spans, background
        jobs); clears the buffers."""
        req, entries = self._req, self._entries
        bg, self._bg_jobs = self._bg_jobs, []
        self._req, self._entries = None, []
        return req, entries, bg

    # -- emission hooks ---------------------------------------------------

    def _resolved(self, device: str, kind: str) -> str:
        if self._name_scopes:
            return self._name_scopes[-1]
        return f"{device}_{kind}"

    def device_span(self, device: str, kind: str, dur_s: float,
                    lba=None, nbytes=None, outcome=None) -> None:
        if self._bg_depth:
            self._bg_jobs.append((device, dur_s))
            if self.downstream is not None:
                self.downstream.device_span(device, kind, dur_s, lba=lba,
                                            nbytes=nbytes, outcome=outcome)
            return
        name = self._resolved(device, kind)
        if self._in_request:
            self._entries.append(_Span("device", name, device, dur_s,
                                       lba, nbytes, outcome))
        elif self.downstream is not None:  # run track (final flush)
            self.downstream.span(name, dur_s, lba=lba, nbytes=nbytes,
                                 outcome=outcome)

    def span(self, name: str, dur_s: float, lba=None, nbytes=None,
             outcome=None) -> None:
        if self._bg_depth:
            if self.downstream is not None:
                self.downstream.span(name, dur_s, lba=lba, nbytes=nbytes,
                                     outcome=outcome)
            return
        if self._in_request:
            kind = "instant" if dur_s == 0.0 else "span"
            self._entries.append(_Span(kind, name, None, dur_s,
                                       lba, nbytes, outcome))
        elif self.downstream is not None:
            self.downstream.span(name, dur_s, lba=lba, nbytes=nbytes,
                                 outcome=outcome)

    def instant(self, name: str, lba=None, outcome=None) -> None:
        self.span(name, 0.0, lba=lba, outcome=outcome)

    def mark(self, name: str, dur_s: float, lba=None, nbytes=None,
             outcome=None) -> None:
        # Device-internal time already inside another span's duration.
        if self._in_request and not self._bg_depth:
            self._entries.append(_Span("mark", name, None, dur_s,
                                       lba, nbytes, outcome))
        elif self.downstream is not None:
            self.downstream.mark(name, dur_s, lba=lba, nbytes=nbytes,
                                 outcome=outcome)

    # -- background sections ----------------------------------------------

    def begin_background(self, name=None, outcome=None) -> None:
        self._bg_depth += 1
        if self.downstream is not None:
            self.downstream.begin_background(name, outcome=outcome)

    def end_background(self, extra_s: float = 0.0) -> None:
        if self._bg_depth <= 0:
            raise RuntimeError("end_background without begin_background")
        self._bg_depth -= 1
        if self.downstream is not None:
            self.downstream.end_background(extra_s)

    # -- device-span renaming scopes ---------------------------------------

    def push_name_scope(self, name: str) -> None:
        self._name_scopes.append(name)
        if self.downstream is not None:
            self.downstream.push_name_scope(name)

    def pop_name_scope(self) -> None:
        self._name_scopes.pop()
        if self.downstream is not None:
            self.downstream.pop_name_scope()

    # -- downstream replay -------------------------------------------------

    def replay(self, req: Tuple[str, int, int], entries: List[_Span],
               wait_s: float, latency_s: float) -> None:
        """Emit one completed request to the downstream tracer.

        The request span tiles exactly: an explicit ``queue`` span for
        the time spent waiting in device queues, followed by the
        captured service phases.
        """
        ds = self.downstream
        if ds is None:
            return
        op, lba, nblocks = req
        ds.begin_request(op, lba, nblocks)
        if wait_s > 0.0:
            ds.span("queue", wait_s)
        for entry in entries:
            if entry.kind == "mark":
                ds.mark(entry.name, entry.dur, lba=entry.lba,
                        nbytes=entry.nbytes, outcome=entry.outcome)
            else:
                ds.span(entry.name, entry.dur, lba=entry.lba,
                        nbytes=entry.nbytes, outcome=entry.outcome)
        ds.end_request(latency_s)


# ---------------------------------------------------------------------------
# Stations
# ---------------------------------------------------------------------------


class DeviceStation:
    """One device's FIFO queue plus its parallel service slots.

    Foreground phases occupy slots in arrival order; deferrable
    background backlog runs in bounded quanta only on slots no
    foreground work wants.  Depth accounting is time-weighted so the
    run summary can report the mean queue depth exactly.
    """

    __slots__ = ("name", "slots", "waiting", "active", "bg_active",
                 "busy_s", "bg_busy_s", "backlog_s", "served",
                 "bg_chunks", "max_depth", "_depth_integral",
                 "_depth_since")

    def __init__(self, name: str, slots: int) -> None:
        self.name = name
        self.slots = slots
        self.waiting: deque = deque()  # (job, enqueue time)
        self.active = 0
        self.bg_active = 0
        self.busy_s = 0.0
        self.bg_busy_s = 0.0
        self.backlog_s = 0.0
        self.served = 0
        self.bg_chunks = 0
        self.max_depth = 0
        self._depth_integral = 0.0
        self._depth_since = 0.0

    @property
    def depth(self) -> int:
        """Requests waiting plus operations in service (incl. background
        quanta — they hold slots a foreground arrival must wait for)."""
        return len(self.waiting) + self.active + self.bg_active

    @property
    def free_slots(self) -> int:
        return self.slots - self.active - self.bg_active

    def note_depth(self, now: float) -> None:
        """Advance the time-weighted depth integral to ``now``."""
        self._depth_integral += self.depth * (now - self._depth_since)
        self._depth_since = now
        if self.depth > self.max_depth:
            self.max_depth = self.depth

    def mean_depth(self, elapsed: float) -> float:
        return self._depth_integral / elapsed if elapsed > 0 else 0.0

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the station's total slot capacity."""
        if elapsed <= 0:
            return 0.0
        return self.busy_s / (elapsed * self.slots)


@dataclass(frozen=True)
class StationSummary:
    """End-of-run accounting for one device station."""

    name: str
    slots: int
    busy_s: float
    background_s: float
    utilization: float
    served: int
    mean_depth: float
    max_depth: int


@dataclass(frozen=True)
class QueueingSummary:
    """End-of-run queueing behaviour of one event-engine run."""

    duration_s: float
    wait_mean_us: float
    wait_p99_us: float
    wait_max_us: float
    stations: Dict[str, StationSummary]

    @property
    def bottleneck(self) -> Optional[str]:
        """The station with the highest utilisation (None when idle)."""
        best, best_util = None, 0.0
        for summary in self.stations.values():
            if summary.utilization > best_util:
                best, best_util = summary.name, summary.utilization
        return best

    def render(self) -> str:
        lines = [f"queueing over {self.duration_s:.4f}s of event time "
                 f"(wait mean {self.wait_mean_us:.1f} us, "
                 f"p99 {self.wait_p99_us:.1f} us)"]
        for name in sorted(self.stations):
            s = self.stations[name]
            lines.append(
                f"  {name:<8} slots={s.slots} util={s.utilization:6.1%} "
                f"depth mean={s.mean_depth:6.2f} max={s.max_depth:<4d} "
                f"served={s.served}")
        return "\n".join(lines)

    def to_doc(self) -> Dict[str, object]:
        """JSON-ready form (``repro critpath --json`` and the explain
        engine's machine output)."""
        return {
            "duration_s": self.duration_s,
            "wait_mean_us": self.wait_mean_us,
            "wait_p99_us": self.wait_p99_us,
            "wait_max_us": self.wait_max_us,
            "bottleneck": self.bottleneck,
            "stations": {
                name: {"slots": s.slots, "busy_s": s.busy_s,
                       "background_s": s.background_s,
                       "utilization": s.utilization,
                       "served": s.served,
                       "mean_depth": s.mean_depth,
                       "max_depth": s.max_depth}
                for name, s in sorted(self.stations.items())},
        }


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class RequestRecord:
    """What the engine measured for one completed request."""

    index: int
    is_read: bool
    arrival_s: float
    service_s: float
    wait_s: float = 0.0
    completion_s: float = 0.0
    verified: int = 0

    @property
    def latency_s(self) -> float:
        """Response time: queue wait plus service."""
        return self.wait_s + self.service_s


class _Job:
    """One in-flight request routing through its station phases."""

    __slots__ = ("record", "req", "phases", "phase_idx", "residual",
                 "entries", "waits")

    def __init__(self, record: RequestRecord,
                 req: Tuple[str, int, int],
                 phases: List[Tuple[str, float]], residual: float,
                 entries: Optional[List[_Span]],
                 waits: Optional[List[Tuple[str, float]]] = None) -> None:
        self.record = record
        self.req = req
        self.phases = phases
        self.phase_idx = 0
        self.residual = residual
        self.entries = entries
        #: Per-station queue waits ``(device, seconds)`` — collected
        #: only when a profiler is attached (None otherwise).
        self.waits = waits


def service_items(entries: List[_Span]) -> List[Tuple[str, str, float]]:
    """A captured request's service spans as ``(device, phase, dur)``
    attribution items (marks and instants excluded — their time is
    zero or already inside another span's duration)."""
    items = []
    for entry in entries:
        if entry.dur <= 0.0 or entry.kind == "mark":
            continue
        if entry.kind == "device":
            items.append(classify_phase(entry.name, device=entry.device)
                         + (entry.dur,))
        else:
            items.append(classify_phase(entry.name) + (entry.dur,))
    return items


_ARRIVAL = "arrival"
_PHASE_DONE = "phase_done"
_BG_DONE = "background_done"
_COMPLETE = "complete"


class EventEngine:
    """Deterministic discrete-event simulation over one storage system.

    Requests are *admitted* (processed through the system, in stream
    order, capturing their per-device phase decomposition) at their
    arrival events, then routed through the device stations; their
    latency is what the event timeline says it is.  Totals — service
    times, device counters, SSD writes, block contents — are identical
    to a legacy closed-loop replay by construction, which the collapse
    property test asserts.
    """

    def __init__(self, system, config: Optional[EngineConfig] = None,
                 downstream_tracer=None,
                 keep_event_log: bool = False,
                 profiler=None) -> None:
        self.system = system
        self.config = config if config is not None else EngineConfig()
        self.capture = _CaptureTracer(downstream_tracer)
        #: Critical-path profiler (:mod:`repro.sim.profile`).  The null
        #: default keeps completion handling at one branch.
        self.profiler = profiler if profiler is not None \
            else NULL_PROFILER
        self._profile = self.profiler.enabled
        self._profile_from = 0
        self.stations: Dict[str, DeviceStation] = {}
        self.now = 0.0
        self.records: List[RequestRecord] = []
        self.queue_waits = LatencyStats()
        self.in_flight = 0
        #: Event time of the last request completion.  ``t_end`` keeps
        #: running past it while deferred background backlog drains, so
        #: throughput windows close here, not at heap exhaustion.
        self.last_completion_s = 0.0
        #: (time, action, label) triples when ``keep_event_log`` — the
        #: determinism test diffs two runs' logs exactly.
        self.event_log: Optional[List[Tuple[float, str, str]]] = \
            [] if keep_event_log else None
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0
        self._registry = None
        self._wait_hist = None
        #: Optional :class:`repro.sim.faults.FaultInjector` — fires
        #: scheduled faults at admission boundaries and closes
        #: degraded-mode windows as repair backlog drains.
        self.faults = None
        for device in system.devices():
            self._station(getattr(device, "trace_name",
                                  getattr(device, "name", "device")))

    # -- stations and metrics ---------------------------------------------

    def attach_faults(self, injector) -> None:
        """Arm a :class:`repro.sim.faults.FaultInjector` for the next
        :meth:`run`.  The injector sees every admission index (before
        the request is processed) and every completion/background
        event, so injected repair backlog competes with foreground I/O
        through the same station queues."""
        self.faults = injector

    def _station(self, name: str) -> DeviceStation:
        station = self.stations.get(name)
        if station is None:
            station = DeviceStation(name, self.config.slots_for(name))
            self.stations[name] = station
            if self._registry is not None:
                self._register_station(station)
        return station

    def register_metrics(self, registry) -> None:
        """Expose queue depth, wait times and utilisation as instruments.

        Gauges are callback-backed (sampled by the monitor on window
        boundaries); the wait histogram is observed once per completed
        request.  Also repoints ``outstanding_requests`` at the
        engine's true in-flight count — the workload-level default
        reports the closed-loop stream count, which an open-loop run
        makes meaningless.
        """
        if registry is None or not registry.enabled:
            return
        self._registry = registry
        self._wait_hist = registry.histogram("queue_wait_us")
        registry.gauge("outstanding_requests") \
            .set_fn(lambda: self.in_flight)
        for station in self.stations.values():
            self._register_station(station)

    def _register_station(self, station: DeviceStation) -> None:
        registry = self._registry
        registry.gauge("queue_depth", ("device",)) \
            .labels(device=station.name) \
            .set_fn(lambda s=station: s.depth)
        registry.gauge("device_utilization", ("device",)) \
            .labels(device=station.name) \
            .set_fn(lambda s=station: s.utilization(self.now)
                    if self.now > 0 else 0.0)

    # -- event heap --------------------------------------------------------

    def _push(self, time_s: float, action: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_s, self._seq, action, payload))

    def _log_event(self, action: str, label: str) -> None:
        if self.event_log is not None:
            self.event_log.append((self.now, action, label))

    # -- the run -----------------------------------------------------------

    def run(self, workload, load, verify_reads: bool = False,
            on_admit=None, on_complete=None,
            profile_from: int = 0) -> List[RequestRecord]:
        """Drive ``workload``'s stream through the system under ``load``.

        ``on_admit(index)`` fires before request ``index`` (0-based) is
        processed — the runner snapshots warmup state there;
        ``on_complete(record)`` fires at each completion event in event
        time.  ``profile_from`` keeps warmup requests (admission index
        below it) out of the attached profiler's attribution table so
        it covers the same window the latency statistics do.  Returns
        the completed records in admission order.
        """
        self._profile_from = profile_from
        self.system.set_tracer(self.capture)
        self._stream = workload.requests()
        self._workload = workload
        self._load = load
        self._verify = verify_reads
        self._on_admit = on_admit
        self._on_complete = on_complete
        load.reset()
        if load.open_loop:
            self._push(load.next_arrival(0.0), _ARRIVAL, None)
        else:
            for _ in range(load.clients):
                self._push(load.initial_think(), _ARRIVAL, None)
        while self._heap:
            time_s, _seq, action, payload = heapq.heappop(self._heap)
            self.now = time_s
            if action == _ARRIVAL:
                self._handle_arrival()
            elif action == _PHASE_DONE:
                self._handle_phase_done(payload)
            elif action == _BG_DONE:
                self._handle_bg_done(payload)
            else:
                self._handle_complete(payload)
        if self.faults is not None:
            self.faults.finish(self.now)
        return self.records

    @property
    def t_end(self) -> float:
        return self.now

    def summary(self) -> QueueingSummary:
        elapsed = self.now
        stations = {}
        for name, station in self.stations.items():
            station.note_depth(self.now)
            stations[name] = StationSummary(
                name=name, slots=station.slots, busy_s=station.busy_s,
                background_s=station.bg_busy_s,
                utilization=station.utilization(elapsed),
                served=station.served,
                mean_depth=station.mean_depth(elapsed),
                max_depth=station.max_depth)
        waits = self.queue_waits
        return QueueingSummary(
            duration_s=elapsed,
            wait_mean_us=waits.mean_us,
            wait_p99_us=waits.percentile(99) * 1e6,
            wait_max_us=waits.max * 1e6,
            stations=stations)

    # -- event handlers ----------------------------------------------------

    def _handle_arrival(self) -> None:
        request = next(self._stream, None)
        if request is None:
            self._log_event(_ARRIVAL, "drained")
            return
        index = len(self.records)
        self._log_event(_ARRIVAL, f"req{index}")
        if self.faults is not None:
            self.faults.on_admit(index)
        if self._on_admit is not None:
            self._on_admit(index)
        verified = 0
        if self._verify and request.is_read:
            latency, contents = self.system.process_read(request)
            shadow = self._workload.shadow
            for offset, content in enumerate(contents):
                if not np.array_equal(content,
                                      shadow[request.lba + offset]):
                    raise AssertionError(
                        f"{self.system.name} returned wrong content for "
                        f"block {request.lba + offset} on request {index}")
                verified += 1
        else:
            latency = self.system.process(request)
        req, entries, bg_jobs = self.capture.take_request()
        record = RequestRecord(index=index, is_read=request.is_read,
                               arrival_s=self.now, service_s=latency,
                               verified=verified)
        self.records.append(record)
        self.in_flight += 1
        phases = self._phases_of(entries)
        covered = sum(dur for _station, dur in phases)
        residual = max(0.0, latency - covered)
        profiled = self._profile and index >= self._profile_from
        job = _Job(record, req, phases, residual,
                   entries if (self.capture.downstream is not None
                               or profiled) else None,
                   waits=[] if profiled else None)
        # Background work the request triggered becomes deferrable
        # backlog on the stations it targets.
        for device, dur in bg_jobs:
            station = self._station(device)
            station.backlog_s += dur
            self._kick(station)
        if self._load.open_loop:
            self._push(self._load.next_arrival(self.now), _ARRIVAL, None)
        self._route(job)

    @staticmethod
    def _phases_of(entries: List[_Span]) -> List[Tuple[str, float]]:
        """Merge the request's device spans into ordered station phases.

        Consecutive spans on the same device coalesce into one phase
        (one queue entry per device visit, not per 4 KB block); CPU
        spans and instants stay out — they become the non-contended
        residual tail.
        """
        phases: List[Tuple[str, float]] = []
        for entry in entries:
            if entry.kind != "device" or entry.dur <= 0.0:
                continue
            if phases and phases[-1][0] == entry.device:
                phases[-1] = (entry.device, phases[-1][1] + entry.dur)
            else:
                phases.append((entry.device, entry.dur))
        return phases

    def _route(self, job: _Job) -> None:
        if job.phase_idx < len(job.phases):
            self._enter(self._station(job.phases[job.phase_idx][0]), job)
        else:
            self._push(self.now + job.residual, _COMPLETE, job)

    def _enter(self, station: DeviceStation, job: _Job) -> None:
        station.note_depth(self.now)
        if station.free_slots > 0 and not station.waiting:
            self._start_service(station, job)
        else:
            station.waiting.append((job, self.now))

    def _start_service(self, station: DeviceStation, job: _Job) -> None:
        dur = job.phases[job.phase_idx][1]
        station.active += 1
        station.busy_s += dur
        self._push(self.now + dur, _PHASE_DONE, (station, job))

    def _handle_phase_done(self, payload) -> None:
        station, job = payload
        self._log_event(_PHASE_DONE,
                        f"{station.name}:req{job.record.index}")
        station.note_depth(self.now)
        station.active -= 1
        station.served += 1
        job.phase_idx += 1
        self._route(job)
        self._kick(station)

    def _kick(self, station: DeviceStation) -> None:
        """Fill free slots: waiting foreground first, then one
        background quantum per remaining idle slot."""
        station.note_depth(self.now)
        while station.free_slots > 0 and station.waiting:
            job, enqueued = station.waiting.popleft()
            wait = self.now - enqueued
            job.record.wait_s += wait
            if job.waits is not None and wait > 0.0:
                job.waits.append((station.name, wait))
            self._start_service(station, job)
        while station.free_slots > 0 and station.backlog_s > 0.0 \
                and not station.waiting:
            chunk = min(self.config.background_quantum_s,
                        station.backlog_s)
            station.backlog_s -= chunk
            station.bg_active += 1
            station.busy_s += chunk
            station.bg_busy_s += chunk
            station.bg_chunks += 1
            self._push(self.now + chunk, _BG_DONE, station)

    def _handle_bg_done(self, station: DeviceStation) -> None:
        self._log_event(_BG_DONE, station.name)
        station.note_depth(self.now)
        station.bg_active -= 1
        self._kick(station)
        if self.faults is not None:
            self.faults.on_event(self.now)

    def _handle_complete(self, job: _Job) -> None:
        record = job.record
        self._log_event(_COMPLETE, f"req{record.index}")
        record.completion_s = self.now
        self.last_completion_s = self.now
        self.in_flight -= 1
        self.queue_waits.record(record.wait_s)
        if self._wait_hist is not None:
            self._wait_hist.observe(record.wait_s * 1e6)
        if job.entries is not None and \
                self.capture.downstream is not None:
            self.capture.replay(job.req, job.entries, record.wait_s,
                                record.latency_s)
        if job.waits is not None:
            items = [(device, "queue_wait", dur)
                     for device, dur in job.waits]
            items.extend(service_items(job.entries))
            self.profiler.record_request(job.req[0], items,
                                         record.latency_s)
        if self._on_complete is not None:
            self._on_complete(record)
        if self.faults is not None:
            self.faults.on_event(self.now)
        if not self._load.open_loop:
            self._push(self.now + self._load.next_think(), _ARRIVAL,
                       None)
