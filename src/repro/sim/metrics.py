"""Windowed time-series metrics, periodic sampling and SLO monitoring.

:mod:`repro.sim.trace` answers *where one request's time went*;
:mod:`repro.sim.stats` answers *how fast on average over a whole run*.
This module answers the question every paper figure actually plots:
**how did each quantity evolve over simulated time?**  Throughput over
time, SSD write counts for the lifetime argument (Table 6), delta-log
occupancy, reference-block churn — all are time series, and a run-end
aggregate cannot show convergence, warm-up or pathologies that cancel
out in the mean.

Four pieces:

* **Instruments and the registry.**  :class:`Counter` (monotone),
  :class:`Gauge` (point-in-time) and :class:`Histogram` (bucketed
  distribution), each optionally labelled (``device="ssd"``).  A
  :class:`MetricsRegistry` owns them; every instrument name must appear
  in :data:`INSTRUMENT_CATALOGUE`, and a test keeps that catalogue in
  lockstep with the table in ``docs/OBSERVABILITY.md`` — exactly the
  discipline ``EVENT_TYPES`` imposes on trace events.  Counters and
  gauges may be *callback-backed* (``set_fn``), reading cumulative
  values straight out of the existing :class:`~repro.sim.stats`
  counters at sample time — so instrumenting a subsystem costs nothing
  on the hot path.  The default is :data:`NULL_REGISTRY`, a no-op whose
  overhead is one attribute load per guarded site.
* **The sampler.**  :class:`PeriodicSampler` snapshots every registered
  instrument at a fixed *sim-time* interval into a bounded
  :class:`SeriesStore`.  On overflow the store merges adjacent windows
  (and the sampler doubles its interval to match), so memory stays
  fixed however long the run is — downsampling, not truncation.
* **Exporters.**  :func:`export_series_csv` and
  :func:`export_series_jsonl` write per-window rows (counters as
  per-window deltas, so the column sums reproduce the run totals);
  :func:`export_prometheus` writes the final cumulative state in the
  Prometheus text exposition format.
* **Health.**  :class:`HealthMonitor` evaluates declarative
  :class:`SLORule`\\ s (p99 read latency, SSD daily-write budget,
  delta-log high-water mark...) against every window and records
  :class:`SLOBreach` events.

:class:`Monitor` bundles the four for one benchmark run;
``python -m repro monitor`` is the CLI front end, and
:func:`repro.experiments.runner.run_benchmark` threads the resulting
series into :class:`~repro.experiments.runner.RunResult`.

Window semantics: timestamps are seconds of *device busy time* — the
same virtual timeline the tracer lays spans on, before the experiment
runner divides by workload concurrency.  Samples are taken when a
request *crosses* a window boundary, so attribution granularity is one
request; per-window counter deltas always telescope exactly to the
end-of-run totals.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, \
    TextIO, Tuple, Union

# ---------------------------------------------------------------------------
# Instrument catalogue (the doc-parity-checked schema)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstrumentSpec:
    """Catalogue entry: what an instrument is, in what unit."""

    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    help: str


#: Every instrument name any registration site may create.  The registry
#: rejects unknown names, and a test asserts ``docs/OBSERVABILITY.md``
#: documents exactly this set — the metrics schema cannot silently
#: drift, just like the trace ``EVENT_TYPES``.
INSTRUMENT_CATALOGUE: Dict[str, InstrumentSpec] = {
    # run / workload level
    "requests_read_total": InstrumentSpec(
        "counter", "requests", "read requests completed"),
    "requests_write_total": InstrumentSpec(
        "counter", "requests", "write requests completed"),
    "read_latency_us": InstrumentSpec(
        "histogram", "us", "per-request read service latency"),
    "write_latency_us": InstrumentSpec(
        "histogram", "us", "per-request write service latency"),
    "offered_load_streams": InstrumentSpec(
        "gauge", "streams", "concurrent client streams the workload "
                            "drives (closed-loop offered load)"),
    "outstanding_requests": InstrumentSpec(
        "gauge", "requests", "requests in flight (equals the stream "
                             "count in a closed loop)"),
    # controller level
    "delta_hits_total": InstrumentSpec(
        "counter", "hits", "delta reads served from the RAM segment "
                           "pool"),
    "delta_log_fetches_total": InstrumentSpec(
        "counter", "fetches", "delta reads that went to the HDD log"),
    "delta_hit_ratio": InstrumentSpec(
        "gauge", "ratio", "RAM delta hits / (hits + log fetches), "
                          "cumulative"),
    "delta_writes_total": InstrumentSpec(
        "counter", "writes", "writes absorbed as deltas (associates)"),
    "ram_data_fill": InstrumentSpec(
        "gauge", "ratio", "data-block RAM budget in use"),
    "ram_delta_fill": InstrumentSpec(
        "gauge", "ratio", "delta segment pool in use"),
    "references_active": InstrumentSpec(
        "gauge", "blocks", "reference blocks currently cached"),
    "reference_churn_total": InstrumentSpec(
        "counter", "events", "reference promotions plus retirements "
                             "(heatmap churn)"),
    "dirty_deltas": InstrumentSpec(
        "gauge", "blocks", "deltas awaiting a flush (the crash-loss "
                           "window)"),
    # generic device level (labelled by device)
    "device_read_ops_total": InstrumentSpec(
        "counter", "ops", "read operations serviced by a device"),
    "device_write_ops_total": InstrumentSpec(
        "counter", "ops", "write operations serviced by a device"),
    "device_busy_seconds": InstrumentSpec(
        "counter", "s", "cumulative device busy time"),
    # SSD specifics
    "ssd_program_total": InstrumentSpec(
        "counter", "pages", "host + GC page programs (endurance "
                            "consumption behind Table 6)"),
    "ssd_erase_total": InstrumentSpec(
        "counter", "erases", "block erases (endurance consumption)"),
    "ssd_gc_total": InstrumentSpec(
        "counter", "collections", "garbage-collection invocations"),
    "ssd_wear_spread": InstrumentSpec(
        "gauge", "erases", "max minus min per-block erase count "
                           "(wear-leveling quality)"),
    "ssd_write_amplification": InstrumentSpec(
        "gauge", "ratio", "(host + GC programs) / host programs"),
    # HDD specifics
    "hdd_seek_total": InstrumentSpec(
        "counter", "ops", "accesses that paid a seek (near + random)"),
    "hdd_sequential_total": InstrumentSpec(
        "counter", "ops", "accesses with the head already in place"),
    "hdd_seek_ratio": InstrumentSpec(
        "gauge", "ratio", "seeking accesses / all accesses, cumulative"),
    # delta log
    "delta_log_occupancy": InstrumentSpec(
        "gauge", "ratio", "log region slots holding a delta block"),
    "delta_log_wraps_total": InstrumentSpec(
        "counter", "wraps", "times the circular log wrapped around"),
    "delta_log_appends_total": InstrumentSpec(
        "counter", "blocks", "delta blocks ever appended to the log"),
    "delta_log_corrupt_total": InstrumentSpec(
        "counter", "blocks", "torn/corrupted log blocks detected and "
                             "skipped (append overwrites + replays)"),
    # recovery
    "recovery_replays_total": InstrumentSpec(
        "counter", "replays", "delta-log replay passes performed"),
    "recovery_records_total": InstrumentSpec(
        "counter", "records", "delta records yielded by replay passes"),
    # event-engine queueing (engine="event" runs only)
    "queue_depth": InstrumentSpec(
        "gauge", "requests", "requests waiting or in service at a "
                             "device station (`device` label)"),
    "queue_wait_us": InstrumentSpec(
        "histogram", "us", "per-request time spent waiting in device "
                           "queues (event engine)"),
    "device_utilization": InstrumentSpec(
        "gauge", "ratio", "station busy time / elapsed event time "
                          "(`device` label)"),
    # fault injection (repro.sim.faults; see docs/RELIABILITY.md)
    "faults_injected_total": InstrumentSpec(
        "counter", "faults", "faults fired by the injector "
                             "(`kind` label)"),
    "rebuild_io_total": InstrumentSpec(
        "counter", "blocks", "repair I/O injected by faults: remapped "
                             "flash pages, RAID rebuild blocks, "
                             "replayed log blocks, scrubbed references"),
    "degraded_mode_seconds": InstrumentSpec(
        "counter", "s", "event time between a fault firing and its "
                        "repair backlog fully draining"),
}

_KINDS = ("counter", "gauge", "histogram")

#: Default latency buckets (microseconds): log-spaced across the five
#: orders of magnitude storage latencies span, RAM hits to full seeks.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5)


def escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping.

    Inside ``name{k="v"}`` a backslash, double quote, or line feed
    would corrupt the line; the exposition format spells them ``\\\\``,
    ``\\"`` and ``\\n``.
    """
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def unescape_label_value(text: str) -> str:
    """Inverse of :func:`escape_label_value` (unknown escapes pass the
    escaped character through, matching lenient exposition parsers)."""
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            follower = text[i + 1]
            out.append("\n" if follower == "n" else follower)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def series_key(name: str, **labels: str) -> str:
    """The canonical series key: ``name`` or ``name{k="v",...}``.

    Label pairs are sorted, matching the Prometheus text format, so the
    same (name, labels) always produces the same key.  Values are
    escaped with :func:`escape_label_value`, so keys stay one valid
    exposition line (and one CSV cell) whatever the labels contain;
    :func:`parse_series_key` round-trips them.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(labels[k])}"'
                     for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """``name{k="v",...}`` -> ``(name, labels)``, unescaping values.

    The inverse of :func:`series_key`; raises ``ValueError`` on
    malformed keys instead of guessing.
    """
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: Dict[str, str] = {}
    try:
        if not rest.endswith("}"):
            raise IndexError
        text = rest[:-1]
        i = 0
        while i < len(text):
            eq = text.index("=", i)
            if eq == i or text[eq + 1] != '"':
                raise IndexError
            raw: List[str] = []
            j = eq + 2
            while text[j] != '"':
                if text[j] == "\\":
                    raw.append(text[j:j + 2])
                    j += 2
                else:
                    raw.append(text[j])
                    j += 1
            labels[text[i:eq]] = unescape_label_value("".join(raw))
            i = j + 1
            if i < len(text):
                if text[i] != ",":
                    raise IndexError
                i += 1
    except (IndexError, ValueError):
        raise ValueError(f"malformed series key {key!r}") from None
    return name, labels


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class _CounterChild:
    """One label-combination of a counter: incremented or callback-fed."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        if self._fn is not None:
            raise RuntimeError("callback-backed counter cannot be inc()ed")
        self._value += amount

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Source this counter from ``fn`` at sample time (zero hot-path
        cost; the function must return a monotone cumulative value)."""
        self._fn = fn

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class _GaugeChild:
    """One label-combination of a gauge: set or callback-fed."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._value = float(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class _HistogramChild:
    """One label-combination of a histogram: bounded buckets + sum."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class Instrument:
    """One named instrument with zero or more label dimensions.

    ``labels(**kv)`` returns the child for one label combination
    (creating it on first use); an unlabelled instrument is its own
    sole child, so ``counter.inc()`` works directly.
    """

    def __init__(self, name: str, spec: InstrumentSpec,
                 labelnames: Tuple[str, ...] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.spec = spec
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None \
            else DEFAULT_LATENCY_BUCKETS_US
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default

    def _make_child(self):
        if self.spec.kind == "counter":
            return _CounterChild()
        if self.spec.kind == "gauge":
            return _GaugeChild()
        return _HistogramChild(self.buckets)

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # Unlabelled convenience passthroughs.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._default.set_fn(fn)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    # -- collection -------------------------------------------------------

    def collect(self, values: Dict[str, float],
                kinds: Dict[str, str]) -> None:
        """Flatten current state into ``values``/``kinds``.

        Histograms expand Prometheus-style: cumulative ``_bucket``
        counts per ``le`` bound, plus ``_sum`` and ``_count`` — all
        monotone, so window deltas telescope like plain counters.
        """
        for key_tuple, child in self._children.items():
            labels = dict(zip(self.labelnames, key_tuple))
            if self.spec.kind in ("counter", "gauge"):
                key = series_key(self.name, **labels)
                values[key] = child.value()
                kinds[key] = self.spec.kind
                continue
            running = 0
            for bound, count in zip(child.bounds, child.counts):
                running += count
                key = series_key(f"{self.name}_bucket",
                                 le=_format_bound(bound), **labels)
                values[key] = float(running)
                kinds[key] = "counter"
            key = series_key(f"{self.name}_bucket", le="+Inf", **labels)
            values[key] = float(child.count)
            kinds[key] = "counter"
            sum_key = series_key(f"{self.name}_sum", **labels)
            values[sum_key] = child.sum
            kinds[sum_key] = "counter"
            count_key = series_key(f"{self.name}_count", **labels)
            values[count_key] = float(child.count)
            kinds[count_key] = "counter"


def _format_bound(bound: float) -> str:
    """Stable ``le`` label text: integral bounds render without ``.0``."""
    return str(int(bound)) if float(bound).is_integer() else repr(bound)


class _NullInstrument:
    """Every method a no-op; ``labels`` returns itself."""

    __slots__ = ()

    def labels(self, **labelvalues):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_fn(self, fn) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default registry: registration and recording are no-ops.

    Instrumentation sites guard with ``if registry.enabled:``, so the
    disabled metrics layer costs one attribute load and a predictable
    branch — measured within ~1 % of the uninstrumented path (see
    ``docs/TUNING.md``).
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, labelnames: Tuple[str, ...] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labelnames: Tuple[str, ...] = ()):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labelnames: Tuple[str, ...] = (),
                  buckets: Optional[Sequence[float]] = None):
        return _NULL_INSTRUMENT

    def collect(self) -> Tuple[Dict[str, float], Dict[str, str]]:
        return {}, {}


#: Shared no-op registry; the default everywhere.
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Named instruments for one run; catalogue-checked like the tracer."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, kind: str,
                       labelnames: Tuple[str, ...],
                       buckets: Optional[Sequence[float]] = None
                       ) -> Instrument:
        spec = INSTRUMENT_CATALOGUE.get(name)
        if spec is None:
            raise ValueError(
                f"unknown instrument {name!r}; add it to "
                f"INSTRUMENT_CATALOGUE and docs/OBSERVABILITY.md")
        if spec.kind != kind:
            raise ValueError(
                f"instrument {name!r} is a {spec.kind}, not a {kind}")
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Instrument(name, spec, tuple(labelnames),
                                    buckets=buckets)
            self._instruments[name] = instrument
        elif instrument.labelnames != tuple(labelnames):
            raise ValueError(
                f"instrument {name!r} already registered with labels "
                f"{instrument.labelnames}, not {tuple(labelnames)}")
        return instrument

    def counter(self, name: str,
                labelnames: Tuple[str, ...] = ()) -> Instrument:
        return self._get_or_create(name, "counter", labelnames)

    def gauge(self, name: str,
              labelnames: Tuple[str, ...] = ()) -> Instrument:
        return self._get_or_create(name, "gauge", labelnames)

    def histogram(self, name: str, labelnames: Tuple[str, ...] = (),
                  buckets: Optional[Sequence[float]] = None) -> Instrument:
        return self._get_or_create(name, "histogram", labelnames,
                                   buckets=buckets)

    def instruments(self) -> List[Instrument]:
        return list(self._instruments.values())

    def collect(self) -> Tuple[Dict[str, float], Dict[str, str]]:
        """Snapshot every instrument: ``(series values, series kinds)``."""
        values: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        for instrument in self._instruments.values():
            instrument.collect(values, kinds)
        return values, kinds


# ---------------------------------------------------------------------------
# The bounded time-series store and the periodic sampler
# ---------------------------------------------------------------------------


class WindowSnapshot:
    """Cumulative instrument values at the *end* of one sample window."""

    __slots__ = ("t_start", "t_end", "values")

    def __init__(self, t_start: float, t_end: float,
                 values: Dict[str, float]) -> None:
        self.t_start = t_start
        self.t_end = t_end
        self.values = values

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WindowSnapshot([{self.t_start:.3f}, {self.t_end:.3f}), "
                f"{len(self.values)} series)")


class SeriesStore:
    """Bounded in-memory time series of instrument snapshots.

    Snapshots hold *cumulative* values, so merging two adjacent windows
    is exact: keep the earlier start, the later end and the later
    values (counters are monotone; a merged gauge reports its last
    reading, the standard downsampling semantics).  When the store
    exceeds ``max_windows`` it merges adjacent pairs — halving
    resolution, never dropping coverage.
    """

    def __init__(self, max_windows: int = 512) -> None:
        if max_windows < 2:
            raise ValueError(
                f"need at least two windows, got {max_windows}")
        self.max_windows = max_windows
        self.windows: List[WindowSnapshot] = []
        self.baseline: Dict[str, float] = {}
        self.kinds: Dict[str, str] = {}
        #: How many original sample windows each stored window spans.
        self.downsample_factor = 1

    def set_baseline(self, values: Dict[str, float],
                     kinds: Dict[str, str]) -> None:
        """Cumulative state at t0 (instruments may be non-zero after an
        ingest pass); window deltas subtract from here."""
        self.baseline = dict(values)
        self.kinds.update(kinds)

    def append(self, snapshot: WindowSnapshot) -> bool:
        """Store one snapshot; returns True when a downsample occurred."""
        self.windows.append(snapshot)
        if len(self.windows) <= self.max_windows:
            return False
        merged: List[WindowSnapshot] = []
        pending: Optional[WindowSnapshot] = None
        for window in self.windows:
            if pending is None:
                pending = window
            else:
                merged.append(WindowSnapshot(
                    pending.t_start, window.t_end, window.values))
                pending = None
        if pending is not None:
            merged.append(pending)
        self.windows = merged
        self.downsample_factor *= 2
        return True

    def __len__(self) -> int:
        return len(self.windows)

    # -- per-window views --------------------------------------------------

    def _previous_values(self, index: int) -> Dict[str, float]:
        return self.windows[index - 1].values if index > 0 else self.baseline

    def window_value(self, index: int, key: str) -> Optional[float]:
        """Series value at the end of window ``index`` (gauge reading or
        cumulative counter)."""
        return self.windows[index].values.get(key)

    def window_delta(self, index: int, key: str) -> float:
        """Counter increment inside window ``index``."""
        window = self.windows[index]
        prev = self._previous_values(index)
        return window.values.get(key, 0.0) - prev.get(key, 0.0)

    def window_row(self, index: int) -> Dict[str, float]:
        """One exporter row: counter keys as per-window deltas, gauges as
        end-of-window readings.  Row sums of any counter column therefore
        reproduce the end-of-run total exactly."""
        window = self.windows[index]
        prev = self._previous_values(index)
        row: Dict[str, float] = {}
        for key, value in window.values.items():
            if self.kinds.get(key) == "gauge":
                row[key] = value
            else:
                row[key] = value - prev.get(key, 0.0)
        return row

    def counter_total(self, key: str) -> float:
        """Sum of all window deltas == final cumulative − baseline."""
        if not self.windows:
            return 0.0
        return self.windows[-1].values.get(key, 0.0) \
            - self.baseline.get(key, 0.0)

    def resolve_key(self, metric: str) -> Optional[str]:
        """Find the stored series key for ``metric``.

        Accepts an exact key, or a bare instrument name that matches a
        single labelled series (``ssd_program_total`` resolving to
        ``ssd_program_total{device="ssd"}``)."""
        if metric in self.kinds:
            return metric
        candidates = [key for key in self.kinds
                      if key.startswith(metric + "{")]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- histogram window statistics --------------------------------------

    def _bucket_deltas(self, index: int,
                       base: str) -> List[Tuple[float, float]]:
        """Per-window cumulative-over-``le`` bucket deltas for histogram
        ``base``, sorted by bound (``+Inf`` last)."""
        prefix = f"{base}_bucket{{"
        out: List[Tuple[float, float]] = []
        for key in self.kinds:
            if not key.startswith(prefix):
                continue
            le_text = parse_series_key(key)[1].get("le")
            if le_text is None:  # pragma: no cover - buckets carry le
                continue
            bound = float("inf") if le_text == "+Inf" else float(le_text)
            out.append((bound, self.window_delta(index, key)))
        out.sort(key=lambda pair: pair[0])
        return out

    def window_quantile(self, index: int, base: str,
                        q: float) -> Optional[float]:
        """Estimated q-quantile (0 < q <= 1) of histogram ``base`` inside
        window ``index``: the smallest bucket bound covering rank q.
        Returns None when the window recorded no observations."""
        count = self.window_delta(index, f"{base}_count")
        if count <= 0:
            return None
        target = q * count
        buckets = self._bucket_deltas(index, base)
        for bound, cumulative in buckets:
            if cumulative >= target - 1e-9:
                if bound == float("inf") and len(buckets) > 1:
                    # Everything above the last finite bound: report that
                    # bound — the estimate saturates, it does not lie.
                    return buckets[-2][0]
                return bound
        return None  # pragma: no cover - +Inf bucket always covers

    def window_mean(self, index: int, base: str) -> Optional[float]:
        count = self.window_delta(index, f"{base}_count")
        if count <= 0:
            return None
        return self.window_delta(index, f"{base}_sum") / count


class PeriodicSampler:
    """Snapshots a registry at a fixed sim-time interval.

    Driven by whoever advances simulated time (the benchmark runner
    calls :meth:`observe` after every request with the cumulative busy
    time).  When the bounded store downsamples, the sampler doubles its
    interval so new windows stay the same width as the merged old ones.
    """

    def __init__(self, registry, interval_s: float,
                 store: Optional[SeriesStore] = None,
                 max_windows: int = 512) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"sample interval must be positive, got {interval_s}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.store = store if store is not None \
            else SeriesStore(max_windows)
        self._started = False
        self._window_start = 0.0
        self._next_boundary = 0.0

    def start(self, now_s: float = 0.0) -> None:
        """Record the baseline and open the first window at ``now_s``."""
        if self._started:
            raise RuntimeError("sampler already started")
        values, kinds = self.registry.collect()
        self.store.set_baseline(values, kinds)
        self._window_start = now_s
        self._next_boundary = now_s + self.interval_s
        self._started = True

    def _snapshot(self, t_end: float) -> None:
        values, kinds = self.registry.collect()
        self.store.kinds.update(kinds)
        merged = self.store.append(
            WindowSnapshot(self._window_start, t_end, values))
        self._window_start = t_end
        if merged:
            self.interval_s *= 2

    def observe(self, now_s: float) -> None:
        """Advance to ``now_s``, closing every window boundary crossed."""
        if not self._started:
            self.start(0.0)
        while now_s >= self._next_boundary:
            self._snapshot(self._next_boundary)
            self._next_boundary += self.interval_s

    def finish(self, now_s: float) -> None:
        """Close the trailing partial window (if it saw any time)."""
        self.observe(now_s)
        if now_s > self._window_start:
            self._snapshot(now_s)


# ---------------------------------------------------------------------------
# Declarative SLO rules and the health monitor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective, checked per window.

    ``stat`` selects how the metric is reduced inside each window:

    * ``"value"`` — gauge reading at the window end;
    * ``"delta"`` — counter increment inside the window;
    * ``"rate"``  — counter increment divided by window duration (per
      second of busy time), multiplied by ``scale`` (so a daily budget
      uses ``scale=86400``);
    * ``"mean"`` / ``"p50"``/``"p95"``/``"p99"``... — histogram window
      statistics.

    ``bound`` is ``"max"`` (breach when value > threshold) or ``"min"``
    (breach when value < threshold).  ``metric`` may be a bare
    instrument name; it resolves against labelled series when unique.
    """

    name: str
    metric: str
    stat: str
    bound: str
    threshold: float
    scale: float = 1.0
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.bound not in ("max", "min"):
            raise ValueError(f"bound must be 'max' or 'min', "
                             f"got {self.bound!r}")
        if self.stat not in ("value", "delta", "rate", "mean") \
                and not self.stat.startswith("p"):
            raise ValueError(f"unknown stat {self.stat!r}")


@dataclass(frozen=True)
class SLOBreach:
    """One rule violated in one window."""

    rule: SLORule
    window: int
    t_start: float
    t_end: float
    value: float

    def render(self) -> str:
        sign = ">" if self.rule.bound == "max" else "<"
        return (f"[{self.t_start:9.3f}s - {self.t_end:9.3f}s) "
                f"{self.rule.name}: {self.rule.stat}"
                f"({self.rule.metric}) = {self.value:.4g}{self.rule.unit} "
                f"{sign} {self.rule.threshold:.4g}{self.rule.unit}")


def default_slo_rules(ssd_capacity_pages: Optional[int] = None
                      ) -> List[SLORule]:
    """The stock rule set the paper's operating envelope implies."""
    # One mechanical access is ~15 ms; a p99 beyond two of them means
    # the window was dominated by log fetches or GC stalls.
    rules = [
        SLORule("read_p99", "read_latency_us", "p99", "max", 30_000.0,
                unit="us",
                description="p99 read latency within two mechanical "
                            "accesses"),
        SLORule("write_p99", "write_latency_us", "p99", "max", 30_000.0,
                unit="us",
                description="p99 write latency within two mechanical "
                            "accesses"),
        SLORule("delta_log_high_water", "delta_log_occupancy", "value",
                "max", 0.9,
                description="delta log below its high-water mark "
                            "(compaction headroom)"),
    ]
    # Daily-write budget: the lifetime argument of Table 6.  Default to
    # 20 full-device writes per day — generous for SLC, and any
    # architecture that breaches it is visibly burning flash.
    budget = 20.0 * ssd_capacity_pages if ssd_capacity_pages else 2e7
    rules.append(
        SLORule("ssd_daily_write_budget", "ssd_program_total", "rate",
                "max", budget, scale=86400.0, unit=" pages/day",
                description="SSD program rate within the daily write "
                            "budget"))
    return rules


class HealthMonitor:
    """Evaluates :class:`SLORule`\\ s against every stored window."""

    def __init__(self, rules: Sequence[SLORule]) -> None:
        self.rules = list(rules)
        self.breaches: List[SLOBreach] = []

    def _window_stat(self, store: SeriesStore, index: int,
                     rule: SLORule) -> Optional[float]:
        if rule.stat == "mean" or rule.stat.startswith("p"):
            # Histogram statistics: the metric is the histogram base name.
            if rule.stat == "mean":
                return store.window_mean(index, rule.metric)
            return store.window_quantile(index, rule.metric,
                                         float(rule.stat[1:]) / 100.0)
        key = store.resolve_key(rule.metric)
        if key is None:
            return None
        if rule.stat == "value":
            return store.window_value(index, key)
        delta = store.window_delta(index, key)
        if rule.stat == "delta":
            return delta
        duration = store.windows[index].duration
        if duration <= 0:
            return None
        return delta / duration * rule.scale

    def evaluate(self, store: SeriesStore) -> List[SLOBreach]:
        """(Re)compute all breaches over ``store``; returns them."""
        self.breaches = []
        for index, window in enumerate(store.windows):
            for rule in self.rules:
                value = self._window_stat(store, index, rule)
                if value is None:
                    continue
                if (rule.bound == "max" and value > rule.threshold) or \
                        (rule.bound == "min" and value < rule.threshold):
                    self.breaches.append(SLOBreach(
                        rule, index, window.t_start, window.t_end, value))
        return self.breaches

    def render(self) -> str:
        if not self.breaches:
            return "health: all SLO rules held in every window"
        lines = [f"health: {len(self.breaches)} SLO breach(es)"]
        lines.extend("  " + breach.render() for breach in self.breaches)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def export_series_csv(store: SeriesStore,
                      destination: Union[str, TextIO]) -> int:
    """Write one CSV row per window; returns the number of rows.

    Counter columns carry per-window increments (so each column sums to
    the end-of-run total); gauge columns carry the end-of-window
    reading.  Columns are the union of series keys, sorted.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_series_csv(store, handle)
    keys = sorted(store.kinds)
    header = ["window", "t_start_s", "t_end_s"] + keys
    destination.write(",".join(_csv_quote(h) for h in header) + "\n")
    for index, window in enumerate(store.windows):
        row = store.window_row(index)
        cells = [str(index), repr(window.t_start), repr(window.t_end)]
        cells.extend(_csv_format(row.get(key)) for key in keys)
        destination.write(",".join(cells) + "\n")
    return len(store.windows)


def _csv_quote(text: str) -> str:
    if "," in text or '"' in text:
        escaped = text.replace('"', '""')
        return f'"{escaped}"'
    return text


def _csv_format(value: Optional[float]) -> str:
    if value is None:
        return ""
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


def export_series_jsonl(store: SeriesStore,
                        destination: Union[str, TextIO]) -> int:
    """One JSON object per window: deltas for counters, readings for
    gauges — greppable and streamable like the trace JSONL."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_series_jsonl(store, handle)
    for index, window in enumerate(store.windows):
        record = {
            "window": index,
            "t_start_s": window.t_start,
            "t_end_s": window.t_end,
            "series": store.window_row(index),
        }
        destination.write(json.dumps(record, sort_keys=True) + "\n")
    return len(store.windows)


def export_prometheus(registry: MetricsRegistry,
                      destination: Union[str, TextIO]) -> int:
    """Write the registry's final state in the Prometheus text
    exposition format (``# HELP`` / ``# TYPE`` / samples); returns the
    number of sample lines."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_prometheus(registry, handle)
    lines = 0
    for instrument in registry.instruments():
        spec = instrument.spec
        destination.write(
            f"# HELP {instrument.name} {spec.help} (unit: {spec.unit})\n")
        destination.write(f"# TYPE {instrument.name} {spec.kind}\n")
        values: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        instrument.collect(values, kinds)
        # collect() emits histogram buckets in ascending ``le`` order
        # with +Inf last, as the exposition format requires — keep it.
        for key in values:
            destination.write(f"{key} {_csv_format(values[key]) or '0'}\n")
            lines += 1
    return lines


# ---------------------------------------------------------------------------
# The per-run bundle
# ---------------------------------------------------------------------------


class Monitor:
    """Registry + sampler + health rules for one benchmark run.

    Pass one to :func:`repro.experiments.runner.run_benchmark`; it is
    attached *after* the ingest pass (like the tracer), observes every
    request, samples on sim-time window boundaries, and evaluates the
    SLO rules when the run finishes.
    """

    def __init__(self, interval_s: float = 0.25,
                 rules: Optional[Sequence[SLORule]] = None,
                 max_windows: int = 256,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.sampler = PeriodicSampler(self.registry, interval_s,
                                       max_windows=max_windows)
        self._rules = list(rules) if rules is not None else None
        self.health: Optional[HealthMonitor] = None
        self.breaches: List[SLOBreach] = []
        self._attached = False
        # Hot-path instruments, cached at attach time.
        self._reads = self._writes = None
        self._read_lat = self._write_lat = None

    @property
    def store(self) -> SeriesStore:
        return self.sampler.store

    def attach(self, system, workload=None) -> None:
        """Register the whole stack's instruments and start sampling."""
        registry = self.registry
        self._reads = registry.counter("requests_read_total")
        self._writes = registry.counter("requests_write_total")
        self._read_lat = registry.histogram("read_latency_us")
        self._write_lat = registry.histogram("write_latency_us")
        system.set_metrics(registry)
        if workload is not None and \
                hasattr(workload, "register_metrics"):
            workload.register_metrics(registry)
        if self._rules is None:
            pages = getattr(
                getattr(system, "config", None), "ssd_capacity_blocks",
                None)
            self._rules = default_slo_rules(ssd_capacity_pages=pages)
        self.health = HealthMonitor(self._rules)
        self.sampler.start(0.0)
        self._attached = True

    def on_request(self, is_read: bool, latency_s: float,
                   now_s: float) -> None:
        """Record one completed request at busy-time ``now_s``."""
        if is_read:
            self._reads.inc()
            self._read_lat.observe(latency_s * 1e6)
        else:
            self._writes.inc()
            self._write_lat.observe(latency_s * 1e6)
        self.sampler.observe(now_s)

    def finish(self, now_s: float) -> None:
        """Close the final window and evaluate the SLO rules."""
        self.sampler.finish(now_s)
        if self.health is not None:
            self.breaches = self.health.evaluate(self.store)

    # -- reporting ---------------------------------------------------------

    _REPORT_COLUMNS = (
        # (header, renderer) pairs; renderers may return None for blank.
        ("reads", lambda s, i: s.window_delta(
            i, "requests_read_total")),
        ("writes", lambda s, i: s.window_delta(
            i, "requests_write_total")),
        ("read_p99_us", lambda s, i: s.window_quantile(
            i, "read_latency_us", 0.99)),
        ("ssd_pages", lambda s, i: _resolved_delta(
            s, i, "ssd_program_total")),
        ("log_occ", lambda s, i: _resolved_value(
            s, i, "delta_log_occupancy")),
    )

    def render_report(self, max_rows: int = 24) -> str:
        """ASCII per-window report: the convergence view of one run."""
        store = self.store
        if not store.windows:
            return "(no sample windows recorded)"
        title = (f"per-window report ({len(store.windows)} windows of "
                 f"~{self.sampler.interval_s:.3g}s busy time"
                 + (f", downsampled x{store.downsample_factor}"
                    if store.downsample_factor > 1 else "") + ")")
        header = f"{'window':>6} {'t_start':>9} {'t_end':>9}"
        for name, _fn in self._REPORT_COLUMNS:
            header += f" {name:>12}"
        lines = [title, "-" * len(header), header]
        indices = list(range(len(store.windows)))
        if len(indices) > max_rows:
            head = indices[:max_rows // 2]
            tail = indices[-(max_rows - len(head)):]
            indices = head + [-1] + tail  # -1 marks the elision row
        breach_windows = {b.window for b in self.breaches}
        for index in indices:
            if index == -1:
                lines.append(f"{'...':>6}")
                continue
            window = store.windows[index]
            row = (f"{index:>6} {window.t_start:>9.3f} "
                   f"{window.t_end:>9.3f}")
            for _name, fn in self._REPORT_COLUMNS:
                value = fn(store, index)
                if value is None:
                    cell = "-"
                elif float(value).is_integer():
                    cell = str(int(value))
                else:
                    cell = f"{value:.4g}"
                row += f" {cell:>12}"
            if index in breach_windows:
                row += "  !SLO"
            lines.append(row)
        if self.health is not None:
            lines.append("")
            lines.append(self.health.render())
        return "\n".join(lines)


def _resolved_delta(store: SeriesStore, index: int,
                    metric: str) -> Optional[float]:
    key = store.resolve_key(metric)
    return store.window_delta(index, key) if key else None


def _resolved_value(store: SeriesStore, index: int,
                    metric: str) -> Optional[float]:
    key = store.resolve_key(metric)
    return store.window_value(index, key) if key else None


# ---------------------------------------------------------------------------
# Workload fingerprints (ReCA-style characterization)
# ---------------------------------------------------------------------------


#: The ratio components of a window fingerprint, in vector order:
#: ``(numerator counter, denominator-partner counter)`` — each
#: dimension is ``num / (num + partner)`` over the window's deltas.
FINGERPRINT_RATIOS: Tuple[Tuple[str, str], ...] = (
    ("requests_read_total", "requests_write_total"),
    ("delta_hits_total", "delta_log_fetches_total"),
    ("hdd_seek_total", "hdd_sequential_total"),
)

#: Dimension names matching :data:`FINGERPRINT_RATIOS`.
FINGERPRINT_DIMENSIONS = ("read_fraction", "delta_hit_ratio",
                          "seek_ratio")


def window_fingerprint(store: SeriesStore,
                       index: int) -> Tuple[float, ...]:
    """The window's workload fingerprint: read/write mix, delta-hit
    ratio and seek locality, each in [0, 1].

    This is the ReCA-style online characterization vector — the same
    signal an adaptive controller would reconfigure on (ROADMAP), used
    today by :mod:`repro.analysis.explain` to segment a run into
    workload phases.  A dimension whose window saw no events reports
    -1.0 (distinct from any real ratio) so phase segmentation treats
    "no HDD traffic" differently from "all-sequential HDD traffic".
    """
    out: List[float] = []
    for num_name, partner_name in FINGERPRINT_RATIOS:
        num = _resolved_delta(store, index, num_name) or 0.0
        partner = _resolved_delta(store, index, partner_name) or 0.0
        total = num + partner
        out.append(num / total if total > 0 else -1.0)
    return tuple(out)
