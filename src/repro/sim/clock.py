"""Virtual time for closed-loop trace replay."""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock in seconds.

    The clock only moves when explicitly advanced; device models advance it
    by their service latencies and workloads by their modelled application
    compute (think) time.  Keeping the clock explicit — rather than implied
    by wall-clock time — is what makes runs deterministic and reproducible.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds (trace exporters' unit)."""
        return self._now * 1e6

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` if it lies ahead.

        A no-op when ``timestamp`` is in the past — used by the tracer to
        reconcile a request's end time without ever rewinding.  Returns
        the (possibly unchanged) current time.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: virtual time never runs backwards.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock, e.g. between independent experiment runs."""
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.6f})"
