"""Load generators for the discrete-event engine.

A load generator decides *when* the next request of a workload's
stream arrives; the :class:`repro.sim.engine.EventEngine` decides how
long it then waits and executes.  Two disciplines:

* **Open loop** (:class:`OpenLoopLoad`) — arrivals at a fixed offered
  rate, independent of completions (Poisson or constant-spaced).  This
  is the discipline that exposes saturation: past the knee the queue
  grows without bound for the duration of the run and response times
  blow up, exactly what ``repro loadtest`` sweeps for.
* **Closed loop** (:class:`ClosedLoopLoad`) — N clients, each issuing
  its next request a think time after its previous one completes.
  With one client and zero think time this degenerates to the legacy
  serial replay — the engine's collapse property test runs exactly
  that configuration.

All randomness is drawn from a seeded generator that :meth:`reset`
rewinds, so the engine stays deterministic end to end.  Poisson
interarrivals are drawn as *unit*-mean exponentials scaled by
``1/rate``: a rate sweep with a fixed seed sees the same arrival
pattern compressed in time, which keeps the measured throughput curve
monotone instead of jittering with per-rate resampling noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_DISTRIBUTIONS = ("poisson", "constant")


class OpenLoopLoad:
    """Arrivals at a fixed offered rate, independent of completions."""

    open_loop = True

    def __init__(self, rate_rps: float, distribution: str = "poisson",
                 seed: int = 1234) -> None:
        if rate_rps <= 0.0:
            raise ValueError(f"arrival rate must be positive, "
                             f"got {rate_rps}")
        if distribution not in _DISTRIBUTIONS:
            raise ValueError(f"unknown arrival distribution "
                             f"{distribution!r}; pick one of "
                             f"{_DISTRIBUTIONS}")
        self.rate_rps = rate_rps
        self.distribution = distribution
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def next_arrival(self, now_s: float) -> float:
        """Virtual time of the arrival after one at ``now_s``."""
        if self.distribution == "poisson":
            gap = self._rng.exponential(1.0) / self.rate_rps
        else:
            gap = 1.0 / self.rate_rps
        return now_s + gap

    def __repr__(self) -> str:
        return (f"OpenLoopLoad(rate_rps={self.rate_rps!r}, "
                f"distribution={self.distribution!r}, seed={self.seed})")


class ClosedLoopLoad:
    """N clients, each thinking between its completions and requests."""

    open_loop = False

    def __init__(self, clients: int, think_s: float = 0.0,
                 distribution: str = "constant",
                 seed: int = 1234) -> None:
        if clients < 1:
            raise ValueError(f"need at least one client, got {clients}")
        if think_s < 0.0:
            raise ValueError(f"think time must be >= 0, got {think_s}")
        if distribution not in ("constant", "exponential"):
            raise ValueError(f"unknown think distribution "
                             f"{distribution!r}; pick 'constant' or "
                             f"'exponential'")
        self.clients = clients
        self.think_s = think_s
        self.distribution = distribution
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def initial_think(self) -> float:
        """When a client issues its very first request (t=0: all
        clients start hammering immediately, FIFO-ordered by client)."""
        return 0.0

    def next_think(self) -> float:
        if self.think_s == 0.0:
            return 0.0
        if self.distribution == "exponential":
            return float(self._rng.exponential(self.think_s))
        return self.think_s

    def __repr__(self) -> str:
        return (f"ClosedLoopLoad(clients={self.clients}, "
                f"think_s={self.think_s!r}, "
                f"distribution={self.distribution!r}, seed={self.seed})")


def default_closed_loop(workload) -> ClosedLoopLoad:
    """The closed-loop shape matching the legacy runner's model: one
    stream per unit of ``io_concurrency``, thinking the per-I/O share
    of the transaction's application compute between requests."""
    think = workload.app_compute_per_tx / workload.ios_per_transaction
    return ClosedLoopLoad(clients=workload.io_concurrency,
                          think_s=think)
