"""Trace-driven simulation substrate.

This package provides the pieces every storage model in the repository is
built on: typed I/O requests that carry content (:mod:`repro.sim.request`),
a virtual clock (:mod:`repro.sim.clock`), and latency/counter statistics
collection (:mod:`repro.sim.stats`).

The default replay is *closed loop*: a workload issues one request, the
storage system returns its service latency, and the clock advances by
that latency (plus any application compute time the workload models).
Response time and service time therefore coincide, which matches how
the paper reports block-level response times.

:mod:`repro.sim.engine` lifts that restriction: a deterministic
discrete-event simulation routes requests through per-device FIFO
queues, driven by the open-/closed-loop load generators of
:mod:`repro.sim.load`, so response time becomes queue wait plus
service and saturation behaviour is measurable
(``run_benchmark(engine="event")``, ``python -m repro loadtest``).

The optional host page-cache wrapper lives in :mod:`repro.sim.pagecache`
(imported directly to avoid a circular dependency on the storage-system
base class).
"""

from repro.sim.backing import BackingStore
from repro.sim.clock import VirtualClock
from repro.sim.engine import (DEFAULT_DEVICE_SLOTS, DeviceStation,
                              EngineConfig, EventEngine, QueueingSummary,
                              RequestRecord, StationSummary)
from repro.sim.load import ClosedLoopLoad, OpenLoopLoad, \
    default_closed_loop
from repro.sim.metrics import (HealthMonitor, MetricsRegistry, Monitor,
                               NULL_REGISTRY, PeriodicSampler, SeriesStore,
                               SLORule)
from repro.sim.request import IORequest, OpType
from repro.sim.stats import LatencyStats, StatsCollector

__all__ = [
    "BackingStore",
    "ClosedLoopLoad",
    "DEFAULT_DEVICE_SLOTS",
    "DeviceStation",
    "EngineConfig",
    "EventEngine",
    "HealthMonitor",
    "IORequest",
    "LatencyStats",
    "MetricsRegistry",
    "Monitor",
    "NULL_REGISTRY",
    "OpenLoopLoad",
    "OpType",
    "PeriodicSampler",
    "QueueingSummary",
    "RequestRecord",
    "SLORule",
    "SeriesStore",
    "StationSummary",
    "StatsCollector",
    "VirtualClock",
    "default_closed_loop",
]
