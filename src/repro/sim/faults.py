"""Deterministic fault injection for the discrete-event engine.

I-CASH's durability story (Section 3.3 of the paper) is a set of
*recovery paths*: delta-log replay after power loss, signature-verified
reference blocks, and wear-aware flash management.  This module turns
each of those paths into an adversarial experiment: a seeded
:class:`FaultPlan` schedules faults at request-admission boundaries of
an :class:`~repro.sim.engine.EventEngine` run, and a
:class:`FaultInjector` fires them, models the repair work as deferrable
backlog on the per-device stations (so rebuild traffic competes with
foreground I/O exactly like flush traffic does), and measures what
production cares about — time-to-recover, rebuild I/O volume, the
data-loss window, and whether corruption was detected.

Four fault kinds ship (``FAULT_KINDS``); their triggers, observable
effects and recovery paths are catalogued in ``docs/RELIABILITY.md``,
which a doc-parity test keeps in lock-step with this module.

Everything is deterministic: the only randomness is a
``numpy`` generator seeded from the plan, and repair work is injected
in event time, so the same seed yields an identical event log and an
identical :class:`FaultReport` — the chaos determinism test diffs two
runs exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultOutcome",
    "FaultReport",
    "FaultInjector",
    "scrub_references",
]

#: Every fault injector this module ships.  ``docs/RELIABILITY.md``
#: documents each one; the doc-parity test asserts the sets match.
FAULT_KINDS = (
    "ssd_wearout",
    "hdd_failure",
    "power_loss",
    "silent_corruption",
)

_CORRUPTION_TARGETS = ("reference", "spill", "log")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at_request`` is the 0-based admission index the fault fires at
    (before that request is processed), which makes schedules
    independent of the arrival process: the same spec hits the same
    logical point of the workload under any load.
    """

    kind: str
    at_request: int
    #: ``ssd_wearout``: fraction of physical flash blocks driven to
    #: their erase-count limit.
    wear_fraction: float = 0.2
    #: ``hdd_failure``: RAID-member blocks re-read + re-written during
    #: the rebuild that competes with foreground I/O.
    rebuild_blocks: int = 4096
    #: ``silent_corruption``: how many blocks to corrupt.
    corrupt_blocks: int = 1
    #: ``silent_corruption``: what to corrupt.  ``reference`` blocks
    #: carry signatures (detected by a scrub); ``spill`` blocks do not
    #: (the corruption is *missed* — that is the point); ``log`` tears
    #: a delta-log slot, detected only at replay time, so it is meant
    #: for offline recovery experiments, not live runs (a live fetch
    #: of a torn slot raises).
    corruption_target: str = "reference"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)} (see docs/RELIABILITY.md)")
        if self.at_request < 0:
            raise ValueError("at_request must be >= 0")
        if not 0.0 < self.wear_fraction <= 1.0:
            raise ValueError("wear_fraction must be in (0, 1]")
        if self.rebuild_blocks <= 0:
            raise ValueError("rebuild_blocks must be positive")
        if self.corrupt_blocks <= 0:
            raise ValueError("corrupt_blocks must be positive")
        if self.corruption_target not in _CORRUPTION_TARGETS:
            raise ValueError(
                f"unknown corruption_target {self.corruption_target!r}; "
                f"expected one of {', '.join(_CORRUPTION_TARGETS)}")


class FaultPlan:
    """A seeded, admission-ordered schedule of :class:`FaultSpec`."""

    def __init__(self, specs: Sequence[FaultSpec],
                 seed: int = 1234) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda s: s.at_request))
        self.seed = int(seed)

    @classmethod
    def single(cls, kind: str, at_request: int, seed: int = 1234,
               **knobs) -> "FaultPlan":
        """One-fault plan — what every chaos scenario uses."""
        return cls([FaultSpec(kind=kind, at_request=at_request,
                              **knobs)], seed=seed)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        kinds = ", ".join(f"{s.kind}@{s.at_request}" for s in self.specs)
        return f"FaultPlan([{kinds}], seed={self.seed})"


@dataclass
class FaultOutcome:
    """What one fired fault did and how the system recovered.

    ``t_recovered_s`` closes when the repair backlog injected on the
    fault's station has fully drained (no queued background seconds,
    no in-flight background quantum); until then the array runs
    *degraded* and ``degraded_s`` accumulates.
    """

    kind: str
    at_request: int
    t_injected_s: float
    station: Optional[str] = None
    t_recovered_s: Optional[float] = None
    #: Repair I/O in blocks: remapped flash pages, RAID rebuild reads/
    #: writes, replayed log blocks, or scrubbed references.
    rebuild_blocks: int = 0
    #: ``power_loss``: unflushed deltas at the crash — writes that
    #: would land in the loss window had the log append not happened.
    data_loss_window_blocks: Optional[int] = None
    #: ``silent_corruption``: True when the scrub/replay caught it,
    #: False when it was silently missed, None for other kinds.
    detected: Optional[bool] = None
    skipped: bool = False
    detail: str = ""

    @property
    def degraded_s(self) -> float:
        if self.t_recovered_s is None:
            return 0.0
        return max(0.0, self.t_recovered_s - self.t_injected_s)


@dataclass
class FaultReport:
    """All outcomes of one run, in injection order."""

    seed: int
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def total_rebuild_blocks(self) -> int:
        return sum(o.rebuild_blocks for o in self.outcomes)

    @property
    def max_recovery_s(self) -> float:
        return max((o.degraded_s for o in self.outcomes), default=0.0)

    @property
    def data_loss_window_blocks(self) -> int:
        return max((o.data_loss_window_blocks or 0
                    for o in self.outcomes), default=0)

    @property
    def all_detected(self) -> bool:
        """True when every detectable corruption was caught."""
        return all(o.detected for o in self.outcomes
                   if o.detected is not None)

    def render(self) -> str:
        lines = [f"fault report (seed {self.seed})"]
        for o in self.outcomes:
            status = "skipped" if o.skipped else (
                f"recovered in {o.degraded_s * 1e3:.1f} ms"
                if o.t_recovered_s is not None else "still degraded")
            extra = ""
            if o.data_loss_window_blocks is not None:
                extra += f", loss window {o.data_loss_window_blocks} blk"
            if o.detected is not None:
                extra += (", corruption detected" if o.detected
                          else ", corruption MISSED")
            lines.append(
                f"  {o.kind} @ req {o.at_request} "
                f"[{o.station or '-'}]: {status}, "
                f"{o.rebuild_blocks} rebuild blk{extra}"
                + (f" ({o.detail})" if o.detail else ""))
        return "\n".join(lines)


class FaultInjector:
    """Fires a :class:`FaultPlan` into a live engine run.

    The engine calls :meth:`on_admit` before each request is processed
    (so injected repair backlog competes with that request onward),
    :meth:`on_event` when completions or background quanta finish (to
    close degraded windows the moment the repair drains), and
    :meth:`finish` when the heap empties.

    When a :class:`~repro.sim.metrics.MetricsRegistry` is supplied, the
    injector owns three instruments from the catalogue:
    ``faults_injected_total`` (labelled by ``kind``),
    ``rebuild_io_total`` and ``degraded_mode_seconds``.
    """

    def __init__(self, plan: FaultPlan, system, engine,
                 registry=None) -> None:
        self.plan = plan
        self.system = system
        self.engine = engine
        self._rng = np.random.default_rng(plan.seed)
        self._pending: List[FaultSpec] = list(plan.specs)
        self.outcomes: List[FaultOutcome] = []
        self._open: List[FaultOutcome] = []
        self._fault_counter = None
        self._rebuild_counter = None
        self._degraded_counter = None
        if registry is not None and registry.enabled:
            self._fault_counter = registry.counter(
                "faults_injected_total", ("kind",))
            self._rebuild_counter = registry.counter("rebuild_io_total")
            self._degraded_counter = registry.counter(
                "degraded_mode_seconds")

    # -- engine hooks ------------------------------------------------------

    def on_admit(self, index: int) -> None:
        while self._pending and self._pending[0].at_request <= index:
            self._fire(self._pending.pop(0))
        # A repair with zero backlog (e.g. power loss on an empty log)
        # recovers instantly; close it in the same event.
        self.on_event(self.engine.now)

    def on_event(self, now: float) -> None:
        if not self._open:
            return
        for outcome in list(self._open):
            station = self.engine.stations.get(outcome.station)
            if station is None or (station.backlog_s <= 1e-12
                                   and station.bg_active == 0):
                self._close(outcome, now)

    def finish(self, now: float) -> None:
        """Close any window still open when the heap empties."""
        for outcome in list(self._open):
            self._close(outcome, now)

    def report(self) -> FaultReport:
        return FaultReport(seed=self.plan.seed,
                           outcomes=list(self.outcomes))

    # -- internals ---------------------------------------------------------

    def _close(self, outcome: FaultOutcome, now: float) -> None:
        outcome.t_recovered_s = now
        self._open.remove(outcome)
        if self._degraded_counter is not None:
            self._degraded_counter.inc(outcome.degraded_s)
        self.engine._log_event("fault", f"{outcome.kind}:recovered")

    def _fire(self, spec: FaultSpec) -> None:
        now = self.engine.now
        outcome = FaultOutcome(kind=spec.kind,
                               at_request=spec.at_request,
                               t_injected_s=now)
        handler = getattr(self, f"_inject_{spec.kind}")
        handler(spec, outcome)
        self.outcomes.append(outcome)
        if not outcome.skipped:
            if outcome.station is not None:
                self._open.append(outcome)
            if self._fault_counter is not None:
                self._fault_counter.labels(kind=spec.kind).inc()
            if self._rebuild_counter is not None and \
                    outcome.rebuild_blocks:
                self._rebuild_counter.inc(outcome.rebuild_blocks)
        # The instant lands on the *run* track (no request is being
        # captured at admission time), so trace timelines show the
        # fault between requests; the event log carries it too for the
        # determinism diff.
        tracer = getattr(self.system, "tracer", None)
        if tracer is not None:
            tracer.instant("fault", outcome=spec.kind)
        self.engine._log_event("fault", f"{spec.kind}:injected")

    def _inject_backlog(self, device: str, seconds: float) -> None:
        """Queue repair work as deferrable backlog — the same mechanism
        background flushes use, so the repair yields to foreground I/O
        one quantum at a time instead of stalling it."""
        if seconds <= 0.0:
            return
        station = self.engine._station(device)
        station.backlog_s += seconds
        self.engine._kick(station)

    def _device(self, *names: str):
        """First device of the system whose label matches ``names``."""
        for device in self.system.devices():
            label = getattr(device, "trace_name",
                            getattr(device, "name", ""))
            if label in names:
                return label, device
        return None, None

    # -- injectors ---------------------------------------------------------

    def _inject_ssd_wearout(self, spec: FaultSpec,
                            outcome: FaultOutcome) -> None:
        label, ssd = self._device("ssd")
        if ssd is None or not hasattr(ssd, "wear_out"):
            outcome.skipped = True
            outcome.detail = "no flash device with a wear model"
            return
        n_blocks = len(ssd.erase_counts())
        n_dead = max(1, int(round(spec.wear_fraction * n_blocks)))
        victims = sorted(int(i) for i in self._rng.choice(
            n_blocks, size=min(n_dead, n_blocks), replace=False))
        worn = ssd.wear_out(victims)
        pages = len(victims) * ssd.spec.pages_per_block
        # Remapping copies every page of a dead block to a spare:
        # one read + one program each, deferred behind foreground I/O.
        self._inject_backlog(
            label, pages * (ssd.spec.read_base_s + ssd.spec.program_s))
        outcome.station = label
        outcome.rebuild_blocks = pages
        outcome.detail = (f"{worn} flash blocks at erase limit "
                          f"({spec.wear_fraction:.0%} of {n_blocks})")

    def _inject_hdd_failure(self, spec: FaultSpec,
                            outcome: FaultOutcome) -> None:
        label, hdd = self._device("raid0", "hdd")
        if hdd is None:
            outcome.skipped = True
            outcome.detail = "no rotating device to fail"
            return
        members = getattr(hdd, "ndisks", 1)
        failed = int(self._rng.integers(members))
        hdd_spec = hdd.disks[0].spec if hasattr(hdd, "disks") \
            else hdd.spec
        # Rebuild reads every surviving copy of the failed member's
        # blocks and rewrites them to the replacement: two sequential
        # transfers per block through the same actuator set the
        # foreground load is using.
        per_block = hdd_spec.transfer_time(1) * 2.0
        self._inject_backlog(label, spec.rebuild_blocks * per_block)
        outcome.station = label
        outcome.rebuild_blocks = spec.rebuild_blocks
        outcome.detail = (f"member {failed}/{members} failed, "
                          f"{spec.rebuild_blocks}-block rebuild")

    def _inject_power_loss(self, spec: FaultSpec,
                           outcome: FaultOutcome) -> None:
        controller = self._controller()
        if controller is None:
            outcome.skipped = True
            outcome.detail = "system has no delta log to replay"
            return
        from repro.core.recovery import RecoveredImage

        loss_window = controller.dirty_delta_count
        image = RecoveredImage(controller)
        log = controller.log
        # Replay cost: sequentially fetch every live log block from the
        # log device, then decode each surviving record.
        label, _hdd = self._device("hdd", "raid0")
        if label is None:
            label, _ssd = self._device("ssd")
        live_blocks = int(round(log.occupancy * log.size_blocks))
        replay_s = (live_blocks * log.hdd.spec.transfer_time(1)
                    + image.logged_blocks * controller.config.decompress_s)
        if label is not None:
            self._inject_backlog(label, replay_s)
        outcome.station = label
        outcome.rebuild_blocks = live_blocks
        outcome.data_loss_window_blocks = loss_window
        outcome.detail = (f"replayed {image.logged_blocks} records from "
                          f"{live_blocks} log blocks, "
                          f"{image.corrupt_blocks_skipped} torn, "
                          f"{loss_window} unflushed deltas lost")

    def _inject_silent_corruption(self, spec: FaultSpec,
                                  outcome: FaultOutcome) -> None:
        controller = self._controller()
        if controller is None:
            outcome.skipped = True
            outcome.detail = "system has no signed reference blocks"
            return
        handler = {
            "reference": self._corrupt_references,
            "spill": self._corrupt_spill,
            "log": self._corrupt_log,
        }[spec.corruption_target]
        handler(spec, outcome, controller)

    def _corrupt_references(self, spec: FaultSpec,
                            outcome: FaultOutcome, controller) -> None:
        """Flip bits in signed reference blocks, scrub, restore.

        References carry content signatures, so a signature scrub must
        catch the damage; the bytes are restored afterwards so the
        foreground run keeps serving correct data (the experiment
        measures *detection*, not propagation)."""
        # Prefer references with live deltas — the worst case, since a
        # corrupted reference poisons every dependent block.
        refs_with_deps = sorted({ref for ref, _slot
                                 in controller.delta_map_snapshot()
                                 .values()})
        pool = [lba for lba in refs_with_deps
                if controller.ssd_block_content(lba) is not None]
        if not pool:
            pool = sorted(controller.reference_lbas)
        if not pool:
            outcome.skipped = True
            outcome.detail = "no reference blocks resident yet"
            return
        n = min(spec.corrupt_blocks, len(pool))
        victims = sorted(int(i) for i in self._rng.choice(
            pool, size=n, replace=False))
        saved = {}
        for lba in victims:
            content = controller.ssd_block_content(lba)
            saved[lba] = content[:64].copy()
            content[:64] ^= 0xFF
        mismatched = scrub_references(controller)
        for lba, original in saved.items():
            controller.ssd_block_content(lba)[:64] = original
        caught = set(victims) <= set(mismatched)
        outcome.station = "ssd"
        outcome.detected = caught
        outcome.rebuild_blocks = len(controller.reference_lbas)
        # The scrub re-reads every signed reference once.
        _label, ssd = self._device("ssd")
        if ssd is not None:
            self._inject_backlog(
                "ssd",
                len(controller.reference_lbas) * ssd.spec.read_base_s)
        outcome.detail = (f"corrupted {n} signed reference(s), scrub "
                          f"flagged {len(mismatched)}")

    def _corrupt_spill(self, spec: FaultSpec,
                       outcome: FaultOutcome, controller) -> None:
        """Corrupt unsigned spilled blocks: nothing checks them, so
        the damage goes undetected — the documented gap."""
        pool = sorted(controller.spilled_lbas)
        if not pool:
            outcome.skipped = True
            outcome.detail = "no spilled blocks to corrupt"
            return
        n = min(spec.corrupt_blocks, len(pool))
        victims = sorted(int(i) for i in self._rng.choice(
            pool, size=n, replace=False))
        saved = {}
        for lba in victims:
            content = controller.ssd_block_content(lba)
            saved[lba] = content[:64].copy()
            content[:64] ^= 0xFF
        mismatched = scrub_references(controller)
        for lba, original in saved.items():
            controller.ssd_block_content(lba)[:64] = original
        outcome.station = None
        outcome.detected = any(lba in mismatched for lba in victims)
        outcome.detail = (f"corrupted {n} unsigned spilled block(s); "
                          f"scrub flagged {len(mismatched)}")

    def _corrupt_log(self, spec: FaultSpec,
                     outcome: FaultOutcome, controller) -> None:
        """Tear the most recent delta-log slots.  Detected at the next
        replay (torn slots are skipped and counted); live fetches of a
        torn slot raise, so this target is for offline recovery
        experiments."""
        log = controller.log
        if log.occupancy == 0.0:
            outcome.skipped = True
            outcome.detail = "delta log is empty"
            return
        from repro.core.recovery import RecoveredImage

        n = min(spec.corrupt_blocks,
                int(round(log.occupancy * log.size_blocks)))
        torn = 0
        for back in range(1, n + 1):
            slot = (log._next - back) % log.size_blocks
            try:
                log.corrupt_block(slot)
                torn += 1
            except KeyError:
                continue
        image = RecoveredImage(controller)
        outcome.station = None
        outcome.detected = image.corrupt_blocks_skipped >= torn > 0
        outcome.rebuild_blocks = torn
        outcome.detail = (f"tore {torn} log slot(s), replay skipped "
                          f"{image.corrupt_blocks_skipped}")

    def _controller(self):
        """The I-CASH controller behind the system, when there is one."""
        for attr in ("controller",):
            candidate = getattr(self.system, attr, None)
            if candidate is not None and \
                    hasattr(candidate, "delta_map_snapshot"):
                return candidate
        if hasattr(self.system, "delta_map_snapshot"):
            return self.system
        return None


def scrub_references(controller) -> List[int]:
    """Signature scrub: recompute each signed reference block's
    signatures from its SSD-resident bytes and compare against the
    cached virtual-block signatures.  Returns the mismatched LBAs —
    the detection path for :data:`FAULT_KINDS` ``silent_corruption``.
    """
    from repro.core.signatures import block_signatures

    scheme = controller.config.signature_scheme
    mismatched: List[int] = []
    for lba in sorted(controller.reference_lbas):
        vblock = controller.cache.get(lba, touch=False)
        if vblock is None or not getattr(vblock, "signatures", None):
            continue
        content = controller.ssd_block_content(lba)
        if content is None:
            continue
        if tuple(block_signatures(content, scheme)) != \
                tuple(vblock.signatures):
            mismatched.append(lba)
    return mismatched
