"""Host page-cache model.

The paper's prototype runs under a real OS: the guest and host page
caches absorb a large share of repeated block reads before they ever
reach the storage architecture, and they batch dirty write-back.  That
is a big part of why the paper's baseline response times are flatter
than raw device latencies suggest.

:class:`HostCachedSystem` wraps any :class:`StorageSystem` with a
write-back LRU page cache in host RAM.  It is deliberately *optional*:
the headline experiments run without it (the block-level latencies the
paper reports are measured below the cache), but the
``bench_ablation_page_cache`` ablation quantifies how much of the
architecture gap a host cache hides — and the wrapper is useful for
anyone composing I-CASH into a full-system study.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.sim.request import BLOCK_SIZE

#: Latency of serving one 4 KB block from the host page cache.
PAGE_HIT_S = 0.5e-6


class HostCachedSystem(StorageSystem):
    """A write-back LRU host page cache in front of any storage system."""

    def __init__(self, inner: StorageSystem, cache_blocks: int) -> None:
        if cache_blocks < 1:
            raise ValueError(
                f"page cache needs >= 1 block, got {cache_blocks}")
        super().__init__(f"{inner.name}+pagecache", inner.capacity_blocks)
        self.inner = inner
        self.cache_blocks = cache_blocks
        # lba -> cached content, LRU order (MRU at the end).
        self._pages: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._dirty: Set[int] = set()

    # -- pass-through accounting ----------------------------------------------

    def devices(self) -> Iterable:
        return self.inner.devices()

    def ingest(self) -> float:
        return self.inner.ingest()

    @property
    def background_time(self) -> float:  # type: ignore[override]
        return self.inner.background_time

    @background_time.setter
    def background_time(self, value: float) -> None:
        if value != 0.0:
            raise AttributeError("wrapper background time is the inner's")

    @property
    def cpu_time(self) -> float:  # type: ignore[override]
        return self.inner.cpu_time

    @cpu_time.setter
    def cpu_time(self, value: float) -> None:
        if value != 0.0:
            raise AttributeError("wrapper CPU time is the inner's")

    # -- cache mechanics --------------------------------------------------------

    def _evict_until_fits(self) -> float:
        """Drop LRU pages; dirty ones write back to the inner system.

        Write-back happens off the requesting path in a real OS (pdflush
        and friends), so the cost lands on background time.
        """
        latency = 0.0
        while len(self._pages) >= self.cache_blocks:
            lba, content = self._pages.popitem(last=False)
            if lba in self._dirty:
                self._dirty.discard(lba)
                self.inner.background_time += self.inner.write(
                    lba, [content])
                self.stats.bump("writebacks")
            self.stats.bump("evictions")
        return latency

    def _install(self, lba: int, content: np.ndarray, dirty: bool) -> None:
        self._evict_until_fits()
        self._pages[lba] = content.copy()
        self._pages.move_to_end(lba)
        if dirty:
            self._dirty.add(lba)

    # -- StorageSystem interface ------------------------------------------------

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        latency = 0.0
        contents: List[np.ndarray] = []
        miss_start: int = -1
        # Serve hits from RAM; fetch miss runs from the inner system in
        # single spans (read-ahead for free on sequential misses).
        block = lba
        end = lba + nblocks
        while block < end:
            cached = self._pages.get(block)
            if cached is not None:
                self._pages.move_to_end(block)
                latency += PAGE_HIT_S
                contents.append(cached.copy())
                self.stats.bump("page_hits")
                block += 1
                continue
            miss_start = block
            while block < end and block not in self._pages:
                block += 1
            span = block - miss_start
            fetch_latency, blocks = self.inner.read(miss_start, span)
            latency += fetch_latency
            for offset, content in enumerate(blocks):
                self._install(miss_start + offset, content, dirty=False)
                contents.append(content)
            self.stats.bump("page_misses", span)
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        latency = 0.0
        for offset, content in enumerate(blocks):
            self._install(lba + offset, content, dirty=True)
            latency += PAGE_HIT_S
            self.stats.bump("page_writes")
        return latency

    def flush(self) -> float:
        """Sync: write every dirty page through, then flush the inner
        system (fsync semantics)."""
        latency = 0.0
        for lba in sorted(self._dirty):
            latency += self.inner.write(lba, [self._pages[lba]])
        self._dirty.clear()
        latency += self.inner.flush()
        return latency

    @property
    def hit_ratio(self) -> float:
        hits = self.stats.count("page_hits")
        total = hits + self.stats.count("page_misses")
        return hits / total if total else 0.0
