"""Logical content backing store.

Every storage architecture in the repository operates over the same
logical block space.  :class:`BackingStore` holds the dataset's content —
the bytes that live durably on the architecture's primary media — and
exposes copy-in/copy-out access so no two components alias the same
mutable buffer.

For I-CASH this models the HDD data region: the content a block would
have if every cache layer were discarded.  For the simpler baselines it
doubles as the device's content, with the device models charging latency.
"""

from __future__ import annotations

import numpy as np

from repro.sim.request import BLOCK_SIZE


class BackingStore:
    """Content for ``capacity_blocks`` logical 4 KB blocks."""

    def __init__(self, initial: np.ndarray) -> None:
        if initial.ndim != 2 or initial.shape[1] != BLOCK_SIZE:
            raise ValueError(
                f"backing store expects an (n, {BLOCK_SIZE}) uint8 array, "
                f"got shape {initial.shape}")
        if initial.dtype != np.uint8:
            raise ValueError(f"backing store must be uint8, "
                             f"got {initial.dtype}")
        # Own the content: callers keep their array.
        self._content = initial.copy()

    @classmethod
    def zeros(cls, capacity_blocks: int) -> "BackingStore":
        return cls(np.zeros((capacity_blocks, BLOCK_SIZE), dtype=np.uint8))

    @property
    def capacity_blocks(self) -> int:
        return self._content.shape[0]

    def _check(self, lba: int) -> None:
        if not 0 <= lba < self.capacity_blocks:
            raise IndexError(
                f"lba {lba} outside backing store of "
                f"{self.capacity_blocks} blocks")

    def get(self, lba: int) -> np.ndarray:
        """A copy of one block's content."""
        self._check(lba)
        return self._content[lba].copy()

    def set(self, lba: int, content: np.ndarray) -> None:
        """Overwrite one block's content (copied in)."""
        self._check(lba)
        if content.nbytes != BLOCK_SIZE:
            raise ValueError(
                f"content must be {BLOCK_SIZE} bytes, got {content.nbytes}")
        self._content[lba] = content

    def view_all(self) -> np.ndarray:
        """A read-only view of the whole content matrix.

        Feeds the batch kernels (one signature pass over every block at
        ingest); like :meth:`view`, the view must not be retained across
        mutations.
        """
        view = self._content.view()
        view.flags.writeable = False
        return view

    def view(self, lba: int) -> np.ndarray:
        """A read-only view of one block (fast path for hashing/signatures).

        The view must never be stored by callers; use :meth:`get` for that.
        """
        self._check(lba)
        view = self._content[lba]
        view.flags.writeable = False
        return view
