"""Block-level I/O requests.

Every request addresses whole 4 KB blocks (the paper's cache block size).
Write requests carry the full payload of every block they touch because
I-CASH's behaviour is content dependent: the paper stresses that address
traces alone cannot drive an evaluation of delta-based storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: The fixed logical block size used throughout the repository (bytes).
BLOCK_SIZE = 4096


class OpType(enum.Enum):
    """Kind of block operation a request performs."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class IORequest:
    """One block-level I/O request.

    Attributes:
        op: read or write.
        lba: first logical block address touched (in 4 KB units).
        nblocks: number of consecutive blocks touched.
        payload: for writes, one ``uint8`` array of ``BLOCK_SIZE`` bytes per
            block (``payload[i]`` is the new content of ``lba + i``).  Reads
            carry no payload.
        vm_id: identifier of the virtual machine that issued the request.
            Mirrors the prototype's use of the top address byte to tag the
            originating VM; 0 means the native machine.
        timestamp: issue time in seconds of virtual time (set by workloads
            that model think time; 0.0 for purely closed-loop traces).
    """

    op: OpType
    lba: int
    nblocks: int = 1
    payload: Optional[Sequence[np.ndarray]] = None
    vm_id: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError(f"lba must be non-negative, got {self.lba}")
        if self.nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {self.nblocks}")
        if self.op is OpType.WRITE:
            if self.payload is None:
                raise ValueError("write requests must carry a payload")
            if len(self.payload) != self.nblocks:
                raise ValueError(
                    f"payload holds {len(self.payload)} blocks but request "
                    f"spans {self.nblocks}"
                )
            for i, block in enumerate(self.payload):
                if block.nbytes != BLOCK_SIZE:
                    raise ValueError(
                        f"payload block {i} is {block.nbytes} bytes, "
                        f"expected {BLOCK_SIZE}"
                    )
        elif self.payload is not None:
            raise ValueError("read requests must not carry a payload")

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    @property
    def size_bytes(self) -> int:
        """Total bytes transferred by this request."""
        return self.nblocks * BLOCK_SIZE

    def lbas(self) -> range:
        """The logical block addresses this request touches."""
        return range(self.lba, self.lba + self.nblocks)


def make_read(lba: int, nblocks: int = 1, vm_id: int = 0,
              timestamp: float = 0.0) -> IORequest:
    """Convenience constructor for a read request."""
    return IORequest(OpType.READ, lba, nblocks, vm_id=vm_id,
                     timestamp=timestamp)


def make_write(lba: int, payload: Sequence[np.ndarray], vm_id: int = 0,
               timestamp: float = 0.0) -> IORequest:
    """Convenience constructor for a write request covering ``payload``."""
    return IORequest(OpType.WRITE, lba, len(payload), payload=payload,
                     vm_id=vm_id, timestamp=timestamp)
