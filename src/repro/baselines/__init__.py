"""Baseline storage architectures the paper compares I-CASH against.

Section 4.4 sets up four baselines on identical hardware:

* :class:`~repro.baselines.pure_ssd.PureSSD` — "Fusion-io": the whole
  data set on the SSD, no HDD.
* :class:`~repro.baselines.raid0.RAID0Storage` — RAID0 over four SATA
  disks (Linux MD).
* :class:`~repro.baselines.dedup.DedupCacheStorage` — an SSD cache that
  stores a single copy of identical blocks (content-addressed).
* :class:`~repro.baselines.lru_cache.LRUCacheStorage` — the SSD as a
  plain LRU cache on top of the disk.

Dedup and LRU get exactly the same SSD budget as I-CASH (about 10 % of
each benchmark's data set); PureSSD gets enough SSD for everything.
"""

from repro.baselines.base import StorageSystem
from repro.baselines.dedup import DedupCacheStorage
from repro.baselines.lru_cache import LRUCacheStorage
from repro.baselines.pure_ssd import PureSSD
from repro.baselines.raid0 import RAID0Storage

__all__ = [
    "DedupCacheStorage",
    "LRUCacheStorage",
    "PureSSD",
    "RAID0Storage",
    "StorageSystem",
]
