"""The "Fusion-io" baseline: the entire data set on the SSD.

Section 4.4, baseline 1: "using the Fusion-io ioDrive 80G SLC as the pure
data storage with no HDD involved.  All applications run on this SSD that
stores the entire data set."

Reads are fast but pay the full-footprint penalty (the whole data set is
touched, not a small reference set); writes pay NAND program time plus
whatever garbage collection their volume induces — which is exactly the
behaviour the paper leans on when I-CASH beats pure SSD on write-heavy
workloads (Figures 7, 9, 11).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.sim.backing import BackingStore


class PureSSD(StorageSystem):
    """All blocks live on one flash SSD."""

    def __init__(self, initial_content: np.ndarray,
                 ssd_spec: Optional[SSDSpec] = None) -> None:
        capacity_blocks = initial_content.shape[0]
        super().__init__("fusion-io", capacity_blocks)
        self.backing = BackingStore(initial_content)
        self.ssd = FlashSSD(capacity_blocks,
                            ssd_spec if ssd_spec is not None
                            else SSDSpec())

    def devices(self) -> Iterable:
        return (self.ssd,)

    def ingest(self) -> float:
        """The benchmark's load phase: write the whole data set to flash.

        Matters for fidelity: afterwards the drive's footprint spans the
        full data set (the paper's ~15 µs large-footprint read penalty)
        and the FTL starts the measured run with a full mapping, so
        runtime overwrites trigger realistic garbage collection.
        """
        latency = 0.0
        for lba in range(self.capacity_blocks):
            latency += self.ssd.write(lba, 1)
        return latency

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        latency = self.ssd.read(lba, nblocks)
        contents = [self.backing.view(block)
                    for block in range(lba, lba + nblocks)]
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        for offset, content in enumerate(blocks):
            self.backing.set(lba + offset, content)
        return self.ssd.write(lba, len(blocks))
