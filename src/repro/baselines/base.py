"""Common interface every storage architecture implements.

A storage system services block reads and writes over one logical block
space, returning both the *service latency* and — for reads — the actual
block *content*.  Returning real content is deliberate: it lets the test
suite verify every architecture end-to-end (whatever was written must
read back identically), which for I-CASH exercises the whole
reference-plus-delta reconstruction path rather than trusting it.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.sim.metrics import NULL_REGISTRY
from repro.sim.request import IORequest, OpType
from repro.sim.stats import StatsCollector
from repro.sim.trace import NULL_TRACER


class StorageSystem(abc.ABC):
    """Abstract storage architecture over a logical 4 KB block space."""

    #: Per-request trace sink (see :mod:`repro.sim.trace` and
    #: ``docs/OBSERVABILITY.md``).  The null default costs one branch
    #: per instrumentation site; :meth:`set_tracer` attaches a recording
    #: tracer to the system and every device model under it.
    tracer = NULL_TRACER

    #: Windowed metrics sink (see :mod:`repro.sim.metrics`).  The shared
    #: null registry makes registration a no-op; :meth:`set_metrics`
    #: attaches a real registry for monitoring runs.
    metrics = NULL_REGISTRY

    def __init__(self, name: str, capacity_blocks: int) -> None:
        self.name = name
        self.capacity_blocks = capacity_blocks
        self.stats = StatsCollector()
        #: Time (s) spent on work off the request critical path
        #: (background scans, flushes, destaging).  The experiment runner
        #: folds this into wall-clock time.
        self.background_time = 0.0
        #: CPU seconds consumed by the architecture's own computation
        #: (delta codec, hashing, scans) — input to the CPU-utilisation
        #: model behind Figures 6(b)/8(b)/10(b).
        self.cpu_time = 0.0

    # -- core operations ---------------------------------------------------

    @abc.abstractmethod
    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        """Service a read; returns (latency seconds, block contents)."""

    @abc.abstractmethod
    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        """Service a write of consecutive blocks; returns latency seconds."""

    def flush(self) -> float:
        """Drain dirty state to durable media; returns latency seconds.

        Architectures without dirty state inherit this no-op.
        """
        return 0.0

    def ingest(self) -> float:
        """Organise the pre-loaded data set before the benchmark runs.

        Real benchmarks create their data sets (database load, mail-store
        creation, NFS file population) before measurement; architectures
        that reorganise content at creation time (I-CASH's offline
        reference selection and delta packing, Section 3.1 case 2)
        override this.  Returns the setup time, which runners do not
        charge to the benchmark.
        """
        return 0.0

    @abc.abstractmethod
    def devices(self) -> Iterable:
        """The device models underlying this system (energy accounting)."""

    # -- observability -----------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to this system and every device beneath it.

        Pass :data:`repro.sim.trace.NULL_TRACER` to detach.  Devices
        shared with nothing else (the normal case) simply start emitting
        spans into ``tracer``'s buffer.
        """
        self.tracer = tracer
        for device in self.devices():
            device.tracer = tracer

    def set_metrics(self, registry) -> None:
        """Register the whole stack's instruments with ``registry``.

        Calls :meth:`register_metrics` on the system itself (subclasses
        with internal state to expose override it) and on every device
        beneath it.  Devices sharing a name (array members, mirrored
        pairs) get ``name``, ``name-2``, ``name-3``... as their
        ``device`` label so their series stay distinguishable.
        """
        self.metrics = registry
        if not registry.enabled:
            return
        self.register_metrics(registry)
        seen = {}
        for device in self.devices():
            register = getattr(device, "register_metrics", None)
            if register is None:
                continue
            name = getattr(device, "name", "device")
            seen[name] = seen.get(name, 0) + 1
            label = name if seen[name] == 1 else f"{name}-{seen[name]}"
            register(registry, label=label)

    def register_metrics(self, registry) -> None:
        """System-level instruments; the base system has none beyond
        what the runner and devices register."""

    # -- request dispatch ------------------------------------------------------

    def process(self, request: IORequest) -> float:
        """Service one request, recording per-class latency stats."""
        if request.op is OpType.READ:
            latency, _ = self.process_read(request)
        else:
            latency = self.process_write(request)
        return latency

    def process_read(self, request: IORequest
                     ) -> Tuple[float, List[np.ndarray]]:
        """Service one read request with stats and trace bookkeeping."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_request("read", request.lba, request.nblocks)
        latency, contents = self.read(request.lba, request.nblocks)
        self.stats.record_latency("read", latency)
        if tracer.enabled:
            tracer.end_request(latency)
        return latency, contents

    def process_write(self, request: IORequest) -> float:
        """Service one write request with stats and trace bookkeeping."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_request("write", request.lba, request.nblocks)
        latency = self.write(request.lba, request.payload)
        self.stats.record_latency("write", latency)
        if tracer.enabled:
            tracer.end_request(latency)
        return latency

    # -- reporting ---------------------------------------------------------------

    @property
    def ssd_write_ops(self) -> int:
        """Write operations issued to SSD devices (Table 6's metric)."""
        return sum(d.stats.count("write_ops") for d in self.devices()
                   if getattr(d, "name", "") == "ssd")

    @property
    def ssd_write_blocks(self) -> int:
        return sum(d.stats.count("write_blocks") for d in self.devices()
                   if getattr(d, "name", "") == "ssd")

    def _check_span(self, lba: int, nblocks: int) -> None:
        if nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"span [{lba}, {lba + nblocks}) outside {self.name} of "
                f"{self.capacity_blocks} blocks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"capacity_blocks={self.capacity_blocks})")
