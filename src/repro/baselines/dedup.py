"""The Dedup baseline: a content-addressed (deduplicating) SSD cache.

Section 4.4, baseline 3: "data deduplication that saves only one copy of
data in SSD for identical blocks", again with I-CASH's SSD budget.
Identical blocks share one physical SSD copy (reference-counted), so the
cache holds more *logical* blocks than the SSD has slots — the dedup win.
The costs the paper calls out are modelled too:

* every insert and every write pays a content-hash over the full 4 KB
  block (far more expensive than I-CASH's four sampled bytes per
  sub-block);
* "changing a block that is shared by several other identical blocks
  results in a new copy of data so that write performance is slowed
  down" — a write to a shared block breaks the sharing and writes a
  fresh SSD copy.

Dedup only exploits *identity*; similar-but-not-identical blocks gain
nothing, which is exactly the gap I-CASH's delta scheme exploits.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.devices.hdd import HardDiskDrive, HDDSpec
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.sim.backing import BackingStore

#: CPU time to hash one 4 KB block for content addressing.
HASH_COST_S = 20e-6


class _ChunkEntry:
    """One physical SSD copy shared by all lbas with identical content."""

    __slots__ = ("slot", "refcount")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.refcount = 0


class DedupCacheStorage(StorageSystem):
    """Write-back, content-addressed SSD cache over a single HDD."""

    def __init__(self, initial_content: np.ndarray, cache_blocks: int,
                 ssd_spec: Optional[SSDSpec] = None,
                 hdd_spec: Optional[HDDSpec] = None) -> None:
        capacity_blocks = initial_content.shape[0]
        super().__init__("dedup", capacity_blocks)
        if cache_blocks < 1:
            raise ValueError(f"cache needs >= 1 block, got {cache_blocks}")
        self.backing = BackingStore(initial_content)
        self.ssd = FlashSSD(cache_blocks,
                            ssd_spec if ssd_spec is not None
                            else SSDSpec())
        self.hdd = HardDiskDrive(capacity_blocks,
                                 hdd_spec if hdd_spec is not None
                                 else HDDSpec())
        self.cache_blocks = cache_blocks
        self._free: List[int] = list(range(cache_blocks - 1, -1, -1))
        # Content hash -> shared physical entry.
        self._chunks: Dict[bytes, _ChunkEntry] = {}
        # Cached lba -> its content hash, in LRU order (MRU at the end).
        self._lba_hash: "OrderedDict[int, bytes]" = OrderedDict()
        self._dirty: Set[int] = set()

    def devices(self) -> Iterable:
        return (self.ssd, self.hdd)

    # -- content addressing ------------------------------------------------------

    def _hash(self, content: np.ndarray) -> bytes:
        self.cpu_time += HASH_COST_S
        return hashlib.sha1(content.tobytes()).digest()

    def _release(self, lba: int) -> None:
        """Drop ``lba``'s claim on its shared chunk."""
        digest = self._lba_hash.pop(lba, None)
        if digest is None:
            return
        entry = self._chunks[digest]
        entry.refcount -= 1
        if entry.refcount == 0:
            del self._chunks[digest]
            self.ssd.trim(entry.slot, 1)
            self._free.append(entry.slot)

    def _evict_one(self) -> float:
        """Evict the LRU logical block; destage if dirty.

        Destaging is asynchronous, like the LRU baseline's: it occupies
        the disk (busy time, energy) without stalling the evicting
        request.
        """
        lba = next(iter(self._lba_hash))
        if lba in self._dirty:
            self._dirty.discard(lba)
            self.background_time += self.hdd.write(lba, 1)
            self.stats.bump("destages")
        self._release(lba)
        self.stats.bump("evictions")
        return 0.0

    def _insert(self, lba: int, content: np.ndarray, dirty: bool) -> float:
        """Map ``lba`` to its content chunk, writing the SSD only for new
        content — the dedup save."""
        latency = 0.0
        digest = self._hash(content)
        latency += HASH_COST_S
        self._release(lba)  # an lba holds at most one chunk claim
        entry = self._chunks.get(digest)
        if entry is None:
            if not self._free:
                latency += self._evict_one()
                if not self._free:
                    # Eviction released a shared chunk claim, not a slot;
                    # keep evicting until a physical slot frees up.
                    while not self._free and self._lba_hash:
                        latency += self._evict_one()
            if not self._free:
                raise RuntimeError("dedup cache has no reclaimable slot")
            entry = _ChunkEntry(self._free.pop())
            self._chunks[digest] = entry
            latency += self.ssd.write(entry.slot, 1)
            self.stats.bump("unique_inserts")
        else:
            self.stats.bump("dedup_hits")
        entry.refcount += 1
        self._lba_hash[lba] = digest
        self._lba_hash.move_to_end(lba)
        if dirty:
            self._dirty.add(lba)
        return latency

    # -- StorageSystem interface ----------------------------------------------------

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        latency = 0.0
        contents: List[np.ndarray] = []
        for block in range(lba, lba + nblocks):
            content = self.backing.get(block)
            digest = self._lba_hash.get(block)
            if digest is not None:
                self._lba_hash.move_to_end(block)
                latency += self.ssd.read(self._chunks[digest].slot, 1)
                self.stats.bump("cache_hits")
            else:
                latency += self.hdd.read(block, 1)
                latency += self._insert(block, content, dirty=False)
                self.stats.bump("cache_misses")
            contents.append(content)
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        latency = 0.0
        for offset, content in enumerate(blocks):
            block = lba + offset
            old_digest = self._lba_hash.get(block)
            if (old_digest is not None
                    and self._chunks[old_digest].refcount > 1):
                # Writing a shared block forces a private copy — the
                # copy-on-write penalty the paper attributes to dedup.
                self.stats.bump("shared_block_cow")
            self.backing.set(block, content)
            latency += self._insert(block, content, dirty=True)
            self.stats.bump("writes")
        return latency

    def flush(self) -> float:
        latency = 0.0
        for block in sorted(self._dirty):
            latency += self.hdd.write(block, 1)
        self.stats.bump("flush_destages", len(self._dirty))
        self._dirty.clear()
        return latency

    @property
    def dedup_ratio(self) -> float:
        """Logical cached blocks per physical SSD copy (>= 1)."""
        physical = len(self._chunks)
        return len(self._lba_hash) / physical if physical else 1.0
