"""The RAID0 baseline: data striped over four SATA disks.

Section 4.4, baseline 2: "RAID0 with data striping on 4 SATA disks.
Linux MD is used as the RAID controller."  Good sequential throughput
through parallelism; small random requests still pay one full mechanical
access, which is why the paper sees RAID0 trail everything else on
transaction workloads.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.devices.hdd import HDDSpec
from repro.devices.raid import RAID0Array
from repro.sim.backing import BackingStore


class RAID0Storage(StorageSystem):
    """All blocks live on a RAID0 array of mechanical disks."""

    def __init__(self, initial_content: np.ndarray, ndisks: int = 4,
                 chunk_blocks: int = 16,
                 hdd_spec: Optional[HDDSpec] = None) -> None:
        capacity_blocks = initial_content.shape[0]
        super().__init__("raid0", capacity_blocks)
        self.backing = BackingStore(initial_content)
        self.raid = RAID0Array(
            capacity_blocks, ndisks=ndisks, chunk_blocks=chunk_blocks,
            hdd_spec=hdd_spec if hdd_spec is not None else HDDSpec())

    def devices(self) -> Iterable:
        # Expose member disks (not the array wrapper) so energy accounting
        # sees four spindles, matching the paper's "4 disks, 15 W each".
        return tuple(self.raid.disks)

    def set_tracer(self, tracer) -> None:
        # Trace at the array wrapper, not the member disks: one
        # ``raid0_read``/``raid0_write`` span per request whose duration
        # is the slowest member's (the request's actual service time) —
        # per-member spans would overlap and double-count parallel work.
        self.tracer = tracer
        self.raid.tracer = tracer

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        latency = self.raid.read(lba, nblocks)
        contents = [self.backing.view(block)
                    for block in range(lba, lba + nblocks)]
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        for offset, content in enumerate(blocks):
            self.backing.set(lba + offset, content)
        return self.raid.write(lba, len(blocks))
