"""The LRU baseline: SSD as a plain LRU cache over one disk.

Section 4.4, baseline 4: "using SSD as an LRU cache on top of the SATA
disk drive", with the same SSD budget as I-CASH (about 10 % of the data
set).  The cache is write-back: writes land in the SSD and destage to the
HDD on eviction.  Every miss *fills* the cache with an SSD write, and
every write dirties it — which is why Table 6 shows the LRU cache writing
the SSD more than any other architecture.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.devices.hdd import HardDiskDrive, HDDSpec
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.sim.backing import BackingStore


class LRUCacheStorage(StorageSystem):
    """Write-back LRU SSD cache in front of a single HDD."""

    def __init__(self, initial_content: np.ndarray, cache_blocks: int,
                 ssd_spec: Optional[SSDSpec] = None,
                 hdd_spec: Optional[HDDSpec] = None) -> None:
        capacity_blocks = initial_content.shape[0]
        super().__init__("lru", capacity_blocks)
        if cache_blocks < 1:
            raise ValueError(f"cache needs >= 1 block, got {cache_blocks}")
        self.backing = BackingStore(initial_content)
        self.ssd = FlashSSD(cache_blocks,
                            ssd_spec if ssd_spec is not None
                            else SSDSpec())
        self.hdd = HardDiskDrive(capacity_blocks,
                                 hdd_spec if hdd_spec is not None
                                 else HDDSpec())
        self.cache_blocks = cache_blocks
        # lba -> SSD slot, in LRU order (MRU at the end).
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self._free: List[int] = list(range(cache_blocks - 1, -1, -1))
        self._dirty: Set[int] = set()

    def devices(self) -> Iterable:
        return (self.ssd, self.hdd)

    # -- cache mechanics ------------------------------------------------------

    def _evict_one(self) -> float:
        """Evict the LRU block; destage to HDD if dirty.

        Destaging is asynchronous (the write-back cache's point): it
        occupies the disk and counts toward energy, but not toward the
        evicting request's latency.
        """
        lba, slot = self._map.popitem(last=False)
        if lba in self._dirty:
            self._dirty.discard(lba)
            self.background_time += self.hdd.write(lba, 1)
            self.stats.bump("destages")
        self.ssd.trim(slot, 1)
        self._free.append(slot)
        self.stats.bump("evictions")
        return 0.0

    def _insert(self, lba: int, dirty: bool) -> float:
        """Fill ``lba`` into the cache (SSD write), evicting if needed."""
        latency = 0.0
        if not self._free:
            latency += self._evict_one()
        slot = self._free.pop()
        self._map[lba] = slot
        if dirty:
            self._dirty.add(lba)
        latency += self.ssd.write(slot, 1)
        return latency

    # -- StorageSystem interface ------------------------------------------------

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        latency = 0.0
        contents: List[np.ndarray] = []
        for block in range(lba, lba + nblocks):
            slot = self._map.get(block)
            if slot is not None:
                self._map.move_to_end(block)
                latency += self.ssd.read(slot, 1)
                self.stats.bump("cache_hits")
            else:
                latency += self.hdd.read(block, 1)
                latency += self._insert(block, dirty=False)
                self.stats.bump("cache_misses")
            contents.append(self.backing.view(block))
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        latency = 0.0
        for offset, content in enumerate(blocks):
            block = lba + offset
            self.backing.set(block, content)
            slot = self._map.get(block)
            if slot is not None:
                self._map.move_to_end(block)
                self._dirty.add(block)
                latency += self.ssd.write(slot, 1)
                self.stats.bump("write_hits")
            else:
                latency += self._insert(block, dirty=True)
                self.stats.bump("write_misses")
        return latency

    def flush(self) -> float:
        """Destage every dirty cached block to the HDD."""
        latency = 0.0
        for block in sorted(self._dirty):
            latency += self.hdd.write(block, 1)
        self.stats.bump("flush_destages", len(self._dirty))
        self._dirty.clear()
        return latency

    @property
    def hit_ratio(self) -> float:
        hits = self.stats.count("cache_hits") + self.stats.count("write_hits")
        total = hits + self.stats.count("cache_misses") \
            + self.stats.count("write_misses")
        return hits / total if total else 0.0
