"""Persistent run ledger: every experiment leaves a provenance trail.

Six PRs of observability produce rich *point-in-time* artefacts —
traces, windowed series, bench documents, chaos verdicts — but each
command scatters its own output file and nothing survives across
invocations, so "did loadtest p99 drift since last week?" means manual
JSON spelunking.  This module is the longitudinal layer: an
append-only, schema-versioned run store under ``.repro-ledger/`` that
every entry point (``figure``, ``sweep``, ``bench``, ``loadtest``,
``chaos``, ``monitor`` and plain :func:`~repro.experiments.runner.
run_benchmark`) records into through one
:meth:`LedgerWriter.record` hook on a
:class:`~repro.experiments.runner.RunResult`.

Each row carries full provenance — the declarative run spec (workload,
system, engine, seed, config overrides, load), git SHA + dirty flag,
schema versions, a host fingerprint and the run's virtual wall times —
plus a curated metric snapshot: the :data:`~repro.experiments.bench.
METRIC_POLICY` scalars, key counters, SLO breach summary, the heaviest
critical-path attribution rows and fault outcomes.  On top of the
store sit cross-run analytics: field-level :func:`diff_rows` with
provenance-aware "why might these differ" hints, sparkline trends, and
a rolling-window anomaly detector (:func:`detect_anomalies`) using a
robust median/MAD z-score with noise floors borrowed from the bench
harness's tolerances.

Storage is SQLite (``ledger.db``, the queryable source of truth) plus
a JSONL mirror (``export.jsonl``, one row per line) for grep/jq and CI
artifacts.  Determinism contract: a run's ``run_id`` is a content hash
of its non-volatile fields, machine-local clocks live in a separate
``volatile`` sub-object, and a *canonical* export drops ``volatile``
entirely — so ``--jobs N`` produces byte-identical canonical exports
for any N (results are recorded in submission order by the parent
process; workers never write).

Recording is opt-out (``--no-ledger`` / ``REPRO_LEDGER=0``) and
library use defaults to :data:`NULL_LEDGER`, mirroring the
NULL_TRACER/NULL_REGISTRY zero-overhead convention.  Schema, field
tables, anomaly math and retention are documented in docs/LEDGER.md
(doc-parity tested by tests/test_ledger_docs.py).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import platform
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field, is_dataclass, asdict
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

#: Version of the row layout (documented in docs/LEDGER.md, doc-parity
#: tested).  Bump on any breaking change to the keys below; the store
#: refuses to mix schema versions.
LEDGER_SCHEMA_VERSION = 1

#: Default store directory, overridable via :data:`ENV_DIR`.
DEFAULT_DIR = ".repro-ledger"
DB_NAME = "ledger.db"
EXPORT_NAME = "export.jsonl"

#: ``REPRO_LEDGER=0`` (or ``false``/``no``/``off``) disables recording
#: everywhere :func:`default_ledger` is consulted.
ENV_TOGGLE = "REPRO_LEDGER"
#: Alternative store location for CLI-driven recording.
ENV_DIR = "REPRO_LEDGER_DIR"

#: Provenance keys every row carries (doc-parity tested against the
#: table in docs/LEDGER.md).
PROVENANCE_FIELDS = ("git_sha", "git_dirty", "schema", "host",
                     "sim_wall_s", "sim_full_wall_s")

#: Spec keys every row carries, whether the run came from a
#: :class:`~repro.experiments.parallel.RunSpec` or a plain result.
SPEC_FIELDS = ("workload", "system", "engine", "seed", "n_requests",
               "scale", "n_vms", "warmup_fraction", "config_overrides",
               "load")

#: Filterable columns for ``rows()`` / ``repro ledger --filter``.
FILTER_KEYS = ("command", "workload", "system", "engine", "seed")

#: Robust z-score threshold of the anomaly detector.
ANOMALY_Z = 3.5
#: Normal-consistency constant: sigma ~= 1.4826 x MAD.
MAD_SCALE = 1.4826
#: Rolling history window (matching prior runs) per trend point.
DEFAULT_WINDOW = 8
#: History points needed before a value can be judged at all.
MIN_HISTORY = 3
#: Relative-tolerance floor for metrics outside METRIC_POLICY.
DEFAULT_REL_TOL = 0.05
#: Heaviest attribution rows kept per request class in a snapshot.
TOP_ATTRIBUTION_ROWS = 3

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# Provenance capture
# ---------------------------------------------------------------------------


_GIT_CACHE: Optional[Tuple[Optional[str], Optional[bool]]] = None


def git_provenance() -> Tuple[Optional[str], Optional[bool]]:
    """``(commit sha, dirty flag)`` of the working tree, cached per
    process; ``(None, None)`` outside a git checkout."""
    global _GIT_CACHE
    if _GIT_CACHE is None:
        try:
            root = os.path.dirname(os.path.abspath(__file__))
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"], cwd=root, check=True,
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], cwd=root, check=True,
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            _GIT_CACHE = (sha or None, bool(status))
        except (OSError, subprocess.SubprocessError):
            _GIT_CACHE = (None, None)
    return _GIT_CACHE


def host_fingerprint() -> Dict[str, str]:
    """Where a row was recorded — context for cross-machine diffs."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


def schema_versions() -> Dict[str, int]:
    """Every schema version a row depends on."""
    from repro.experiments.bench import BENCH_SCHEMA_VERSION

    return {"ledger": LEDGER_SCHEMA_VERSION,
            "bench": BENCH_SCHEMA_VERSION}


def spec_payload(spec, result) -> Dict[str, object]:
    """Normalise a run description to the :data:`SPEC_FIELDS` shape.

    ``spec`` may be a :class:`~repro.experiments.parallel.RunSpec`, a
    plain dict (partial is fine), or None — missing fields fall back
    to what the :class:`~repro.experiments.runner.RunResult` itself
    knows (seed and overrides are then unknown, recorded as null).
    """
    doc: Dict[str, object] = dict.fromkeys(SPEC_FIELDS)
    doc.update({"workload": result.workload, "system": result.system,
                "engine": result.engine,
                "n_requests": result.n_requests})
    if is_dataclass(spec) and not isinstance(spec, type):
        spec = asdict(spec)
    if spec:
        doc.update({key: spec[key] for key in SPEC_FIELDS
                    if key in spec})
    # Tuples (config_overrides, load) become lists so the stored JSON
    # round-trips to the exact same document.
    return json.loads(json.dumps(doc))


def snapshot_result(result) -> Dict[str, object]:
    """The curated metric snapshot of one run.

    ``scalars`` holds every :data:`~repro.experiments.bench.
    METRIC_POLICY` metric plus derived headline numbers; ``noise``
    carries the per-class LatencyStats spread that sizes statistical
    tolerances; ``attribution`` keeps only the heaviest
    :data:`TOP_ATTRIBUTION_ROWS` critical-path rows per class.
    """
    from repro.experiments.bench import METRIC_POLICY

    scalars = {name: float(getattr(result, name))
               for name in METRIC_POLICY}
    scalars.update({
        "cpu_utilization": float(result.cpu_utilization),
        "io_response_ms": float(result.io_response_ms),
        "tx_response_ms": float(result.tx_response_ms),
        "energy_wh": float(result.energy.total_wh),
        "n_measured": float(result.n_measured),
        "verified_reads": float(result.verified_reads),
    })
    breaches: Dict[str, int] = {}
    for breach in result.slo_breaches:
        name = breach.rule.name
        breaches[name] = breaches.get(name, 0) + 1
    snapshot: Dict[str, object] = {
        "scalars": scalars,
        "counters": {name: int(value) for name, value
                     in sorted(result.counters.items())},
        "slo": {"breaches": len(result.slo_breaches),
                "by_rule": dict(sorted(breaches.items()))},
        "noise": {},
        "attribution": [],
        "faults": None,
    }
    table = result.attribution
    if table is not None:
        snapshot["noise"] = {
            op: {"std_us": table.latency(op).std_us,
                 "n": table.latency(op).count}
            for op in table.ops}
        snapshot["attribution"] = table.top_rows(TOP_ATTRIBUTION_ROWS)
    report = result.faults
    if report is not None:
        snapshot["faults"] = [
            {"kind": o.kind, "at_request": o.at_request,
             "station": o.station, "degraded_s": o.degraded_s,
             "rebuild_blocks": o.rebuild_blocks,
             "data_loss_window_blocks": o.data_loss_window_blocks,
             "detected": o.detected, "skipped": o.skipped}
            for o in report.outcomes]
    return json.loads(json.dumps(snapshot))


def run_id_for(body: Dict[str, object]) -> str:
    """Deterministic content hash of a row's non-volatile fields."""
    canonical = json.dumps(body, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Rows
# ---------------------------------------------------------------------------


@dataclass
class LedgerRow:
    """One recorded run, as stored."""

    seq: int
    run_id: str
    schema_version: int
    command: str
    spec: Dict[str, object]
    extra: Dict[str, object]
    provenance: Dict[str, object]
    metrics: Dict[str, object]
    volatile: Dict[str, object]

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "LedgerRow":
        return cls(**{f: doc[f] for f in (
            "seq", "run_id", "schema_version", "command", "spec",
            "extra", "provenance", "metrics", "volatile")})

    def to_json(self, canonical: bool = False) -> Dict[str, object]:
        doc = {
            "seq": self.seq,
            "run_id": self.run_id,
            "schema_version": self.schema_version,
            "command": self.command,
            "spec": self.spec,
            "extra": self.extra,
            "provenance": self.provenance,
            "metrics": self.metrics,
            "volatile": self.volatile,
        }
        if canonical:
            del doc["volatile"]
        return doc

    @property
    def body(self) -> Dict[str, object]:
        """The hashed (non-volatile, non-identity) fields."""
        return {"schema_version": self.schema_version,
                "command": self.command, "spec": self.spec,
                "extra": self.extra, "provenance": self.provenance,
                "metrics": self.metrics}

    def describe(self) -> str:
        spec = self.spec
        seed = spec.get("seed")
        return (f"#{self.seq:<4} {self.run_id}  {self.command:<10} "
                f"{spec.get('workload') or '-':<9} "
                f"{spec.get('system') or '-':<9} "
                f"{spec.get('engine') or '-':<7} "
                f"{seed if seed is not None else '-'}")


def flatten_metrics(metrics: Dict[str, object]) -> Dict[str, float]:
    """Numeric leaves of a snapshot, keyed the way users type them:
    bare scalar names, ``counters.<name>``, ``slo.breaches``."""
    flat: Dict[str, float] = {}
    for name, value in metrics.get("scalars", {}).items():
        flat[name] = float(value)
    for name, value in metrics.get("counters", {}).items():
        flat[f"counters.{name}"] = float(value)
    flat["slo.breaches"] = float(
        metrics.get("slo", {}).get("breaches", 0))
    return flat


def metric_value(row: LedgerRow, metric: str) -> Optional[float]:
    """One metric of one row, or None when the row lacks it."""
    return flatten_metrics(row.metrics).get(metric)


def noise_sem(row: LedgerRow, metric: str) -> Optional[float]:
    """Standard error of ``metric``'s request class, when recorded.

    Only latency metrics have a noise entry (keyed by METRIC_POLICY's
    noise key), and only rows from profiled runs carry one.
    """
    from repro.experiments.bench import METRIC_POLICY

    policy = METRIC_POLICY.get(metric)
    if policy is None or policy[2] is None:
        return None
    entry = row.metrics.get("noise", {}).get(policy[2])
    if not entry:
        return None
    n = max(1.0, float(entry.get("n", 1.0)))
    return float(entry.get("std_us", 0.0)) / math.sqrt(n)


# ---------------------------------------------------------------------------
# Null object — the library default
# ---------------------------------------------------------------------------


class NullLedger:
    """The default ledger: recording is a no-op.

    Library callers pass ``ledger=None`` (or this object) and pay one
    attribute load, mirroring NULL_TRACER / NULL_REGISTRY — measured
    in ``scripts/bench_tracer_overhead.py`` (see docs/TUNING.md).
    """

    __slots__ = ()

    enabled = False
    recorded = 0
    root = None

    def record(self, result, command: str, spec=None, extra=None,
               host_wall_s: Optional[float] = None) -> None:
        return None


NULL_LEDGER = NullLedger()


def ledger_enabled() -> bool:
    """False when :data:`ENV_TOGGLE` disables recording."""
    flag = os.environ.get(ENV_TOGGLE, "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


def default_root() -> str:
    return os.environ.get(ENV_DIR) or DEFAULT_DIR


def default_ledger(no_ledger: bool = False,
                   root: Optional[str] = None):
    """The CLI's ledger: a writer on the default store, or
    :data:`NULL_LEDGER` when opted out by flag or environment."""
    if no_ledger or not ledger_enabled():
        return NULL_LEDGER
    return LedgerWriter(root or default_root())


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


_CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
)"""

_CREATE_RUNS = """
CREATE TABLE IF NOT EXISTS runs (
    seq INTEGER PRIMARY KEY,
    run_id TEXT NOT NULL,
    command TEXT NOT NULL,
    workload TEXT,
    system TEXT,
    engine TEXT,
    seed TEXT,
    created_unix REAL NOT NULL,
    row_json TEXT NOT NULL
)"""


class LedgerWriter:
    """Append-only run store: SQLite + JSONL mirror under ``root``.

    Concurrency: every append runs inside a ``BEGIN IMMEDIATE``
    transaction, and the export line is written while that write lock
    is held — so concurrent recorders (e.g. two CLI invocations)
    serialize cleanly instead of interleaving.  A crash between the
    insert and the append leaves a row/export parity gap that
    :meth:`verify` reports and :meth:`export` repairs.

    ``clock`` injects the wall clock (tests pin it); it feeds only the
    ``volatile`` sub-object, never the run id.
    """

    enabled = True

    def __init__(self, root: str = DEFAULT_DIR,
                 clock: Callable[[], float] = time.time) -> None:
        self.root = root
        self.db_path = os.path.join(root, DB_NAME)
        self.export_path = os.path.join(root, EXPORT_NAME)
        self._clock = clock
        self.recorded = 0
        self.last_run_id: Optional[str] = None
        os.makedirs(root, exist_ok=True)
        with contextlib.closing(self._connect()) as conn, conn:
            conn.execute(_CREATE_META)
            conn.execute(_CREATE_RUNS)
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_runs_run_id "
                "ON runs (run_id)")
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_runs_filter "
                "ON runs (command, workload, system, engine)")
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(LEDGER_SCHEMA_VERSION),))
            elif int(row[0]) != LEDGER_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.db_path}: ledger schema {row[0]} "
                    f"unsupported (expected {LEDGER_SCHEMA_VERSION})")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    # -- appending ---------------------------------------------------------

    def record(self, result, command: str, spec=None, extra=None,
               host_wall_s: Optional[float] = None) -> str:
        """Append one run; returns its deterministic ``run_id``.

        ``spec`` (RunSpec or dict) pins the run's recipe; ``extra``
        carries command-specific context (figure name, sweep value,
        chaos scenario...).  ``host_wall_s`` is machine noise and goes
        to the ``volatile`` sub-object only.
        """
        body = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "command": command,
            "spec": spec_payload(spec, result),
            "extra": json.loads(json.dumps(extra or {})),
            "provenance": {
                "git_sha": git_provenance()[0],
                "git_dirty": git_provenance()[1],
                "schema": schema_versions(),
                "host": host_fingerprint(),
                "sim_wall_s": result.wall_time_s,
                "sim_full_wall_s": result.full_wall_time_s,
            },
            "metrics": snapshot_result(result),
        }
        run_id = run_id_for(body)
        volatile = {"recorded_unix": round(float(self._clock()), 6),
                    "host_wall_s": host_wall_s}
        spec_doc = body["spec"]
        with contextlib.closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                seq = conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) + 1 FROM runs"
                ).fetchone()[0]
                row = LedgerRow(seq=seq, run_id=run_id,
                                volatile=volatile, **body)
                conn.execute(
                    "INSERT INTO runs (seq, run_id, command, workload,"
                    " system, engine, seed, created_unix, row_json) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (seq, run_id, command, spec_doc.get("workload"),
                     spec_doc.get("system"), spec_doc.get("engine"),
                     _seed_text(spec_doc.get("seed")),
                     volatile["recorded_unix"],
                     _dumps(row.to_json())))
                with open(self.export_path, "a",
                          encoding="utf-8") as handle:
                    handle.write(_dumps(row.to_json()) + "\n")
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        self.recorded += 1
        self.last_run_id = run_id
        return run_id

    # -- querying ----------------------------------------------------------

    def rows(self, filters: Optional[Dict[str, object]] = None,
             last: Optional[int] = None) -> List[LedgerRow]:
        """Matching rows in append (seq) order.

        ``filters`` keys are limited to :data:`FILTER_KEYS`; ``last``
        keeps only the newest N matches.
        """
        where, params = _where_clause(filters)
        sql = f"SELECT row_json FROM runs{where} ORDER BY seq"
        if last is not None:
            sql = (f"SELECT row_json FROM (SELECT seq, row_json FROM "
                   f"runs{where} ORDER BY seq DESC LIMIT ?) "
                   f"ORDER BY seq")
            params = params + [int(last)]
        with contextlib.closing(self._connect()) as conn:
            found = conn.execute(sql, params).fetchall()
        return [LedgerRow.from_json(json.loads(text))
                for (text,) in found]

    def get(self, ref: str) -> LedgerRow:
        """One row by ``seq`` number or (prefix of a) ``run_id``.

        A prefix matching several *distinct* run ids is ambiguous and
        raises; re-recordings of the identical run share a run id, and
        the newest row wins.
        """
        with contextlib.closing(self._connect()) as conn:
            if str(ref).isdigit():
                found = conn.execute(
                    "SELECT row_json FROM runs WHERE seq = ?",
                    (int(ref),)).fetchall()
                if not found:
                    raise KeyError(f"no ledger row with seq {ref}")
                return LedgerRow.from_json(json.loads(found[0][0]))
            found = conn.execute(
                "SELECT run_id, row_json FROM runs WHERE run_id "
                "LIKE ? ORDER BY seq DESC",
                (str(ref) + "%",)).fetchall()
        if not found:
            raise KeyError(f"no ledger row with run id {ref!r}")
        distinct = {run_id for run_id, _ in found}
        if len(distinct) > 1:
            raise KeyError(
                f"run id prefix {ref!r} is ambiguous: "
                f"{', '.join(sorted(distinct))}")
        return LedgerRow.from_json(json.loads(found[0][1]))

    def count(self) -> int:
        with contextlib.closing(self._connect()) as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- maintenance -------------------------------------------------------

    def export(self, path: Optional[str] = None,
               canonical: bool = False) -> int:
        """(Re)write the JSONL mirror from the database.

        ``canonical=True`` drops the ``volatile`` sub-object — the
        byte-identical-across-jobs form CI diffs.  Returns the row
        count.
        """
        rows = self.rows()
        path = path or self.export_path
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(_dumps(row.to_json(canonical)) + "\n")
        return len(rows)

    def verify(self) -> List[str]:
        """Integrity issues, empty when the store is healthy.

        Checks the meta schema version, per-row schema versions,
        recomputes every content-hash run id, and compares the JSONL
        mirror line by line against the database (row/export parity —
        the crash window :meth:`record` documents shows up here).
        """
        issues: List[str] = []
        with contextlib.closing(self._connect()) as conn:
            meta = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if meta is None:
                issues.append("meta: schema_version missing")
            elif int(meta[0]) != LEDGER_SCHEMA_VERSION:
                issues.append(
                    f"meta: schema_version {meta[0]} != "
                    f"{LEDGER_SCHEMA_VERSION}")
        rows = self.rows()
        for row in rows:
            if row.schema_version != LEDGER_SCHEMA_VERSION:
                issues.append(f"seq {row.seq}: row schema "
                              f"{row.schema_version}")
            expected = run_id_for(row.body)
            if row.run_id != expected:
                issues.append(
                    f"seq {row.seq}: run_id {row.run_id} does not "
                    f"match content (expected {expected}) — row "
                    f"edited after append?")
        if not os.path.exists(self.export_path):
            issues.append(f"{self.export_path}: missing (run "
                          f"'repro ledger export' to rebuild)")
            return issues
        with open(self.export_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if len(lines) != len(rows):
            issues.append(
                f"export has {len(lines)} line(s) but the database "
                f"has {len(rows)} row(s) — rebuild with "
                f"'repro ledger export'")
        for row, line in zip(rows, lines):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                issues.append(f"export line for seq {row.seq}: "
                              f"not valid JSON")
                continue
            if doc.get("seq") != row.seq or \
                    doc.get("run_id") != row.run_id:
                issues.append(
                    f"export line {doc.get('seq')}/{doc.get('run_id')}"
                    f" does not match database row {row.seq}/"
                    f"{row.run_id}")
                continue
            mirrored = dict(doc)
            mirrored.pop("volatile", None)
            if mirrored != row.to_json(canonical=True):
                issues.append(f"export line for seq {row.seq}: "
                              f"content diverges from database")
        return issues

    def prune(self, keep: int) -> int:
        """Drop all but the newest ``keep`` rows; rewrite the export.

        The one deliberately destructive operation — retention, not
        editing: surviving rows are untouched and keep their run ids.
        Returns the number of rows removed.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        with contextlib.closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                removed = conn.execute(
                    "DELETE FROM runs WHERE seq NOT IN "
                    "(SELECT seq FROM runs ORDER BY seq DESC LIMIT ?)",
                    (keep,)).rowcount
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        self.export()
        return removed

    # -- analytics ---------------------------------------------------------

    def diff(self, ref_a: str, ref_b: str) -> "RunDiff":
        return diff_rows(self.get(ref_a), self.get(ref_b))

    def explain(self, ref_a: str, ref_b: str):
        """Deep differential diagnosis of two recorded runs: the
        :mod:`repro.analysis.explain` engine over both rows' snapshots
        (``repro ledger diff --deep`` / ``repro explain``).  Returns
        an :class:`~repro.analysis.explain.ExplainReport`."""
        from repro.analysis.explain import explain_ledger_rows

        return explain_ledger_rows(self.get(ref_a), self.get(ref_b))

    def trend(self, metric: str,
              filters: Optional[Dict[str, object]] = None,
              last: int = 50,
              window: int = DEFAULT_WINDOW) -> "TrendReport":
        """The metric's history over matching runs, anomaly-flagged."""
        rows = [row for row in self.rows(filters, last=last)
                if metric_value(row, metric) is not None]
        values = [metric_value(row, metric) for row in rows]
        sems = [noise_sem(row, metric) for row in rows]
        anomalies = detect_anomalies(values, metric=metric,
                                     window=window, sems=sems)
        return TrendReport(metric=metric, rows=rows, values=values,
                           window=window, anomalies=anomalies,
                           filters=dict(filters or {}))


def _seed_text(seed) -> Optional[str]:
    return None if seed is None else str(seed)


def _dumps(doc: Dict[str, object]) -> str:
    return json.dumps(doc, sort_keys=True)


def _where_clause(filters: Optional[Dict[str, object]]
                  ) -> Tuple[str, List[object]]:
    if not filters:
        return "", []
    clauses, params = [], []
    for key, value in sorted(filters.items()):
        if key not in FILTER_KEYS:
            raise ValueError(
                f"unknown filter {key!r}; filterable fields: "
                f"{', '.join(FILTER_KEYS)}")
        clauses.append(f"{key} = ?")
        params.append(str(value))
    return " WHERE " + " AND ".join(clauses), params


def parse_filters(pairs: Optional[Sequence[str]]) -> Dict[str, str]:
    """``["workload=tpcc", ...]`` -> dict, validating keys."""
    filters: Dict[str, str] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise ValueError(
                f"bad filter {pair!r}; expected key=value with a key "
                f"from: {', '.join(FILTER_KEYS)}")
        if key not in FILTER_KEYS:
            raise ValueError(
                f"unknown filter {key!r}; filterable fields: "
                f"{', '.join(FILTER_KEYS)}")
        filters[key] = value
    return filters


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDelta:
    """One metric that differs between two rows."""

    metric: str
    a: Optional[float]
    b: Optional[float]

    @property
    def rel(self) -> Optional[float]:
        """Relative change b vs a, None when undefined."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    def render(self) -> str:
        def fmt(value):
            return "-" if value is None else f"{value:>14.4f}"
        rel = self.rel
        rel_text = "" if rel is None else f"  {rel:+8.2%}"
        return (f"  {self.metric:<32} {fmt(self.a)} -> "
                f"{fmt(self.b)}{rel_text}")


@dataclass
class RunDiff:
    """Field-level diff of two runs plus provenance hints."""

    a: LedgerRow
    b: LedgerRow
    deltas: List[FieldDelta]
    unchanged: int
    hints: List[str]

    def render(self) -> str:
        lines = [f"a: {self.a.describe()}",
                 f"b: {self.b.describe()}", ""]
        if self.deltas:
            lines.append(f"{len(self.deltas)} metric(s) differ "
                         f"({self.unchanged} unchanged):")
            lines.extend(delta.render() for delta in self.deltas)
        else:
            lines.append(f"no metric differences "
                         f"({self.unchanged} compared)")
        lines.append("")
        lines.append("why might these differ?")
        lines.extend(f"  - {hint}" for hint in self.hints)
        return "\n".join(lines)


def provenance_hints(a: LedgerRow, b: LedgerRow) -> List[str]:
    """Human hints: which recipe/tree differences could explain a
    metric delta between two rows."""
    hints: List[str] = []
    sa, sb = a.spec, b.spec
    for key, why in (
            ("workload", "different workloads — not comparable runs"),
            ("system", "different architectures under test"),
            ("engine", "different wall-clock engines time the same "
                       "service stream differently"),
            ("n_requests", "different run lengths shift warmup and "
                           "steady-state mix"),
            ("scale", "different data-set scales change locality"),
            ("n_vms", "different VM counts change interleaving"),
            ("load", "different arrival models change queueing"),
    ):
        if sa.get(key) != sb.get(key):
            hints.append(f"{key} differs ({sa.get(key)!r} vs "
                         f"{sb.get(key)!r}): {why}")
    if sa.get("seed") != sb.get("seed"):
        hints.append(
            f"seed differs ({sa.get('seed')} vs {sb.get('seed')}): "
            f"expect run-to-run statistical shifts within the "
            f"METRIC_POLICY noise tolerances")
    if sa.get("config_overrides") != sb.get("config_overrides"):
        hints.append(
            f"config overrides differ ({sa.get('config_overrides')} "
            f"vs {sb.get('config_overrides')}): deliberate "
            f"configuration change")
    pa, pb = a.provenance, b.provenance
    if pa.get("git_sha") != pb.get("git_sha"):
        hints.append(
            f"trees differ ({_short(pa.get('git_sha'))} vs "
            f"{_short(pb.get('git_sha'))}): a code change is the "
            f"likely cause")
    if pa.get("git_dirty") != pb.get("git_dirty"):
        hints.append("one run used a dirty working tree — "
                     "uncommitted edits may not be reproducible")
    elif pa.get("git_dirty") and pb.get("git_dirty"):
        hints.append("both runs used dirty working trees — the "
                     "recorded SHA may not describe either")
    if pa.get("schema") != pb.get("schema"):
        hints.append(f"schema versions differ ({pa.get('schema')} vs "
                     f"{pb.get('schema')}): snapshots may not be "
                     f"field-compatible")
    if (pa.get("host") or {}).get("node") != \
            (pb.get("host") or {}).get("node"):
        hints.append("recorded on different hosts — virtual-clock "
                     "metrics are machine-independent, but check "
                     "volatile wall times separately")
    if a.command != b.command:
        hints.append(f"recorded by different commands "
                     f"({a.command} vs {b.command}) — warmup and "
                     f"load conventions differ per entry point")
    if not hints:
        hints.append("same recipe, seed, and tree — any metric drift "
                     "is behavioural (or a determinism bug worth "
                     "chasing)")
    return hints


def _short(sha: Optional[str]) -> str:
    return (sha or "unknown")[:10]


def diff_rows(a: LedgerRow, b: LedgerRow) -> RunDiff:
    """Field-level diff of two rows' metric snapshots."""
    flat_a = flatten_metrics(a.metrics)
    flat_b = flatten_metrics(b.metrics)
    deltas: List[FieldDelta] = []
    unchanged = 0
    for metric in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(metric), flat_b.get(metric)
        if va == vb:
            unchanged += 1
        else:
            deltas.append(FieldDelta(metric=metric, a=va, b=vb))
    deltas.sort(key=lambda d: (-(abs(d.rel) if d.rel is not None
                                 else math.inf), d.metric))
    return RunDiff(a=a, b=b, deltas=deltas, unchanged=unchanged,
                   hints=provenance_hints(a, b))


# ---------------------------------------------------------------------------
# Trend + anomaly detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Anomaly:
    """One trend point flagged by :func:`detect_anomalies`."""

    index: int
    value: float
    median: float
    #: Robust z-score; infinite when the history had zero spread.
    score: float
    #: The noise floor the deviation had to clear.
    floor: float


def _median(values: Sequence[float]) -> float:
    ranked = sorted(values)
    n = len(ranked)
    mid = n // 2
    if n % 2:
        return ranked[mid]
    return (ranked[mid - 1] + ranked[mid]) / 2.0


def rel_tol_for(metric: str) -> float:
    """METRIC_POLICY's relative tolerance, or the default floor."""
    from repro.experiments.bench import METRIC_POLICY

    policy = METRIC_POLICY.get(metric)
    return policy[1] if policy is not None else DEFAULT_REL_TOL


def detect_anomalies(values: Sequence[float],
                     metric: Optional[str] = None,
                     window: int = DEFAULT_WINDOW,
                     z: float = ANOMALY_Z,
                     sems: Optional[Sequence[Optional[float]]] = None,
                     ) -> List[Anomaly]:
    """Rolling median/MAD outliers in a metric history.

    Each value is judged against the previous ``window`` values (its
    *history*; the first :data:`MIN_HISTORY` points are never
    flagged): robust sigma is ``1.4826 x MAD`` and a point is
    anomalous when its deviation from the history median exceeds both
    the noise floor and ``z`` robust sigmas.  The floor reuses the
    bench harness's tolerances — ``max(rel_tol x |median|, NOISE_Z x
    sem)`` with ``rel_tol`` from METRIC_POLICY (:func:`rel_tol_for`)
    and ``sem`` the history's median recorded standard error, when
    ``sems`` is given.  A zero-spread history (identical-seed reruns)
    makes *any* above-floor deviation anomalous — the deterministic
    regression case.
    """
    from repro.experiments.bench import NOISE_Z

    if window < MIN_HISTORY:
        raise ValueError(f"window must be >= {MIN_HISTORY}, "
                         f"got {window}")
    rel_tol = rel_tol_for(metric) if metric is not None \
        else DEFAULT_REL_TOL
    flagged: List[Anomaly] = []
    for index, value in enumerate(values):
        history = list(values[max(0, index - window):index])
        if len(history) < MIN_HISTORY:
            continue
        median = _median(history)
        sigma = MAD_SCALE * _median(
            [abs(h - median) for h in history])
        floor = rel_tol * abs(median)
        if sems is not None:
            known = [s for s in sems[max(0, index - window):index]
                     if s is not None]
            if known:
                floor = max(floor, NOISE_Z * _median(known))
        deviation = abs(value - median)
        if deviation <= floor:
            continue
        score = deviation / sigma if sigma > 0 else math.inf
        if score > z:
            flagged.append(Anomaly(index=index, value=value,
                                   median=median, score=score,
                                   floor=floor))
    return flagged


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """The classic eight-level block sparkline, newest right."""
    if not values:
        return ""
    values = list(values)[-width:]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[3] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)]
                   for v in values)


@dataclass
class TrendReport:
    """One metric's ledger history, rendered as a sparkline."""

    metric: str
    rows: List[LedgerRow]
    values: List[float]
    window: int
    anomalies: List[Anomaly]
    filters: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        scope = ", ".join(f"{k}={v}" for k, v
                          in sorted(self.filters.items()))
        title = f"{self.metric}" + (f" [{scope}]" if scope else "")
        if not self.values:
            return f"{title}: no matching runs carry this metric"
        lines = [
            f"{title}: {len(self.values)} run(s), "
            f"window {self.window}",
            f"  {sparkline(self.values)}",
            f"  min {min(self.values):.4f}  "
            f"median {_median(self.values):.4f}  "
            f"max {max(self.values):.4f}",
        ]
        if self.anomalies:
            lines.append(f"  {len(self.anomalies)} anomalie(s):")
            for a in self.anomalies:
                row = self.rows[a.index]
                score = "inf" if math.isinf(a.score) \
                    else f"{a.score:.1f}"
                lines.append(
                    f"    seq {row.seq} (run {row.run_id}): "
                    f"{a.value:.4f} vs median {a.median:.4f} "
                    f"(robust z {score}, floor {a.floor:.4f})")
        else:
            lines.append("  no anomalies")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rendering helpers for the CLI
# ---------------------------------------------------------------------------


def render_rows(rows: Iterable[LedgerRow]) -> str:
    rows = list(rows)
    if not rows:
        return "(empty ledger)"
    header = (f"{'seq':<5} {'run_id':<16}  {'command':<10} "
              f"{'workload':<9} {'system':<9} {'engine':<7} seed")
    lines = [header, "-" * len(header)]
    lines.extend(row.describe() for row in rows)
    return "\n".join(lines)


def render_row(row: LedgerRow) -> str:
    return json.dumps(row.to_json(), sort_keys=True, indent=2)
