"""Common device interface.

Every device model exposes two operations — ``read`` and ``write`` over a
span of 4 KB blocks — that return the *service latency in seconds* for the
operation.  Devices also keep their own operation counters and accumulated
busy time, which the energy model (:mod:`repro.metrics.energy`) integrates
over.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class DeviceSpec:
    """Base class for device parameter bundles.

    Concrete devices define frozen dataclasses extending this with their
    timing and geometry parameters; freezing them keeps a run's device
    configuration immutable and hashable (handy for experiment grids).
    """

    name: str = "device"


class Device(abc.ABC):
    """Abstract block device addressed in 4 KB logical blocks."""

    def __init__(self, capacity_blocks: int, name: str) -> None:
        if capacity_blocks <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self.name = name
        self.stats = StatsCollector()
        #: Total time (s) the device spent servicing operations.
        self.busy_time = 0.0

    # -- core operations --------------------------------------------------

    @abc.abstractmethod
    def read(self, lba: int, nblocks: int = 1) -> float:
        """Service a read of ``nblocks`` blocks at ``lba``; return seconds."""

    @abc.abstractmethod
    def write(self, lba: int, nblocks: int = 1) -> float:
        """Service a write of ``nblocks`` blocks at ``lba``; return seconds."""

    # -- shared helpers ---------------------------------------------------

    def _check_span(self, lba: int, nblocks: int) -> None:
        """Validate that a request fits inside the device."""
        if nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"span [{lba}, {lba + nblocks}) outside device "
                f"{self.name} of {self.capacity_blocks} blocks")

    def _account(self, kind: str, nblocks: int, latency: float) -> float:
        """Record an operation's counters and busy time; return latency."""
        self.stats.bump(f"{kind}_ops")
        self.stats.bump(f"{kind}_blocks", nblocks)
        self.stats.record_latency(kind, latency)
        self.busy_time += latency
        return latency

    @property
    def read_ops(self) -> int:
        return self.stats.count("read_ops")

    @property
    def write_ops(self) -> int:
        return self.stats.count("write_ops")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"capacity_blocks={self.capacity_blocks})")
