"""Common device interface.

Every device model exposes two operations — ``read`` and ``write`` over a
span of 4 KB blocks — that return the *service latency in seconds* for the
operation.  Devices also keep their own operation counters and accumulated
busy time, which the energy model (:mod:`repro.metrics.energy`) integrates
over.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.metrics import NULL_REGISTRY
from repro.sim.request import BLOCK_SIZE
from repro.sim.stats import StatsCollector
from repro.sim.trace import NULL_TRACER


@dataclass(frozen=True)
class DeviceSpec:
    """Base class for device parameter bundles.

    Concrete devices define frozen dataclasses extending this with their
    timing and geometry parameters; freezing them keeps a run's device
    configuration immutable and hashable (handy for experiment grids).
    """

    name: str = "device"


class Device(abc.ABC):
    """Abstract block device addressed in 4 KB logical blocks."""

    #: Per-request trace sink (see :mod:`repro.sim.trace`).  The shared
    #: null tracer makes every emission site a no-op by default;
    #: :meth:`repro.baselines.base.StorageSystem.set_tracer` swaps in a
    #: recording tracer for observability runs.
    tracer = NULL_TRACER

    def __init__(self, capacity_blocks: int, name: str) -> None:
        if capacity_blocks <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self.name = name
        #: Event-name prefix for emitted trace spans (``{trace_name}_read``
        #: and so on); devices with instance-specific names override it.
        self.trace_name = name
        self.stats = StatsCollector()
        #: Total time (s) the device spent servicing operations.
        self.busy_time = 0.0

    # -- core operations --------------------------------------------------

    @abc.abstractmethod
    def read(self, lba: int, nblocks: int = 1) -> float:
        """Service a read of ``nblocks`` blocks at ``lba``; return seconds."""

    @abc.abstractmethod
    def write(self, lba: int, nblocks: int = 1) -> float:
        """Service a write of ``nblocks`` blocks at ``lba``; return seconds."""

    # -- shared helpers ---------------------------------------------------

    def _check_span(self, lba: int, nblocks: int) -> None:
        """Validate that a request fits inside the device."""
        if nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {nblocks}")
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"span [{lba}, {lba + nblocks}) outside device "
                f"{self.name} of {self.capacity_blocks} blocks")

    def _account(self, kind: str, nblocks: int, latency: float,
                 lba: int = None, outcome: str = None) -> float:
        """Record an operation's counters and busy time; return latency.

        When a recording tracer is attached, also emits one trace span
        (``{trace_name}_{kind}``) carrying the span's block address,
        byte count and optional outcome tag.
        """
        self.stats.bump(f"{kind}_ops")
        self.stats.bump(f"{kind}_blocks", nblocks)
        self.stats.record_latency(kind, latency)
        self.busy_time += latency
        tracer = self.tracer
        if tracer.enabled:
            tracer.device_span(self.trace_name, kind, latency, lba=lba,
                               nbytes=nblocks * BLOCK_SIZE,
                               outcome=outcome)
        return latency

    # -- metrics -----------------------------------------------------------

    def register_metrics(self, registry=NULL_REGISTRY,
                         label: str = None) -> None:
        """Register this device's instruments with ``registry``.

        Counters are callback-backed: they read the existing
        :class:`~repro.sim.stats.StatsCollector` counters at sample
        time, so registration adds nothing to the request path.
        Subclasses extend (call ``super()`` first) with device-specific
        instruments; ``label`` is the ``device`` label value (defaults
        to the device name; :meth:`StorageSystem.set_metrics` dedups
        collisions).
        """
        if not registry.enabled:
            return
        label = label if label is not None else self.name
        stats = self.stats
        registry.counter("device_read_ops_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: stats.count("read_ops"))
        registry.counter("device_write_ops_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: stats.count("write_ops"))
        registry.counter("device_busy_seconds", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: self.busy_time)

    @property
    def read_ops(self) -> int:
        return self.stats.count("read_ops")

    @property
    def write_ops(self) -> int:
        return self.stats.count("write_ops")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"capacity_blocks={self.capacity_blocks})")
