"""Byte-addressable non-volatile RAM (PRAM/PCM) device model.

The paper's related work (Section 2.1) points at Sun et al.'s hybrid
architecture that "leverag[es] phase change random access memory (PRAM)
to implement [the] log region".  I-CASH's delta log is a natural fit
for such a device: appends become sub-microsecond persists instead of
mechanical writes, shrinking the crash-loss window to near zero without
giving up the packing scheme.

The model mirrors 2010-era PCM characteristics: reads near DRAM speed,
writes several times slower, no erase cycle, effectively unlimited
endurance at log-append rates.  It exposes the same block interface as
the other devices, so :class:`~repro.delta.packer.DeltaLog` can sit on
it unchanged — exercised by the ``bench_ablation_log_medium`` ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.base import Device, DeviceSpec
from repro.sim.request import BLOCK_SIZE


@dataclass(frozen=True)
class NVRAMSpec(DeviceSpec):
    """Timing parameters for a phase-change memory region."""

    name: str = "nvram"
    #: Read latency for the first 4 KB block of an access.
    read_s: float = 1e-6
    #: Write (persist) latency for the first 4 KB block.
    write_s: float = 5e-6
    #: Streaming per-block latency for additional blocks in one access.
    streaming_block_s: float = 2e-6


class NVRAM(Device):
    """Byte-addressable persistent memory with block-interface shims."""

    def __init__(self, capacity_blocks: int,
                 spec: Optional[NVRAMSpec] = None) -> None:
        spec = spec if spec is not None else NVRAMSpec()
        super().__init__(capacity_blocks, spec.name)
        self.spec = spec

    def read(self, lba: int, nblocks: int = 1) -> float:
        self._check_span(lba, nblocks)
        latency = (self.spec.read_s
                   + (nblocks - 1) * self.spec.streaming_block_s)
        return self._account("read", nblocks, latency, lba=lba)

    def write(self, lba: int, nblocks: int = 1) -> float:
        self._check_span(lba, nblocks)
        latency = (self.spec.write_s
                   + (nblocks - 1) * self.spec.streaming_block_s)
        return self._account("write", nblocks, latency, lba=lba)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * BLOCK_SIZE
