"""NAND flash SSD model with a page-mapped FTL.

The paper's arguments about SSDs rest on three physical facts this model
reproduces:

1. **Asymmetric operation costs.**  Page reads are tens of microseconds,
   page programs several times slower, and block erases take milliseconds
   (the paper cites 1.5–3 ms).
2. **Out-of-place writes.**  A page cannot be overwritten; the FTL remaps
   the logical block to a fresh page and the stale page becomes garbage.
   When free blocks run low, garbage collection relocates valid pages and
   erases victim blocks, stalling the triggering write — this is why write
   response times on a busy SSD are far worse than its datasheet program
   time, and why the paper's Fusion-io baseline shows 75 µs+ writes.
3. **Limited endurance.**  Every erase wears the block; the model keeps
   per-block erase counters (with greedy + wear-aware victim selection) so
   the lifetime analysis behind Table 6 can be computed, not asserted.

One empirical effect from the paper is also modelled: the *footprint
penalty*.  Section 5.1 reports that randomly accessing a 10 MB region of
the Fusion-io drive is about 15 µs faster per 4 KB than randomly accessing
a 1 GB region (translation-cache and channel effects).  I-CASH only ever
touches its small reference set, so it rides the fast end of that curve;
a pure-SSD system touching its whole data set pays the penalty.  The model
charges reads a penalty that grows with the distinct footprint touched.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.devices.base import Device, DeviceSpec


@dataclass(frozen=True)
class SSDSpec(DeviceSpec):
    """Timing, geometry and policy parameters for the flash SSD."""

    name: str = "ssd"
    #: Pages (4 KB) per erase block.  64 pages = 256 KB blocks.
    pages_per_block: int = 64
    #: Base page read latency (s) — the fast small-footprint case.
    read_base_s: float = 8e-6
    #: Additional read latency (s) at the large-footprint end of the curve
    #: (the paper's ~15 µs gap between 10 MB and 1 GB footprints).
    read_footprint_penalty_s: float = 15e-6
    #: Footprint (in distinct blocks) at which the penalty saturates.
    #: Scaled to this repository's 1/30-ish data-set scaling (the paper's
    #: curve saturates around a 1 GB footprint on the real card).
    footprint_knee_blocks: int = 8192
    #: Page program latency (s).
    program_s: float = 70e-6
    #: Extra latency per additional pipelined page in a multi-page *read*
    #: (channel-striped transfers overlap, so it is below the base
    #: latency; ~6 µs/4 KB matches a ~700 MB/s 2010-era card).
    pipelined_page_s: float = 6e-6
    #: Extra latency per additional page in a multi-page *write*.  Program
    #: bandwidth is far below read bandwidth (~200 MB/s), which is why the
    #: paper's Fusion-io baseline takes milliseconds on Hadoop's 99 KB
    #: writes.
    pipelined_program_s: float = 20e-6
    #: Block erase latency (s); the paper cites 1.5–3 ms.
    erase_s: float = 2e-3
    #: Physical over-provisioning as a fraction of logical capacity.
    #: Enterprise SLC cards like the paper's ioDrive carried generous
    #: spare area, which keeps garbage-collection stalls moderate.
    overprovision: float = 0.25
    #: Garbage collection starts when free blocks drop to this fraction of
    #: all physical blocks.
    gc_threshold: float = 0.05
    #: Erase-count spread that triggers wear-leveling victim selection.
    wear_delta: int = 16
    #: Endurance: erases per block before it is worn out (SLC ≈ 100 000,
    #: MLC ≈ 10 000 per the paper).
    endurance_cycles: int = 100_000


class _FlashBlock:
    """One physical erase block: page → lba mapping plus wear state."""

    __slots__ = ("pages", "valid_count", "write_ptr", "erase_count")

    def __init__(self, pages_per_block: int) -> None:
        # pages[i] is the lba stored in page i, or None when invalid/free.
        self.pages: List[Optional[int]] = [None] * pages_per_block
        self.valid_count = 0
        self.write_ptr = 0
        self.erase_count = 0

    @property
    def is_full(self) -> bool:
        return self.write_ptr >= len(self.pages)

    def erase(self) -> None:
        self.pages = [None] * len(self.pages)
        self.valid_count = 0
        self.write_ptr = 0
        self.erase_count += 1


class FlashSSD(Device):
    """Page-mapped NAND SSD with greedy, wear-aware garbage collection."""

    def __init__(self, capacity_blocks: int,
                 spec: Optional[SSDSpec] = None) -> None:
        spec = spec if spec is not None else SSDSpec()
        super().__init__(capacity_blocks, spec.name)
        self.spec = spec
        n_logical_flash_blocks = math.ceil(
            capacity_blocks / spec.pages_per_block)
        n_physical = math.ceil(
            n_logical_flash_blocks * (1.0 + spec.overprovision)) + 2
        self._blocks = [_FlashBlock(spec.pages_per_block)
                        for _ in range(n_physical)]
        self._free: Deque[int] = deque(range(1, n_physical))
        self._active = 0
        # lba -> (physical block index, page index)
        self._map: Dict[int, Tuple[int, int]] = {}
        # Distinct logical blocks ever touched: drives the footprint penalty.
        self._footprint: set = set()
        self._gc_low_water = max(2, int(spec.gc_threshold * n_physical))

    # -- footprint penalty --------------------------------------------------

    def _read_latency(self) -> float:
        frac = min(1.0, len(self._footprint) / self.spec.footprint_knee_blocks)
        return self.spec.read_base_s + frac * self.spec.read_footprint_penalty_s

    # -- reads ---------------------------------------------------------------

    def read(self, lba: int, nblocks: int = 1) -> float:
        self._check_span(lba, nblocks)
        for block in range(lba, lba + nblocks):
            self._footprint.add(block)
        # First page pays the full latency, pipelined pages the reduced one.
        latency = (self._read_latency()
                   + (nblocks - 1) * self.spec.pipelined_page_s)
        return self._account("read", nblocks, latency, lba=lba)

    # -- writes ---------------------------------------------------------------

    def write(self, lba: int, nblocks: int = 1) -> float:
        self._check_span(lba, nblocks)
        latency = 0.0
        for block in range(lba, lba + nblocks):
            self._footprint.add(block)
            latency += self._program_page(block)
        # Pipelining: charge one full program, the rest at the (program-
        # bandwidth-limited) streaming rate.
        if nblocks > 1:
            latency = (latency - (nblocks - 1) * self.spec.program_s
                       + (nblocks - 1) * self.spec.pipelined_program_s)
        return self._account("write", nblocks, latency, lba=lba)

    def read_followup(self, lba: int) -> float:
        """A read issued back-to-back with a preceding read of the same
        host request: pays the pipelined per-page rate only.

        Lets a host-side controller (I-CASH reading several reference
        blocks for one multi-block request) get the same channel overlap
        a native multi-page :meth:`read` enjoys.
        """
        self._check_span(lba, 1)
        self._footprint.add(lba)
        return self._account("read", 1, self.spec.pipelined_page_s,
                             lba=lba, outcome="pipelined")

    def trim(self, lba: int, nblocks: int = 1) -> None:
        """Invalidate logical blocks without writing (cache evictions)."""
        self._check_span(lba, nblocks)
        for block in range(lba, lba + nblocks):
            self._invalidate(block)
            self._footprint.discard(block)
        self.stats.bump("trim_ops")

    # -- FTL internals ---------------------------------------------------------

    def _invalidate(self, lba: int) -> None:
        loc = self._map.pop(lba, None)
        if loc is None:
            return
        block_idx, page_idx = loc
        block = self._blocks[block_idx]
        block.pages[page_idx] = None
        block.valid_count -= 1

    def _place_page(self, lba: int) -> None:
        """Write ``lba``'s mapping into the active block's next free page.

        The caller guarantees the active block has room.
        """
        active = self._blocks[self._active]
        page_idx = active.write_ptr
        active.pages[page_idx] = lba
        active.write_ptr += 1
        active.valid_count += 1
        self._map[lba] = (self._active, page_idx)

    def _program_page(self, lba: int) -> float:
        """Program ``lba`` into the active block; returns latency incl. GC."""
        self._invalidate(lba)
        gc_latency = 0.0
        if self._blocks[self._active].is_full:
            gc_latency = self._advance_active_block()
        self._place_page(lba)
        return self.spec.program_s + gc_latency

    def _advance_active_block(self) -> float:
        """Open a fresh active block, garbage collecting if necessary.

        GC runs *iteratively* here — never from inside a relocation — so a
        collection can never erase a victim another collection is still
        walking.
        """
        gc_latency = 0.0
        while len(self._free) <= self._gc_low_water:
            gained = self._garbage_collect()
            gc_latency += gained
            if gained == 0.0:  # pragma: no cover - defensive
                break
        if not self._free:  # pragma: no cover - GC always frees >= 1 block
            raise RuntimeError("SSD out of free blocks despite GC")
        self._active = self._free.popleft()
        return gc_latency

    def _pick_victim(self) -> int:
        """Greedy victim choice with a wear-leveling override.

        Normally the block with the fewest valid pages is cheapest to
        reclaim.  When wear spread across blocks exceeds ``wear_delta``,
        prefer the least-worn candidate among the emptiest quartile so cold
        blocks get recycled too (static wear leveling).
        """
        candidates = [i for i, b in enumerate(self._blocks)
                      if i != self._active and i not in self._free
                      and b.valid_count < len(b.pages)]
        if not candidates:
            candidates = [i for i in range(len(self._blocks))
                          if i != self._active and i not in self._free]
        erases = [self._blocks[i].erase_count for i in candidates]
        if max(erases) - min(erases) > self.spec.wear_delta:
            candidates.sort(key=lambda i: (self._blocks[i].erase_count,
                                           self._blocks[i].valid_count))
            self.stats.bump("wear_level_picks")
            return candidates[0]
        return min(candidates, key=lambda i: self._blocks[i].valid_count)

    def _garbage_collect(self) -> float:
        """Reclaim one block; returns the time the triggering write stalls.

        Valid pages relocate into the active block, pulling fresh blocks
        straight off the free list when it fills — relocation never
        triggers a nested collection.
        """
        victim_idx = self._pick_victim()
        victim = self._blocks[victim_idx]
        latency = 0.0
        relocated = [lba for lba in victim.pages if lba is not None]
        victim.pages = [None] * len(victim.pages)
        victim.valid_count = 0
        for lba in relocated:
            # Relocation: read the valid page and program it elsewhere.
            latency += self.spec.read_base_s
            if self._blocks[self._active].is_full:
                if not self._free:  # pragma: no cover - needs 0 OP space
                    raise RuntimeError(
                        "SSD wedged: no free block to relocate into")
                self._active = self._free.popleft()
            self._place_page(lba)
            latency += self.spec.program_s
            self.stats.bump("gc_page_moves")
        victim.erase()
        latency += self.spec.erase_s
        self._free.append(victim_idx)
        self.stats.bump("gc_erases")
        tracer = self.tracer
        if tracer.enabled:
            # The stall is already inside the triggering write's span, so
            # this is a device-internal mark, not a timeline-advancing
            # span — breakdowns must not double-count it.
            tracer.mark("gc", latency,
                        outcome=f"moved={len(relocated)}")
        return latency

    # -- metrics ------------------------------------------------------------

    def register_metrics(self, registry, label: str = None) -> None:
        """Flash-specific instruments on top of the generic device set:
        programs/erases/GC (the endurance story behind Table 6), wear
        spread and write amplification."""
        super().register_metrics(registry, label=label)
        if not registry.enabled:
            return
        label = label if label is not None else self.name
        stats = self.stats
        registry.counter("ssd_program_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: stats.count("write_blocks")
                    + stats.count("gc_page_moves"))
        registry.counter("ssd_erase_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: self.total_erases)
        registry.counter("ssd_gc_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: stats.count("gc_erases"))
        registry.gauge("ssd_wear_spread", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: max(b.erase_count for b in self._blocks)
                    - min(b.erase_count for b in self._blocks))
        registry.gauge("ssd_write_amplification", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: self.write_amplification)

    # -- wear reporting -----------------------------------------------------

    def erase_counts(self) -> List[int]:
        """Per-physical-block erase counts (for wear/endurance analysis)."""
        return [b.erase_count for b in self._blocks]

    @property
    def total_erases(self) -> int:
        return sum(b.erase_count for b in self._blocks)

    @property
    def write_amplification(self) -> float:
        """(host + GC page programs) / host page programs."""
        host = self.stats.count("write_blocks")
        moves = self.stats.count("gc_page_moves")
        if host == 0:
            return 1.0
        return (host + moves) / host

    @property
    def footprint_blocks(self) -> int:
        """Distinct logical blocks ever accessed."""
        return len(self._footprint)

    # -- failure injection --------------------------------------------------

    def wear_out(self, block_indices) -> int:
        """Force physical blocks to the erase-count endurance limit.

        Fault injection (:mod:`repro.sim.faults` ``ssd_wearout``):
        the blocks are not removed from service — the wear-levelling GC
        already steers away from high-erase victims, and the wear
        report / `ssd_erase_spread` gauge make the damage observable.
        Returns how many blocks were newly driven to the limit.
        """
        limit = self.spec.endurance_cycles
        worn = 0
        for index in block_indices:
            block = self._blocks[index]
            if block.erase_count < limit:
                block.erase_count = limit
                worn += 1
        if worn:
            self.stats.bump("worn_blocks", worn)
        return worn

    @property
    def worn_blocks(self) -> int:
        """Physical blocks at or beyond the endurance limit."""
        limit = self.spec.endurance_cycles
        return sum(1 for b in self._blocks if b.erase_count >= limit)
