"""RAID0 striping across multiple hard disk drives.

The paper's second baseline is Linux MD RAID0 over four SATA disks.
RAID0 stripes consecutive chunks round-robin across member disks, so a
large sequential request is serviced in parallel (latency = slowest
member) while a small random request still pays one full mechanical
access on a single disk — exactly why the paper observes RAID0 doing
poorly on small random transaction workloads (Section 5.1, TPC-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devices.base import Device
from repro.devices.hdd import HardDiskDrive, HDDSpec


class RAID0Array(Device):
    """Stripe a logical block space across N identical HDDs.

    Addressing: chunk ``c`` (of ``chunk_blocks`` logical blocks) lives on
    disk ``c % ndisks`` at chunk offset ``c // ndisks``.
    """

    def __init__(self, capacity_blocks: int, ndisks: int = 4,
                 chunk_blocks: int = 16,
                 hdd_spec: Optional[HDDSpec] = None) -> None:
        if ndisks < 1:
            raise ValueError(f"need at least one disk, got {ndisks}")
        if chunk_blocks < 1:
            raise ValueError(f"chunk must be >= 1 block, got {chunk_blocks}")
        super().__init__(capacity_blocks, f"raid0x{ndisks}")
        # One stable trace-event prefix regardless of stripe width.
        self.trace_name = "raid0"
        self.ndisks = ndisks
        self.chunk_blocks = chunk_blocks
        per_disk = -(-capacity_blocks // ndisks) + chunk_blocks
        spec = hdd_spec if hdd_spec is not None else HDDSpec()
        self.disks: List[HardDiskDrive] = [
            HardDiskDrive(per_disk, spec) for _ in range(ndisks)]

    def _split(self, lba: int, nblocks: int) -> Dict[int, List[tuple]]:
        """Map a logical span to per-disk (physical lba, nblocks) extents."""
        per_disk: Dict[int, List[tuple]] = {}
        block = lba
        remaining = nblocks
        while remaining > 0:
            chunk = block // self.chunk_blocks
            offset_in_chunk = block % self.chunk_blocks
            disk = chunk % self.ndisks
            disk_chunk = chunk // self.ndisks
            take = min(remaining, self.chunk_blocks - offset_in_chunk)
            phys = disk_chunk * self.chunk_blocks + offset_in_chunk
            per_disk.setdefault(disk, []).append((phys, take))
            block += take
            remaining -= take
        return per_disk

    def _service(self, kind: str, lba: int, nblocks: int) -> float:
        self._check_span(lba, nblocks)
        per_disk = self._split(lba, nblocks)
        # Member disks work in parallel; the request completes when the
        # slowest member finishes its extents (serviced in order per disk).
        slowest = 0.0
        for disk_idx, extents in per_disk.items():
            disk = self.disks[disk_idx]
            disk_time = 0.0
            for phys, take in extents:
                if kind == "read":
                    disk_time += disk.read(phys, take)
                else:
                    disk_time += disk.write(phys, take)
            slowest = max(slowest, disk_time)
        if len(per_disk) > 1:
            self.stats.bump("parallel_requests")
        return self._account(kind, nblocks, slowest, lba=lba,
                             outcome=f"disks={len(per_disk)}")

    def read(self, lba: int, nblocks: int = 1) -> float:
        return self._service("read", lba, nblocks)

    def write(self, lba: int, nblocks: int = 1) -> float:
        return self._service("write", lba, nblocks)

    @property
    def member_busy_time(self) -> float:
        """Summed busy time across member disks (energy accounting)."""
        return sum(d.busy_time for d in self.disks)
