"""Mechanical hard disk drive model.

The paper's central performance argument is the gap between an HDD's
mechanical random access (roughly ten milliseconds of seek plus rotation)
and everything semiconductor-based (tens of microseconds).  I-CASH
exploits the one thing HDDs do well — sequential log appends — so this
model distinguishes three access patterns:

* **sequential**: the request starts exactly where the previous one ended —
  pure media transfer, no seek, no rotational delay;
* **near**: a short hop on the same region — track-to-track seek plus
  average rotation;
* **random**: a distance-dependent seek (square-root seek curve, the
  standard analytic disk model) plus average rotation plus transfer.

Defaults approximate the paper's 7200 RPM Seagate SATA drive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.devices.base import Device, DeviceSpec
from repro.sim.request import BLOCK_SIZE


@dataclass(frozen=True)
class HDDSpec(DeviceSpec):
    """Timing and geometry parameters for a hard disk drive."""

    name: str = "hdd"
    #: Rotational speed; 7200 RPM matches the prototype's SATA drives.
    rpm: float = 7200.0
    #: Minimum (track-to-track) seek time in seconds.
    min_seek_s: float = 0.7e-3
    #: Full-stroke seek time in seconds.
    max_seek_s: float = 14.0e-3
    #: Sustained media transfer rate in bytes per second.
    transfer_bytes_per_s: float = 100e6
    #: Span (in blocks) under which a hop counts as "near" rather than a
    #: full random seek.
    near_span_blocks: int = 256

    @property
    def avg_rotation_s(self) -> float:
        """Average rotational latency: half a revolution."""
        return 60.0 / self.rpm / 2.0

    def seek_time(self, distance_blocks: int, capacity_blocks: int) -> float:
        """Distance-dependent seek time via the square-root seek curve."""
        if distance_blocks <= 0:
            return 0.0
        frac = min(1.0, distance_blocks / capacity_blocks)
        return (self.min_seek_s
                + (self.max_seek_s - self.min_seek_s) * math.sqrt(frac))

    def transfer_time(self, nblocks: int) -> float:
        return nblocks * BLOCK_SIZE / self.transfer_bytes_per_s


class HardDiskDrive(Device):
    """One mechanical disk with head-position tracking."""

    def __init__(self, capacity_blocks: int,
                 spec: Optional[HDDSpec] = None) -> None:
        spec = spec if spec is not None else HDDSpec()
        super().__init__(capacity_blocks, spec.name)
        self.spec = spec
        #: Block address one past the end of the previous request, i.e.
        #: where the head currently sits.  Starts parked at block 0.
        self._head = 0

    # -- latency model ----------------------------------------------------

    def _positioning_time(self, lba: int) -> "tuple[float, str]":
        """Seek + rotation cost of moving the head to ``lba``, plus the
        access-pattern classification (``sequential``/``near``/``random``)."""
        distance = abs(lba - self._head)
        if distance == 0:
            # Perfectly sequential: the head is already there and the next
            # sector is about to pass under it.
            return 0.0, "sequential"
        if distance <= self.spec.near_span_blocks:
            # Short hop: track-to-track seek, still pay average rotation.
            self.stats.bump("near_accesses")
            return self.spec.min_seek_s + self.spec.avg_rotation_s, "near"
        self.stats.bump("random_accesses")
        seek = self.spec.seek_time(distance, self.capacity_blocks)
        return seek + self.spec.avg_rotation_s, "random"

    def _service(self, kind: str, lba: int, nblocks: int) -> float:
        self._check_span(lba, nblocks)
        positioning, pattern = self._positioning_time(lba)
        if positioning == 0.0:
            self.stats.bump("sequential_accesses")
        latency = positioning + self.spec.transfer_time(nblocks)
        self._head = lba + nblocks
        return self._account(kind, nblocks, latency, lba=lba,
                             outcome=pattern)

    def read(self, lba: int, nblocks: int = 1) -> float:
        return self._service("read", lba, nblocks)

    def write(self, lba: int, nblocks: int = 1) -> float:
        return self._service("write", lba, nblocks)

    @property
    def head_position(self) -> int:
        """Current head position in blocks (exposed for tests)."""
        return self._head

    # -- metrics ------------------------------------------------------------

    def register_metrics(self, registry, label: str = None) -> None:
        """Mechanical-pattern instruments on top of the generic set:
        how often the head had to move (seek = near + random) versus
        rode an existing sequential stream — the quantity I-CASH's log
        layout exists to minimise."""
        super().register_metrics(registry, label=label)
        if not registry.enabled:
            return
        label = label if label is not None else self.name
        stats = self.stats

        def seeks() -> int:
            return (stats.count("near_accesses")
                    + stats.count("random_accesses"))

        def seek_ratio() -> float:
            total = seeks() + stats.count("sequential_accesses")
            return seeks() / total if total else 0.0

        registry.counter("hdd_seek_total", ("device",)) \
            .labels(device=label).set_fn(seeks)
        registry.counter("hdd_sequential_total", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: stats.count("sequential_accesses"))
        registry.gauge("hdd_seek_ratio", ("device",)) \
            .labels(device=label).set_fn(seek_ratio)
