"""DRAM buffer model.

I-CASH keeps active deltas and data blocks in a bounded RAM buffer (the
prototype dedicates a slice of system RAM, e.g. 32–256 MB depending on the
benchmark).  DRAM access is effectively free next to device latencies, but
it is not *zero*: copying a 4 KB block still costs on the order of a
microsecond, and that cost is visible in the paper's 7 µs I-CASH write
latency.  The buffer therefore models a small per-block copy cost and —
more importantly — enforces a byte budget that the I-CASH replacement
policies must operate within.
"""

from __future__ import annotations

from repro.sim.request import BLOCK_SIZE
from repro.sim.stats import StatsCollector
from repro.sim.trace import NULL_TRACER


class DRAMBuffer:
    """A byte-budgeted RAM pool with explicit reserve/release accounting."""

    #: Time to move one 4 KB block through DRAM (copy + bookkeeping).
    BLOCK_COPY_S = 1e-6

    #: Trace sink; emits ``dram_access`` spans when a recording tracer
    #: is attached (instances may carry descriptive names like
    #: ``icash-ram``, so the event prefix is pinned here).
    tracer = NULL_TRACER
    trace_name = "dram"

    def __init__(self, capacity_bytes: int, name: str = "dram") -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.used_bytes = 0
        self.stats = StatsCollector()
        self.busy_time = 0.0

    # -- space accounting ---------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def can_fit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def reserve(self, nbytes: int) -> None:
        """Claim ``nbytes``; raises ``MemoryError`` when over budget.

        Callers are expected to evict (via their replacement policy) until
        :meth:`can_fit` holds before reserving.
        """
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes: {nbytes}")
        if nbytes > self.free_bytes:
            raise MemoryError(
                f"{self.name}: reserve of {nbytes} B exceeds free "
                f"{self.free_bytes} B")
        self.used_bytes += nbytes
        self.stats.bump("reservations")

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes: {nbytes}")
        if nbytes > self.used_bytes:
            raise ValueError(
                f"{self.name}: releasing {nbytes} B but only "
                f"{self.used_bytes} B are in use")
        self.used_bytes -= nbytes
        self.stats.bump("releases")

    # -- metrics --------------------------------------------------------------

    def register_metrics(self, registry, label: str = None) -> None:
        """DRAM exposes only busy time; space accounting is reported by
        the controller's fill gauges (which know the budget split)."""
        if not registry.enabled:
            return
        label = label if label is not None else self.name
        registry.counter("device_busy_seconds", ("device",)) \
            .labels(device=label) \
            .set_fn(lambda: self.busy_time)

    # -- timed accesses -------------------------------------------------------

    def access(self, nbytes: int = BLOCK_SIZE) -> float:
        """Latency of touching ``nbytes`` of buffered data."""
        latency = self.BLOCK_COPY_S * max(1, -(-nbytes // BLOCK_SIZE))
        self.stats.bump("accesses")
        self.busy_time += latency
        tracer = self.tracer
        if tracer.enabled:
            tracer.device_span(self.trace_name, "access", latency,
                               nbytes=nbytes)
        return latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DRAMBuffer(name={self.name!r}, used={self.used_bytes}, "
                f"capacity={self.capacity_bytes})")
