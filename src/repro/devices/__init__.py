"""Storage device models.

Four device models underpin every storage architecture in the repository:

* :class:`~repro.devices.hdd.HardDiskDrive` — seek/rotation/transfer
  mechanical model with sequential-access detection.
* :class:`~repro.devices.ssd.FlashSSD` — NAND flash with a page-mapped FTL,
  greedy garbage collection and wear leveling; tracks per-block erase
  counts for the paper's SSD-lifetime analysis (Table 6).
* :class:`~repro.devices.raid.RAID0Array` — striping across N HDDs, the
  paper's second baseline.
* :class:`~repro.devices.dram.DRAMBuffer` — byte-budgeted RAM buffer used
  for the I-CASH delta cache and baseline caches.
"""

from repro.devices.base import Device, DeviceSpec
from repro.devices.dram import DRAMBuffer
from repro.devices.hdd import HardDiskDrive, HDDSpec
from repro.devices.nvram import NVRAM, NVRAMSpec
from repro.devices.raid import RAID0Array
from repro.devices.ssd import FlashSSD, SSDSpec

__all__ = [
    "DRAMBuffer",
    "Device",
    "DeviceSpec",
    "FlashSSD",
    "HDDSpec",
    "HardDiskDrive",
    "NVRAM",
    "NVRAMSpec",
    "RAID0Array",
    "SSDSpec",
]
