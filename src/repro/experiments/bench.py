"""Benchmark regression harness (``repro bench``).

Runs a canonical suite — one figure workload per benchmark family at
fixed seeds, under both wall-clock engines — and emits a
schema-versioned ``BENCH_<n>.json`` snapshot of everything a PR could
regress: throughput, latency percentiles, SSD-write counts and the
critical-path attribution table from :mod:`repro.sim.profile`.

Because the simulation runs on a deterministic virtual clock, the
snapshots are machine independent: the same tree produces the same
numbers on a laptop and in CI.  ``compare`` therefore treats any
out-of-tolerance delta against a committed baseline as a real change
in modelled behaviour, not measurement noise.  Tolerances are still
noise-aware — a PR that legitimately perturbs request interleaving
(e.g. a new background quantum) shifts latency means by a little, so
each latency tolerance is ``max(rel_tol x baseline, z x sem)`` with the
standard error taken from the baseline's recorded sample variance
(:attr:`repro.sim.stats.LatencyStats.std`).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.runner import RunResult, run_benchmark
from repro.experiments.systems import make_system
from repro.sim.profile import Profiler
from repro.workloads import ALL_WORKLOADS

#: Version of the ``BENCH_<n>.json`` layout (documented in
#: docs/OBSERVABILITY.md, doc-parity tested).  Bump on any breaking
#: change to the keys below.  v2 added ``host_wall_s`` per case — real
#: host seconds the run cost, recorded for trend-watching only and
#: never compared (it is machine-dependent noise; every metric in
#: :data:`METRIC_POLICY` stays virtual-clock deterministic).  v3 adds
#: ``ledger_run_id`` per case — the run's row in the persistent run
#: ledger (docs/LEDGER.md) when one was recording, else null; like
#: ``host_wall_s`` it is provenance, never a compared metric.
BENCH_SCHEMA_VERSION = 3

_WORKLOADS = {cls.name: cls for cls in ALL_WORKLOADS}


@dataclass(frozen=True)
class BenchCase:
    """One deterministic suite entry."""

    case: str
    workload: str
    system: str
    engine: str
    seed: int
    n_requests: int
    scale: float = 1.0


def _cases(workloads: Iterable[str], engines: Iterable[str],
           system: str, seed: int, n_requests: int,
           scale: float) -> Tuple[BenchCase, ...]:
    return tuple(
        BenchCase(case=f"{wl}-{system}-{engine}", workload=wl,
                  system=system, engine=engine, seed=seed,
                  n_requests=n_requests, scale=scale)
        for wl in workloads for engine in engines)


#: Smoke suite for every push: the paper's headline workload (SysBench,
#: Figures 6-8) on I-CASH under both engines.
QUICK_SUITE: Tuple[BenchCase, ...] = _cases(
    ("sysbench",), ("legacy", "event"), system="icash", seed=2011,
    n_requests=600, scale=0.5)

#: Full suite: one workload per benchmark family (Table 4) x both
#: engines, all on I-CASH at the paper's seed.
FULL_SUITE: Tuple[BenchCase, ...] = _cases(
    ("sysbench", "hadoop", "tpcc", "loadsim", "specsfs", "rubis"),
    ("legacy", "event"), system="icash", seed=2011, n_requests=1200,
    scale=0.5)

#: Regression policy per metric: (direction, relative tolerance,
#: key of the noise entry sizing the statistical tolerance, or None).
#: ``direction`` is the *good* direction — "higher" for throughput,
#: "lower" for latency and wear.
METRIC_POLICY: Dict[str, Tuple[str, float, Optional[str]]] = {
    "transactions_per_s": ("higher", 0.05, None),
    "requests_per_s": ("higher", 0.05, None),
    "read_mean_us": ("lower", 0.05, "read"),
    "read_p99_us": ("lower", 0.10, "read"),
    "write_mean_us": ("lower", 0.05, "write"),
    "write_p99_us": ("lower", 0.10, "write"),
    "ssd_write_ops": ("lower", 0.02, None),
    "ssd_write_blocks": ("lower", 0.02, None),
}

#: z-score for the noise-aware part of a latency tolerance.
NOISE_Z = 3.0


def run_case(case: BenchCase) -> RunResult:
    """Run one suite entry with the profiler attached."""
    cls = _WORKLOADS[case.workload]
    workload = cls(scale=case.scale, n_requests=case.n_requests,
                   seed=case.seed)
    system = make_system(case.system, workload)
    return run_benchmark(workload, system, engine=case.engine,
                         profiler=Profiler())


def case_spec(case: BenchCase):
    """The :class:`~repro.experiments.parallel.RunSpec` equivalent of
    :func:`run_case` — same workload construction, engine, and attached
    profiler, so the result is bit-identical wherever it executes."""
    from repro.experiments.parallel import RunSpec

    return RunSpec(workload=case.workload, system=case.system,
                   engine=case.engine, n_requests=case.n_requests,
                   seed=case.seed, scale=case.scale, profile=True)


def case_record(case: BenchCase, result: RunResult,
                host_wall_s: Optional[float] = None,
                ledger_run_id: Optional[str] = None
                ) -> Dict[str, object]:
    """The JSON-ready snapshot of one case (see docs/OBSERVABILITY.md).

    ``host_wall_s`` (schema v2) is the real host seconds the run took
    where it executed; it rides along for trend analysis but is *not* a
    compared metric — see :func:`compare`.  ``ledger_run_id`` (schema
    v3) links the case to its row in the persistent run ledger
    (docs/LEDGER.md) — provenance, likewise never compared.
    """
    metrics = {name: getattr(result, name) for name in METRIC_POLICY}
    noise: Dict[str, Dict[str, float]] = {}
    table = result.attribution
    if table is not None:
        for op in table.ops:
            stats = table.latency(op)
            noise[op] = {"std_us": stats.std_us, "n": stats.count}
    return {
        "case": case.case,
        "workload": case.workload,
        "system": case.system,
        "engine": case.engine,
        "seed": case.seed,
        "n_requests": case.n_requests,
        "scale": case.scale,
        "n_measured": result.n_measured,
        "host_wall_s": host_wall_s,
        "ledger_run_id": ledger_run_id,
        "metrics": metrics,
        "noise": noise,
        "attribution": table.to_rows() if table is not None else [],
    }


def run_suite(quick: bool = False, progress=None,
              jobs: int = 1, ledger=None,
              seed: Optional[int] = None) -> Dict[str, object]:
    """Run the suite and return the full ``BENCH`` document.

    ``jobs > 1`` fans the (independent, deterministic) cases out across
    worker processes; every field except the machine-dependent
    ``host_wall_s`` is byte-identical to a serial run.

    ``ledger`` (a :class:`repro.ledger.LedgerWriter`) records every
    case into the persistent run store — always in suite order, in
    *this* process, so ledger contents too are independent of the job
    count — and each case record embeds its ``ledger_run_id``.

    ``seed`` replaces each case's fixed seed — for seed-sensitivity
    probes feeding ``repro ledger diff``, *not* for ``--compare``
    (a non-default seed moves every metric off the committed baseline).
    """
    from repro.experiments.parallel import run_specs

    suite = QUICK_SUITE if quick else FULL_SUITE
    if seed is not None:
        suite = tuple(replace(case, seed=seed) for case in suite)
    if progress is not None:
        case_iter = iter(suite)

        def spec_progress(_spec):
            progress(next(case_iter))
    else:
        spec_progress = None
    outcomes = run_specs([case_spec(case) for case in suite], jobs=jobs,
                         progress=spec_progress)
    recording = ledger is not None and getattr(ledger, "enabled", False)
    suite_name = "quick" if quick else "full"
    cases = []
    for case, outcome in zip(suite, outcomes):
        run_id = None
        if recording:
            run_id = ledger.record(
                outcome.result, command="bench", spec=case_spec(case),
                extra={"case": case.case, "suite": suite_name},
                host_wall_s=outcome.host_wall_s)
        cases.append(case_record(case, outcome.result,
                                 host_wall_s=outcome.host_wall_s,
                                 ledger_run_id=run_id))
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite_name,
        "cases": cases,
    }


def next_bench_path(out_dir: str) -> str:
    """First free ``BENCH_<n>.json`` in ``out_dir``, counting from 1."""
    n = 1
    while os.path.exists(os.path.join(out_dir, f"BENCH_{n}.json")):
        n += 1
    return os.path.join(out_dir, f"BENCH_{n}.json")


def write_bench(document: Dict[str, object], out_dir: str = ".") -> str:
    """Write the document to the next free ``BENCH_<n>.json``."""
    os.makedirs(out_dir, exist_ok=True)
    path = next_bench_path(out_dir)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, object]:
    """Read a ``BENCH_<n>.json``, validating the schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {version!r} unsupported "
            f"(expected {BENCH_SCHEMA_VERSION})")
    return document


@dataclass(frozen=True)
class Delta:
    """One metric compared across two bench documents."""

    case: str
    metric: str
    baseline: float
    current: float
    tolerance: float
    #: Positive when the current value moved in the *bad* direction.
    worsening: float

    @property
    def regressed(self) -> bool:
        return self.worsening > self.tolerance

    def render(self) -> str:
        flag = "REGRESSION" if self.regressed else "ok"
        return (f"{self.case:<28} {self.metric:<20} "
                f"{self.baseline:>12.3f} -> {self.current:>12.3f} "
                f"(tol {self.tolerance:.3f})  {flag}")


def _tolerance(metric: str, base_value: float,
               noise: Dict[str, Dict[str, float]]) -> float:
    direction, rel_tol, noise_key = METRIC_POLICY[metric]
    tol = rel_tol * abs(base_value)
    if noise_key and noise_key in noise:
        entry = noise[noise_key]
        n = max(1.0, float(entry.get("n", 1.0)))
        sem = float(entry.get("std_us", 0.0)) / math.sqrt(n)
        tol = max(tol, NOISE_Z * sem)
    return tol


def compare(baseline: Dict[str, object],
            current: Dict[str, object]) -> List[Delta]:
    """Compare two bench documents case by case.

    Cases present in only one document are skipped (suites may grow);
    within a shared case every metric in :data:`METRIC_POLICY` is
    checked in its good direction against the noise-aware tolerance.
    Fields outside the policy — notably the machine-dependent
    ``host_wall_s`` — are never compared.
    """
    base_cases = {c["case"]: c for c in baseline["cases"]}
    deltas: List[Delta] = []
    for record in current["cases"]:
        base = base_cases.get(record["case"])
        if base is None:
            continue
        base_metrics = base["metrics"]
        cur_metrics = record["metrics"]
        base_noise = base.get("noise", {})
        for metric, (direction, _rel, _noise) in METRIC_POLICY.items():
            if metric not in base_metrics or metric not in cur_metrics:
                continue
            b = float(base_metrics[metric])
            c = float(cur_metrics[metric])
            worsening = (b - c) if direction == "higher" else (c - b)
            deltas.append(Delta(
                case=record["case"], metric=metric, baseline=b,
                current=c,
                tolerance=_tolerance(metric, b, base_noise),
                worsening=worsening))
    return deltas


def regressions(deltas: Iterable[Delta]) -> List[Delta]:
    return [d for d in deltas if d.regressed]


def render_compare(deltas: List[Delta],
                   verbose: bool = False) -> str:
    """Human-readable comparison report."""
    bad = regressions(deltas)
    lines: List[str] = []
    shown = deltas if verbose else bad
    if shown:
        header = (f"{'case':<28} {'metric':<20} "
                  f"{'baseline':>12}    {'current':>12}")
        lines.append(header)
        lines.append("-" * len(header))
        lines.extend(d.render() for d in shown)
    lines.append(f"{len(deltas)} metrics compared, "
                 f"{len(bad)} regression(s)")
    return "\n".join(lines)
