"""Latency-source breakdown for a completed run.

Figure 7's bars tell you *how fast*; this module tells you *why* — which
path served the reads and writes: RAM data hits, RAM delta
reconstructions, SSD reference reads, HDD log fetches, HDD data misses.
It works from the controller's own counters, so it is exact, and it
renders the paper's Section 5.1 narrative ("I-CASH accesses only 10 MB
of SSD very frequently with mostly read I/Os") as numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.controller import ICASHController

#: (counter, human label) pairs that classify where reads were served.
READ_SOURCES: Sequence[Tuple[str, str]] = (
    ("ram_data_hits", "RAM data block"),
    ("ram_delta_hits", "SSD reference + RAM delta"),
    ("ssd_ref_direct_reads", "SSD reference read"),
    ("ssd_spill_reads", "SSD spilled block"),
    ("shadowed_ref_reads", "HDD (shadowed reference)"),
    ("log_delta_fetches", "HDD delta-log fetch"),
    ("hdd_data_reads", "HDD data region miss"),
)

#: Counters classifying the write path.
WRITE_SOURCES: Sequence[Tuple[str, str]] = (
    ("delta_writes", "delta buffered in RAM"),
    ("reference_delta_writes", "reference self-delta in RAM"),
    ("independent_writes", "data block in RAM"),
    ("delta_spills", "spill to SSD"),
    ("spilled_write_through", "SSD write-through"),
    ("reference_refreshes", "SSD reference refresh"),
    ("reference_shadowed", "reference shadowed to HDD path"),
    ("hdd_write_through", "HDD write-through"),
)


@dataclass
class PathBreakdown:
    """Share of operations served by each internal path."""

    title: str
    shares: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.shares.values())

    def fraction(self, label: str) -> float:
        return self.shares.get(label, 0) / self.total if self.total \
            else 0.0

    def render(self, width: int = 36) -> str:
        lines = [self.title, "-" * len(self.title)]
        total = self.total or 1
        for label, count in sorted(self.shares.items(),
                                   key=lambda kv: -kv[1]):
            if count == 0:
                continue
            bar = "#" * max(1, round(count / total * width))
            lines.append(f"{label:<28} {bar:<{width}} "
                         f"{count:>8} ({count / total:6.1%})")
        if len(lines) == 2:
            lines.append("(no operations recorded)")
        return "\n".join(lines)


def read_breakdown(controller: ICASHController) -> PathBreakdown:
    """Where this element's reads were actually served from."""
    shares = {label: controller.stats.count(counter)
              for counter, label in READ_SOURCES}
    return PathBreakdown("read path breakdown", shares)


def write_breakdown(controller: ICASHController) -> PathBreakdown:
    """Which path this element's writes took."""
    shares = {label: controller.stats.count(counter)
              for counter, label in WRITE_SOURCES}
    return PathBreakdown("write path breakdown", shares)


def semiconductor_fraction(controller: ICASHController) -> float:
    """Fraction of reads served without any mechanical operation —
    the paper's headline mechanism ("convert the majority of I/Os ...
    to I/O operations involving mainly SSD reads and computations")."""
    breakdown = read_breakdown(controller)
    mechanical = (breakdown.shares.get("HDD delta-log fetch", 0)
                  + breakdown.shares.get("HDD data region miss", 0)
                  + breakdown.shares.get("HDD (shadowed reference)", 0))
    total = breakdown.total
    return 1.0 - mechanical / total if total else 1.0
