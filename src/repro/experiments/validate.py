"""Whole-reproduction validation.

Runs every figure, collects shape scores and the headline claims, and
produces one summary — the "did the reproduction hold" answer in a
single call (``python -m repro validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.experiments import figures as figures_module
from repro.experiments.figures import FigureResult


@dataclass
class Claim:
    """One qualitative claim from the paper, checked against a run."""

    description: str
    holds: bool


@dataclass
class ValidationSummary:
    """Outcome of running the full figure suite."""

    shape_scores: Dict[str, float] = field(default_factory=dict)
    claims: List[Claim] = field(default_factory=list)

    @property
    def mean_shape_score(self) -> float:
        if not self.shape_scores:
            return 0.0
        return sum(self.shape_scores.values()) / len(self.shape_scores)

    @property
    def claims_held(self) -> int:
        return sum(1 for claim in self.claims if claim.holds)

    def render(self) -> str:
        lines = ["Reproduction validation", "=" * 23, "",
                 "shape scores (fraction of the paper's pairwise "
                 "orderings preserved):"]
        lines.extend(f"  {name:<12} {score:6.0%}"
                     for name, score in sorted(self.shape_scores.items()))
        lines.append(f"  {'mean':<12} {self.mean_shape_score:6.0%}")
        lines.append("")
        lines.append(f"headline claims: {self.claims_held}/"
                     f"{len(self.claims)} hold")
        for claim in self.claims:
            mark = "ok  " if claim.holds else "MISS"
            lines.append(f"  {mark} {claim.description}")
        return "\n".join(lines)


def _headline_claims(results: Dict[str, FigureResult]) -> List[Claim]:
    """The findings the paper's abstract and Section 5 lean on."""
    claims: List[Claim] = []

    def add(description: str, predicate: Callable[[], bool]) -> None:
        try:
            holds = bool(predicate())
        except (KeyError, ZeroDivisionError):
            holds = False
        claims.append(Claim(description, holds))

    m6 = results["figure6a"].measured
    add("I-CASH tops SysBench throughput (Fig 6a)",
        lambda: m6["icash"] == max(m6.values()))
    add("I-CASH beats RAID0 on SysBench by >1.2x (abstract: 1.2-7.5x)",
        lambda: m6["icash"] > 1.2 * m6["raid0"])
    m10 = results["figure10a"].measured
    add("I-CASH tops TPC-C throughput (Fig 10a)",
        lambda: m10["icash"] == max(m10.values()))
    m11 = results["figure11"].measured
    add("I-CASH has the best TPC-C response time (Fig 11)",
        lambda: m11["icash"] == min(m11.values()))
    m12 = results["figure12"].measured
    add("pure SSD wins LoadSim; I-CASH still beats both caches (Fig 12)",
        lambda: m12["fusion-io"] < m12["icash"] < min(m12["lru"],
                                                      m12["dedup"]))
    m14 = results["figure14"].measured
    add("read-heavy RUBiS: I-CASH within 15% of pure SSD (Fig 14)",
        lambda: abs(m14["icash"] / m14["fusion-io"] - 1.0) < 0.15)
    m15 = results["figure15"].measured
    add("I-CASH >= pure SSD on five cloned TPC-C VMs (Fig 15)",
        lambda: m15["icash"] >= m15["fusion-io"])
    add("I-CASH > 2x the cache baselines on five VMs (Fig 15)",
        lambda: m15["icash"] > 2 * max(m15["lru"], m15["dedup"]))
    m8 = results["figure8a"].measured
    add("I-CASH finishes the Hadoop job fastest (Fig 8a)",
        lambda: m8["icash"] == min(m8.values()))
    return claims


def validate(n_requests: int = None) -> ValidationSummary:
    """Run every figure and summarise how the reproduction held up."""
    kwargs = {}
    if n_requests is not None:
        kwargs["n_requests"] = n_requests
    summary = ValidationSummary()
    results: Dict[str, FigureResult] = {}
    for name, fn in figures_module.ALL_FIGURES.items():
        if name in ("figure15", "figure16"):
            result = fn()
        else:
            result = fn(**kwargs)
        results[name] = result
        summary.shape_scores[name] = result.shape_score()
    summary.claims = _headline_claims(results)
    return summary
