"""Generic parameter-sweep utility for I-CASH experiments.

The ablation benches each sweep one knob by hand; this module offers the
same capability as a reusable API, so downstream users can explore the
configuration space (`sweep_config`) or workload space (`sweep_workload`)
without writing runner plumbing.

Example::

    from repro.experiments.sweeps import sweep_config
    from repro.workloads import SysBenchWorkload

    points = sweep_config(
        lambda: SysBenchWorkload(n_requests=6000),
        "scan_interval", [250, 500, 1000, 2000])
    for point in points:
        print(point.value, point.result.transactions_per_s)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Sequence

from repro.core import ICASHController
from repro.experiments.runner import RunResult, run_benchmark
from repro.experiments.systems import make_icash_config, make_system
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    """One (parameter value, run outcome) pair of a sweep."""

    parameter: str
    value: object
    result: RunResult

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SweepPoint({self.parameter}={self.value!r}, "
                f"tx/s={self.result.transactions_per_s:.1f})")


def sweep_config(workload_factory: Callable[[], Workload],
                 parameter: str, values: Sequence[object],
                 warmup_fraction: float = 0.4,
                 preload: bool = True,
                 jobs: int = 1,
                 base_spec=None,
                 ledger=None) -> List[SweepPoint]:
    """Run I-CASH once per value of one :class:`ICASHConfig` field.

    Each point gets a fresh workload (same seed → same trace) and a fresh
    controller built from the workload's standard configuration with
    ``parameter`` overridden.

    Points are independent runs, so with ``jobs > 1`` *and* a
    ``base_spec`` (a :class:`~repro.experiments.parallel.RunSpec`
    describing the workload declaratively — factories don't pickle)
    they fan out across worker processes, with results identical to the
    serial path.

    ``ledger`` (a :class:`repro.ledger.LedgerWriter`) records every
    point under ``command="sweep"`` — always in value order, in this
    process, so the store is identical at any job count.
    """
    if jobs > 1 and base_spec is not None:
        from repro.experiments.parallel import run_specs

        specs = [replace(base_spec, system="icash",
                         warmup_fraction=warmup_fraction,
                         preload=preload,
                         config_overrides=((parameter, value),))
                 for value in values]
        outcomes = run_specs(specs, jobs=jobs)
        points = [SweepPoint(parameter, value, outcome.result)
                  for value, outcome in zip(values, outcomes)]
        for spec, outcome in zip(specs, outcomes):
            _record_point(ledger, outcome.result, spec, parameter,
                          host_wall_s=outcome.host_wall_s)
        return points
    points: List[SweepPoint] = []
    for value in values:
        workload = workload_factory()
        config = replace(make_icash_config(workload),
                         **{parameter: value})
        system = ICASHController(workload.build_dataset(), config)
        result = run_benchmark(workload, system,
                               warmup_fraction=warmup_fraction,
                               preload=preload)
        points.append(SweepPoint(parameter, value, result))
        _record_point(ledger, result, None, parameter,
                      overrides=((parameter, value),),
                      seed=getattr(workload, "seed", None),
                      warmup_fraction=warmup_fraction)
    return points


def _record_point(ledger, result: RunResult, spec, parameter: str,
                  overrides=None, seed=None,
                  warmup_fraction=None, host_wall_s=None) -> None:
    """Append one sweep point to the run ledger (duck-typed; the
    None / NULL_LEDGER default records nothing)."""
    if ledger is None or not getattr(ledger, "enabled", False):
        return
    if spec is None:
        spec = {"seed": seed, "warmup_fraction": warmup_fraction,
                "config_overrides": list(overrides or ())}
    value = dict(spec["config_overrides"]
                 if isinstance(spec, dict)
                 else spec.config_overrides)[parameter]
    ledger.record(result, command="sweep", spec=spec,
                  extra={"parameter": parameter, "value": value},
                  host_wall_s=host_wall_s)


def sweep_workload(workload_factories: Iterable[Callable[[], Workload]],
                   system_name: str = "icash",
                   warmup_fraction: float = 0.4) -> List[RunResult]:
    """Run one architecture across several workloads."""
    results: List[RunResult] = []
    for factory in workload_factories:
        workload = factory()
        system = make_system(system_name, workload)
        results.append(run_benchmark(workload, system,
                                     warmup_fraction=warmup_fraction))
    return results


def render_sweep(points: Sequence[SweepPoint],
                 metrics: Sequence[str] = ("transactions_per_s",
                                           "read_mean_us",
                                           "write_mean_us")) -> str:
    """Aligned text table of a sweep's outcome."""
    if not points:
        return "(empty sweep)"
    header = f"{points[0].parameter:>16} " + " ".join(
        f"{metric:>18}" for metric in metrics)
    lines = [header, "-" * len(header)]
    for point in points:
        cells = " ".join(
            f"{getattr(point.result, metric):>18.2f}" for metric in metrics)
        lines.append(f"{str(point.value):>16} {cells}")
    return "\n".join(lines)
