"""Text rendering of measured-vs-paper comparison tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def comparison_table(title: str, systems: Sequence[str],
                     measured: Dict[str, float],
                     paper: Optional[Dict[str, float]] = None,
                     unit: str = "", better: str = "higher",
                     precision: int = 1) -> str:
    """One figure's table: a row per system, measured next to paper.

    ``better`` ("higher" or "lower") is printed as a reading aid, echoing
    the paper's axis annotations like "the lower the better".
    """
    lines: List[str] = [title, "=" * len(title)]
    header = f"{'system':<12} {'measured':>14}"
    if paper:
        header += f" {'paper':>14}"
    lines.append(header + f"   ({better} is better)")
    for system in systems:
        value = measured.get(system)
        cell = f"{value:>{14}.{precision}f}" if value is not None \
            else f"{'-':>14}"
        row = f"{system:<12} {cell}"
        if paper:
            ref = paper.get(system)
            ref_cell = f"{ref:>{14}.{precision}f}" if ref is not None \
                else f"{'-':>14}"
            row += f" {ref_cell}"
        if unit:
            row += f"  {unit}"
        lines.append(row)
    return "\n".join(lines)


def normalize(values: Dict[str, float],
              baseline: str = "fusion-io") -> Dict[str, float]:
    """Normalise a metric to one system (Figures 15–16 are plotted this
    way)."""
    base = values.get(baseline)
    if not base:
        raise ValueError(f"baseline {baseline!r} missing or zero")
    return {name: value / base for name, value in values.items()}


def speedup_summary(measured: Dict[str, float], over: str,
                    better: str = "higher") -> Dict[str, float]:
    """I-CASH's speedup over one baseline, in the paper's convention.

    For "higher is better" metrics (throughput), speedup is
    icash / baseline; for "lower is better" (response time, score), it is
    baseline / icash.
    """
    icash = measured["icash"]
    base = measured[over]
    if better == "higher":
        return {"icash_over_" + over: icash / base if base else float("inf")}
    return {"icash_over_" + over: base / icash if icash else float("inf")}


def shape_check(measured: Dict[str, float], paper: Dict[str, float],
                better: str = "higher") -> Dict[str, bool]:
    """Did the reproduction preserve the paper's qualitative findings?

    Checks the relations the paper's narrative rests on rather than
    absolute values: for each pair of systems, whether the measured
    ordering matches the paper's ordering.  Returns
    ``{"A>B": preserved}`` pairs for every ordered pair the paper ranks.
    """
    outcome: Dict[str, bool] = {}
    names = [name for name in paper if name in measured]
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if paper[a] == paper[b]:
                continue
            paper_says_a = paper[a] > paper[b]
            measured_says_a = measured[a] > measured[b]
            key = f"{a}>{b}" if paper_says_a else f"{b}>{a}"
            outcome[key] = paper_says_a == measured_says_a
    return outcome


def shape_score(measured: Dict[str, float],
                paper: Dict[str, float]) -> float:
    """Fraction of the paper's pairwise orderings the reproduction kept."""
    checks = shape_check(measured, paper)
    if not checks:
        return 1.0
    return sum(checks.values()) / len(checks)


def render_shape_check(measured: Dict[str, float],
                       paper: Dict[str, float]) -> str:
    checks = shape_check(measured, paper)
    kept = sum(checks.values())
    lines = [f"pairwise orderings preserved: {kept}/{len(checks)}"]
    lines.extend(f"  {'ok ' if ok else 'MISS'} {relation}"
                 for relation, ok in sorted(checks.items()))
    return "\n".join(lines)
