"""Parallel experiment fan-out.

The evaluation is a grid of independent runs — figure grid cells, bench
suite entries, sweep points, load-test rate probes — each fully
determined by a handful of plain parameters (workload family, request
count, seed, system, engine, arrival pattern).  This module schedules
such runs across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* a :class:`RunSpec` describes one run *declaratively* (no lambdas, no
  live objects), so specs pickle to worker processes;
* workers return :meth:`RunResult.to_payload` dicts (plain data, no
  tracer/registry state) plus the run's host wall time;
* results are collected **by submission index**, never by completion
  order, so the output is bit-identical to serial execution for any
  job count;
* a broken or timed-out pool degrades to in-process serial execution
  of whatever is still missing — parallelism is a go-faster switch,
  never a correctness risk.

Every run builds a fresh workload and system from the spec's seed, so
runs are independent and deterministic whether they execute in this
process, a worker, or a retry after a worker crash.
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import RunResult, run_benchmark

try:
    from multiprocessing import shared_memory as _shared_memory
    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - shm is stdlib on 3.8+
    _shared_memory = None
    _SHM_AVAILABLE = False

#: Per-run wall-time ceiling before the pool is declared wedged and the
#: remaining runs fall back to serial execution.  Generous: the largest
#: committed suites run in seconds; only a hung worker ever hits this.
DEFAULT_TIMEOUT_S = 900.0


class DatasetArena:
    """Named shared-memory segments holding finished workload datasets.

    The parent process publishes each dataset matrix once; workers
    attach **by name** (the task envelope carries ``{dataset_key:
    (segment_name, shape)}``) instead of rebuilding — or unpickling —
    the content.  Lifetime contract: the *publishing* process owns every
    segment and is the only one that unlinks, via :meth:`release`
    (called from :func:`shutdown_parallel`, the ``parallel_session``
    context manager, and an ``atexit`` hook, so interrupted runs do not
    leak ``/dev/shm`` entries).  Workers only ever open existing
    segments read-only and unregister them from their own resource
    tracker; a worker that dies — even ``SIGKILL`` — therefore cannot
    take a segment down with it.
    """

    def __init__(self) -> None:
        self._segments: Dict[object, Tuple[object, Tuple[int, ...]]] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, key, array: np.ndarray) -> Tuple[str, Tuple[int, ...]]:
        """Copy ``array`` into a named segment (idempotent per key)."""
        existing = self._segments.get(key)
        if existing is not None:
            shm, shape = existing
            return shm.name, shape
        name = f"repro-arena-{os.getpid()}-{self._seq}"
        self._seq += 1
        shm = _shared_memory.SharedMemory(
            name=name, create=True, size=array.nbytes)
        np.ndarray(array.shape, dtype=np.uint8, buffer=shm.buf)[:] = array
        shape = tuple(array.shape)
        self._segments[key] = (shm, shape)
        return name, shape

    def refs(self) -> Dict[object, Tuple[str, Tuple[int, ...]]]:
        """Picklable ``key -> (segment_name, shape)`` attach directory."""
        return {key: (shm.name, shape)
                for key, (shm, shape) in self._segments.items()}

    def release(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for shm, _shape in self._segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still alive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "DatasetArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_arena: Optional[DatasetArena] = None


def _get_arena() -> DatasetArena:
    global _arena
    if _arena is None:
        _arena = DatasetArena()
    return _arena


def _ensure_pool(jobs: int) -> ProcessPoolExecutor:
    """The persistent executor, grown (never shrunk) to ``jobs`` workers.

    Reused across waves — ``figure``/``sweep``/``bench``/``loadtest``
    issue many :func:`run_specs` calls, and pool-per-call paid the full
    worker spawn each time.  Forked workers also keep their per-process
    memoisation (signature LRU, dataset cache) warm between waves.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers < jobs:
        _discard_pool(wait=True)
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=jobs)
        _pool_workers = jobs
    return _pool


def _discard_pool(wait: bool = False) -> None:
    global _pool, _pool_workers
    if _pool is not None:
        try:
            _pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    _pool = None
    _pool_workers = 0


def shutdown_parallel() -> None:
    """Tear down the persistent pool and unlink every arena segment.

    Safe to call any number of times; registered with ``atexit`` so a
    Ctrl-C'd or crashed driver still releases its ``/dev/shm`` space.
    """
    global _arena
    _discard_pool(wait=False)
    if _arena is not None:
        _arena.release()
        _arena = None


atexit.register(shutdown_parallel)


@contextmanager
def parallel_session():
    """Scope the persistent pool + arena to a ``with`` block."""
    try:
        yield
    finally:
        shutdown_parallel()


@dataclass(frozen=True)
class RunSpec:
    """One independent benchmark run, described in picklable terms.

    ``load`` selects the arrival model for ``engine="event"`` runs:
    ``None`` (the workload's default closed loop),
    ``("open", rate_rps, distribution, seed)`` or
    ``("closed", clients, think_s)``.

    ``config_overrides`` builds an I-CASH controller from the workload's
    standard configuration with fields replaced — the sweep primitive.

    ``n_vms > 0`` wraps the workload family in a
    :class:`~repro.workloads.multivm.MultiVMWorkload` (``n_requests``
    then counts per VM).
    """

    workload: str
    system: str = "icash"
    engine: str = "legacy"
    n_requests: int = 10000
    seed: int = 2011
    scale: Optional[float] = None
    n_vms: int = 0
    vm_scale: float = 0.25
    warmup_fraction: float = 0.25
    preload: bool = True
    flush_at_end: bool = True
    profile: bool = False
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    load: Optional[Tuple] = None

    def build_workload(self):
        from repro.workloads import ALL_WORKLOADS, MultiVMWorkload

        registry = {cls.name: cls for cls in ALL_WORKLOADS}
        cls = registry[self.workload]
        if self.n_vms > 0:
            return MultiVMWorkload(cls, n_vms=self.n_vms,
                                   scale=self.vm_scale,
                                   n_requests_per_vm=self.n_requests,
                                   seed=self.seed)
        kwargs: Dict[str, object] = {"n_requests": self.n_requests,
                                     "seed": self.seed}
        if self.scale is not None:
            kwargs["scale"] = self.scale
        return cls(**kwargs)

    def build_system(self, workload):
        from repro.experiments.systems import (make_icash_config,
                                               make_system)

        if not self.config_overrides:
            return make_system(self.system, workload)
        if self.system != "icash":
            raise ValueError("config_overrides require system='icash', "
                             f"got {self.system!r}")
        from repro.core import ICASHController

        config = dc_replace(make_icash_config(workload),
                            **dict(self.config_overrides))
        return ICASHController(workload.build_dataset(), config)

    def build_load(self):
        if self.load is None:
            return None
        from repro.sim.load import ClosedLoopLoad, OpenLoopLoad

        kind = self.load[0]
        if kind == "open":
            _, rate_rps, distribution, seed = self.load
            return OpenLoopLoad(rate_rps, distribution=distribution,
                                seed=seed)
        if kind == "closed":
            _, clients, think_s = self.load
            return ClosedLoopLoad(clients=clients, think_s=think_s)
        raise ValueError(f"unknown load kind {kind!r}")


@dataclass
class SpecOutcome:
    """One completed run: the (virtual-clock) result plus the host wall
    seconds the run cost wherever it executed."""

    result: RunResult
    host_wall_s: float
    #: True when this run executed in a worker process.
    parallel: bool = field(default=False)


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one spec in this process."""
    workload = spec.build_workload()
    system = spec.build_system(workload)
    profiler = None
    if spec.profile:
        from repro.sim.profile import Profiler
        profiler = Profiler()
    return run_benchmark(workload, system, engine=spec.engine,
                         warmup_fraction=spec.warmup_fraction,
                         preload=spec.preload,
                         flush_at_end=spec.flush_at_end,
                         load=spec.build_load(),
                         profiler=profiler)


def execute_spec(spec: RunSpec) -> Dict[str, object]:
    """Worker entry point: run one spec, return a plain-data envelope.

    Module-level (not a closure) so the function itself pickles to the
    pool.  The returned dict carries only payload data, never live
    simulator objects.
    """
    start = time.perf_counter()
    result = run_spec(spec)
    return {"payload": result.to_payload(),
            "host_wall_s": time.perf_counter() - start}


def execute_spec_shared(task: Tuple[RunSpec, Dict]) -> Dict[str, object]:
    """Worker entry point for the arena path: ``(spec, dataset_refs)``.

    Registers the parent's shared-memory dataset directory before the
    workload is built, so ``ContentModel.build_dataset`` attaches by
    name instead of re-running the build loop.  Attach failures fall
    back to a local rebuild — bit-identical by construction.
    """
    spec, refs = task
    if refs:
        from repro.workloads import content as content_model
        content_model.register_shared_datasets(refs)
    return execute_spec(spec)


def _serial_outcome(spec: RunSpec) -> SpecOutcome:
    envelope = execute_spec(spec)
    return SpecOutcome(
        result=RunResult.from_payload(envelope["payload"]),
        host_wall_s=envelope["host_wall_s"], parallel=False)


def _publish_for_specs(specs: Sequence[RunSpec]
                       ) -> Dict[object, Tuple[str, Tuple[int, ...]]]:
    """Build each unique workload once in the parent and publish its
    dataset into the arena; returns the attach directory for workers.

    Workload request streams are lazy, so a parent-side build costs one
    dataset construction — exactly the work it saves *per worker* that
    would otherwise rebuild the same content.  Any failure (exotic
    spec, shm exhausted) degrades to publishing nothing.
    """
    if not _SHM_AVAILABLE:
        return {}
    from repro.workloads import content as content_model
    try:
        seen = set()
        for spec in specs:
            identity = (spec.workload, spec.n_vms, spec.vm_scale,
                        spec.scale, spec.seed)
            if identity in seen:
                continue
            seen.add(identity)
            spec.build_workload()  # warms the parent's dataset cache
        arena = _get_arena()
        for key, dataset in content_model.cached_datasets().items():
            arena.publish(key, dataset)
        return arena.refs()
    except Exception as err:  # pragma: no cover - degraded mode
        print(f"parallel: dataset arena unavailable ({err!r}); "
              f"workers will rebuild content locally", file=sys.stderr)
        return {}


def run_specs(specs: Sequence[RunSpec], jobs: int = 1,
              timeout_s: float = DEFAULT_TIMEOUT_S,
              progress: Optional[Callable[[RunSpec], None]] = None,
              use_arena: bool = True,
              ) -> List[SpecOutcome]:
    """Run every spec; return outcomes in input order.

    ``jobs <= 1`` (or a single spec) runs serially in-process.  With a
    pool, results are still collected in submission order, so metric
    output is byte-identical to serial execution regardless of which
    worker finishes first.  The pool is *persistent* — reused and grown
    across calls (see :func:`_ensure_pool`) until
    :func:`shutdown_parallel` or process exit — and each task carries
    the arena directory of parent-published datasets unless
    ``use_arena=False``.

    A crashed (``BrokenExecutor``/``OSError``) or wedged (per-run
    ``timeout_s``) pool is abandoned and the *missing* runs — and only
    those — re-execute serially; exceptions a run itself raises (bad
    spec, failed verification) propagate exactly as they would
    serially.
    """
    specs = list(specs)
    outcomes: List[Optional[SpecOutcome]] = [None] * len(specs)
    if jobs <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            if progress is not None:
                progress(spec)
            outcomes[index] = _serial_outcome(spec)
        return outcomes  # type: ignore[return-value]

    refs = _publish_for_specs(specs) if use_arena else {}
    pool_failed = False
    try:
        pool = _ensure_pool(jobs)
        futures = [pool.submit(execute_spec_shared, (spec, refs))
                   for spec in specs]
        for index, future in enumerate(futures):
            if progress is not None:
                progress(specs[index])
            try:
                envelope = future.result(timeout=timeout_s)
            except (BrokenExecutor, FutureTimeoutError, OSError) as err:
                print(f"parallel: worker pool failed ({err!r}); "
                      f"falling back to serial execution",
                      file=sys.stderr)
                pool_failed = True
                for pending in futures[index:]:
                    pending.cancel()
                _discard_pool(wait=False)
                break
            outcomes[index] = SpecOutcome(
                result=RunResult.from_payload(envelope["payload"]),
                host_wall_s=envelope["host_wall_s"], parallel=True)
    except (BrokenExecutor, OSError) as err:  # pool setup/teardown died
        print(f"parallel: executor unavailable ({err!r}); "
              f"falling back to serial execution", file=sys.stderr)
        pool_failed = True
        _discard_pool(wait=False)

    if pool_failed:
        for index, spec in enumerate(specs):
            if outcomes[index] is None:
                outcomes[index] = _serial_outcome(spec)
    return outcomes  # type: ignore[return-value]
