"""Parallel experiment fan-out.

The evaluation is a grid of independent runs — figure grid cells, bench
suite entries, sweep points, load-test rate probes — each fully
determined by a handful of plain parameters (workload family, request
count, seed, system, engine, arrival pattern).  This module schedules
such runs across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* a :class:`RunSpec` describes one run *declaratively* (no lambdas, no
  live objects), so specs pickle to worker processes;
* workers return :meth:`RunResult.to_payload` dicts (plain data, no
  tracer/registry state) plus the run's host wall time;
* results are collected **by submission index**, never by completion
  order, so the output is bit-identical to serial execution for any
  job count;
* a broken or timed-out pool degrades to in-process serial execution
  of whatever is still missing — parallelism is a go-faster switch,
  never a correctness risk.

Every run builds a fresh workload and system from the spec's seed, so
runs are independent and deterministic whether they execute in this
process, a worker, or a retry after a worker crash.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult, run_benchmark

#: Per-run wall-time ceiling before the pool is declared wedged and the
#: remaining runs fall back to serial execution.  Generous: the largest
#: committed suites run in seconds; only a hung worker ever hits this.
DEFAULT_TIMEOUT_S = 900.0


@dataclass(frozen=True)
class RunSpec:
    """One independent benchmark run, described in picklable terms.

    ``load`` selects the arrival model for ``engine="event"`` runs:
    ``None`` (the workload's default closed loop),
    ``("open", rate_rps, distribution, seed)`` or
    ``("closed", clients, think_s)``.

    ``config_overrides`` builds an I-CASH controller from the workload's
    standard configuration with fields replaced — the sweep primitive.

    ``n_vms > 0`` wraps the workload family in a
    :class:`~repro.workloads.multivm.MultiVMWorkload` (``n_requests``
    then counts per VM).
    """

    workload: str
    system: str = "icash"
    engine: str = "legacy"
    n_requests: int = 10000
    seed: int = 2011
    scale: Optional[float] = None
    n_vms: int = 0
    vm_scale: float = 0.25
    warmup_fraction: float = 0.25
    preload: bool = True
    flush_at_end: bool = True
    profile: bool = False
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    load: Optional[Tuple] = None

    def build_workload(self):
        from repro.workloads import ALL_WORKLOADS, MultiVMWorkload

        registry = {cls.name: cls for cls in ALL_WORKLOADS}
        cls = registry[self.workload]
        if self.n_vms > 0:
            return MultiVMWorkload(cls, n_vms=self.n_vms,
                                   scale=self.vm_scale,
                                   n_requests_per_vm=self.n_requests,
                                   seed=self.seed)
        kwargs: Dict[str, object] = {"n_requests": self.n_requests,
                                     "seed": self.seed}
        if self.scale is not None:
            kwargs["scale"] = self.scale
        return cls(**kwargs)

    def build_system(self, workload):
        from repro.experiments.systems import (make_icash_config,
                                               make_system)

        if not self.config_overrides:
            return make_system(self.system, workload)
        if self.system != "icash":
            raise ValueError("config_overrides require system='icash', "
                             f"got {self.system!r}")
        from repro.core import ICASHController

        config = dc_replace(make_icash_config(workload),
                            **dict(self.config_overrides))
        return ICASHController(workload.build_dataset(), config)

    def build_load(self):
        if self.load is None:
            return None
        from repro.sim.load import ClosedLoopLoad, OpenLoopLoad

        kind = self.load[0]
        if kind == "open":
            _, rate_rps, distribution, seed = self.load
            return OpenLoopLoad(rate_rps, distribution=distribution,
                                seed=seed)
        if kind == "closed":
            _, clients, think_s = self.load
            return ClosedLoopLoad(clients=clients, think_s=think_s)
        raise ValueError(f"unknown load kind {kind!r}")


@dataclass
class SpecOutcome:
    """One completed run: the (virtual-clock) result plus the host wall
    seconds the run cost wherever it executed."""

    result: RunResult
    host_wall_s: float
    #: True when this run executed in a worker process.
    parallel: bool = field(default=False)


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one spec in this process."""
    workload = spec.build_workload()
    system = spec.build_system(workload)
    profiler = None
    if spec.profile:
        from repro.sim.profile import Profiler
        profiler = Profiler()
    return run_benchmark(workload, system, engine=spec.engine,
                         warmup_fraction=spec.warmup_fraction,
                         preload=spec.preload,
                         flush_at_end=spec.flush_at_end,
                         load=spec.build_load(),
                         profiler=profiler)


def execute_spec(spec: RunSpec) -> Dict[str, object]:
    """Worker entry point: run one spec, return a plain-data envelope.

    Module-level (not a closure) so the function itself pickles to the
    pool.  The returned dict carries only payload data, never live
    simulator objects.
    """
    start = time.perf_counter()
    result = run_spec(spec)
    return {"payload": result.to_payload(),
            "host_wall_s": time.perf_counter() - start}


def _serial_outcome(spec: RunSpec) -> SpecOutcome:
    envelope = execute_spec(spec)
    return SpecOutcome(
        result=RunResult.from_payload(envelope["payload"]),
        host_wall_s=envelope["host_wall_s"], parallel=False)


def run_specs(specs: Sequence[RunSpec], jobs: int = 1,
              timeout_s: float = DEFAULT_TIMEOUT_S,
              progress: Optional[Callable[[RunSpec], None]] = None,
              ) -> List[SpecOutcome]:
    """Run every spec; return outcomes in input order.

    ``jobs <= 1`` (or a single spec) runs serially in-process.  With a
    pool, results are still collected in submission order, so metric
    output is byte-identical to serial execution regardless of which
    worker finishes first.  A crashed (``BrokenExecutor``/``OSError``)
    or wedged (per-run ``timeout_s``) pool is abandoned and the
    *missing* runs — and only those — re-execute serially; exceptions a
    run itself raises (bad spec, failed verification) propagate exactly
    as they would serially.
    """
    specs = list(specs)
    outcomes: List[Optional[SpecOutcome]] = [None] * len(specs)
    if jobs <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            if progress is not None:
                progress(spec)
            outcomes[index] = _serial_outcome(spec)
        return outcomes  # type: ignore[return-value]

    pool_failed = False
    try:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(specs))) as pool:
            futures = [pool.submit(execute_spec, spec) for spec in specs]
            for index, future in enumerate(futures):
                if progress is not None:
                    progress(specs[index])
                try:
                    envelope = future.result(timeout=timeout_s)
                except (BrokenExecutor, FutureTimeoutError, OSError) as err:
                    print(f"parallel: worker pool failed ({err!r}); "
                          f"falling back to serial execution",
                          file=sys.stderr)
                    pool_failed = True
                    for pending in futures[index:]:
                        pending.cancel()
                    break
                outcomes[index] = SpecOutcome(
                    result=RunResult.from_payload(envelope["payload"]),
                    host_wall_s=envelope["host_wall_s"], parallel=True)
    except (BrokenExecutor, OSError) as err:  # pool setup/teardown died
        print(f"parallel: executor unavailable ({err!r}); "
              f"falling back to serial execution", file=sys.stderr)
        pool_failed = True

    if pool_failed:
        for index, spec in enumerate(specs):
            if outcomes[index] is None:
                outcomes[index] = _serial_outcome(spec)
    return outcomes  # type: ignore[return-value]
