"""SSD lifetime projection across architectures (§5.3's conclusion).

Table 6 counts SSD write requests; the paragraph under it argues the
reduction "impl[ies] prolonged life time of the SSD".  This module
finishes that argument with numbers: run one workload across the
SSD-bearing architectures, read each SSD's per-block erase counters and
write volume, and project device lifetime at the observed steady-state
rate.

Because I-CASH (and the caches) provision a *smaller* SSD than the
pure-SSD baseline, the projection normalises per flash block: what
matters for endurance is erases per block per unit time, not the
device's absolute write count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.devices.ssd import FlashSSD
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.metrics.wear import WearReport, wear_report
from repro.workloads.base import Workload

#: Architectures that carry an SSD (RAID0 has none to wear out).
SSD_SYSTEMS = ("fusion-io", "dedup", "lru", "icash")


@dataclass
class LifetimeRow:
    """One architecture's wear outcome for one workload run."""

    system: str
    host_write_pages: int
    total_erases: int
    write_amplification: float
    wear: WearReport
    #: Projected years until the most-worn block exhausts endurance,
    #: at the run's observed rate; None when the run caused no erases.
    projected_years: Optional[float]

    def format_row(self) -> str:
        years = (f"{self.projected_years:10.2f}"
                 if self.projected_years is not None else
                 f"{'>1000':>10}")
        return (f"{self.system:<10} {self.host_write_pages:>12} "
                f"{self.total_erases:>8} "
                f"{self.write_amplification:>6.2f} {years}")


def _find_ssd(system) -> Optional[FlashSSD]:
    for device in system.devices():
        if isinstance(device, FlashSSD):
            return device
    return None


def lifetime_projection(workload_factory: Callable[[], Workload],
                        warmup_fraction: float = 0.4,
                        ) -> Dict[str, LifetimeRow]:
    """Run one workload on every SSD-bearing architecture and project
    each SSD's lifetime from its wear state."""
    rows: Dict[str, LifetimeRow] = {}
    for name in SSD_SYSTEMS:
        workload = workload_factory()
        system = make_system(name, workload)
        result = run_benchmark(workload, system,
                               warmup_fraction=warmup_fraction)
        ssd = _find_ssd(system)
        if ssd is None:  # pragma: no cover - all four carry SSDs
            continue
        report = wear_report(ssd, max(result.full_wall_time_s, 1e-9))
        rows[name] = LifetimeRow(
            system=name,
            host_write_pages=ssd.stats.count("write_blocks"),
            total_erases=ssd.total_erases,
            write_amplification=ssd.write_amplification,
            wear=report,
            projected_years=report.projected_lifetime_years)
    return rows


def render_lifetime_table(rows: Dict[str, LifetimeRow],
                          title: str = "SSD lifetime projection") -> str:
    lines = [title, "=" * len(title),
             f"{'system':<10} {'write pages':>12} {'erases':>8} "
             f"{'WA':>6} {'life (yr)':>10}"]
    for name in SSD_SYSTEMS:
        if name in rows:
            lines.append(rows[name].format_row())
    lines.append("")
    lines.append("(WA = write amplification; life projects the most-worn "
                 "block's erase rate\nagainst its endurance budget at "
                 "this run's intensity)")
    return "\n".join(lines)
