"""The chaos scenario matrix: every fault class against every core
workload, judged against SLO breach budgets.

Each :class:`ChaosScenario` runs one :mod:`repro.sim.faults` fault kind
against the I-CASH element under open-loop load (60 % of the
calibrated saturation rate, so the array has realistic headroom for
repair traffic), with the SLO monitor watching every window.  The
verdict is pass/fail against the scenario's budget:

* SLO breach windows (read/write p99, delta-log high water) must stay
  within ``breach_budget``;
* the degraded-mode window must close within ``max_recovery_s`` of
  event time;
* a ``power_loss`` data-loss window must stay within
  ``max_loss_blocks`` unflushed deltas;
* ``silent_corruption`` on signed references must be *detected*.

The matrix, budgets and metric definitions are documented in
``docs/RELIABILITY.md``; a doc-parity test keeps scenario IDs and
budgets in lock-step with this module.  Everything is deterministic:
same seed, same verdicts, byte-identical JSONL — ``repro chaos`` is a
CI gate, not a dice roll.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.loadtest import calibrate_capacity
from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.faults import FAULT_KINDS, FaultPlan
from repro.sim.load import OpenLoopLoad
from repro.sim.metrics import Monitor, SLORule
from repro.workloads import ALL_WORKLOADS

__all__ = [
    "ChaosScenario",
    "ChaosVerdict",
    "ChaosReport",
    "SCENARIOS",
    "quick_scenarios",
    "run_scenario",
    "run_matrix",
    "export_chaos_jsonl",
]

#: Short scenario-ID slug per fault kind.
KIND_SLUGS = {
    "ssd_wearout": "wearout",
    "hdd_failure": "hddfail",
    "power_loss": "powerloss",
    "silent_corruption": "corrupt",
}

#: Workload columns of the matrix (the paper's three core benchmarks).
CHAOS_WORKLOADS = ("sysbench", "tpcc", "loadsim")

#: Offered load as a fraction of calibrated saturation throughput.
LOAD_FRACTION = 0.6


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the matrix: a fault kind under a workload."""

    scenario_id: str
    fault_kind: str
    workload: str
    #: SLO breach windows tolerated before the scenario fails.
    breach_budget: int
    #: Degraded-mode window must close within this much event time.
    max_recovery_s: float
    #: ``power_loss`` only: unflushed deltas allowed at the crash.
    max_loss_blocks: Optional[int] = None
    #: ``silent_corruption`` only: the scrub must catch the damage.
    must_detect: bool = False


def _budget(kind: str):
    """Per-kind budgets — documented in docs/RELIABILITY.md."""
    return {
        "ssd_wearout": dict(breach_budget=4, max_recovery_s=10.0),
        "hdd_failure": dict(breach_budget=6, max_recovery_s=30.0),
        "power_loss": dict(breach_budget=4, max_recovery_s=10.0,
                           max_loss_blocks=512),
        "silent_corruption": dict(breach_budget=4, max_recovery_s=10.0,
                                  must_detect=True),
    }[kind]


#: The full matrix: every fault class against every core workload.
SCENARIOS = tuple(
    ChaosScenario(scenario_id=f"{KIND_SLUGS[kind]}-{workload}",
                  fault_kind=kind, workload=workload, **_budget(kind))
    for kind in FAULT_KINDS
    for workload in CHAOS_WORKLOADS)


def quick_scenarios() -> Sequence[ChaosScenario]:
    """One scenario per fault class (the CI smoke set)."""
    return tuple(s for s in SCENARIOS if s.workload == "sysbench")


def scenario_rules() -> List[SLORule]:
    """The chaos rule set: latency SLOs plus log headroom.

    The stock ``ssd_daily_write_budget`` rule is deliberately absent —
    it judges lifetime burn rate, which the ``ssd_wearout`` injector
    measures directly, and its scaled-rate form flags short dense runs
    spuriously.
    """
    return [
        SLORule("read_p99", "read_latency_us", "p99", "max", 30_000.0,
                unit="us",
                description="p99 read latency within two mechanical "
                            "accesses, rebuild included"),
        SLORule("write_p99", "write_latency_us", "p99", "max", 30_000.0,
                unit="us",
                description="p99 write latency within two mechanical "
                            "accesses, rebuild included"),
        SLORule("delta_log_high_water", "delta_log_occupancy", "value",
                "max", 0.95,
                description="delta log below its chaos high-water mark"),
    ]


@dataclass
class ChaosVerdict:
    """One scenario's measured outcome and pass/fail judgement."""

    scenario_id: str
    fault_kind: str
    workload: str
    passed: bool
    breaches: int
    breach_budget: int
    recovery_s: float
    max_recovery_s: float
    rebuild_blocks: int
    #: p99 read latency (µs) of the measured window containing the
    #: fault — the "rebuild p99" of the reliability model.
    rebuild_p99_us: float
    loss_window_blocks: Optional[int] = None
    detected: Optional[bool] = None
    notes: str = ""

    def to_payload(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "fault_kind": self.fault_kind,
            "workload": self.workload,
            "passed": self.passed,
            "breaches": self.breaches,
            "breach_budget": self.breach_budget,
            "recovery_s": round(self.recovery_s, 9),
            "max_recovery_s": self.max_recovery_s,
            "rebuild_blocks": self.rebuild_blocks,
            "rebuild_p99_us": round(self.rebuild_p99_us, 3),
            "loss_window_blocks": self.loss_window_blocks,
            "detected": self.detected,
            "notes": self.notes,
        }


@dataclass
class ChaosReport:
    """All verdicts of one matrix run."""

    seed: int
    n_requests: int
    verdicts: List[ChaosVerdict]

    @property
    def all_passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def n_failed(self) -> int:
        return sum(1 for v in self.verdicts if not v.passed)

    def render(self) -> str:
        """ASCII matrix, one row per scenario."""
        header = (f"{'scenario':<20} {'workload':<9} {'fault':<18} "
                  f"{'breach':>6} {'budget':>6} {'recov_s':>8} "
                  f"{'rebuild':>8} {'loss':>5} {'detect':>6} verdict")
        lines = [
            f"chaos matrix  (seed {self.seed}, "
            f"{self.n_requests} requests/run, "
            f"{LOAD_FRACTION:.0%} of saturation)",
            header,
            "-" * len(header),
        ]
        for v in self.verdicts:
            loss = "-" if v.loss_window_blocks is None \
                else str(v.loss_window_blocks)
            detect = "-" if v.detected is None \
                else ("yes" if v.detected else "MISS")
            lines.append(
                f"{v.scenario_id:<20} {v.workload:<9} "
                f"{v.fault_kind:<18} {v.breaches:>6} "
                f"{v.breach_budget:>6} {v.recovery_s:>8.3f} "
                f"{v.rebuild_blocks:>8} {loss:>5} {detect:>6} "
                f"{'PASS' if v.passed else 'FAIL'}")
        lines.append("-" * len(header))
        lines.append(
            f"{len(self.verdicts)} scenario(s), "
            f"{self.n_failed} failed"
            + ("" if self.n_failed else " — production-ready"))
        return "\n".join(lines)


def _workload_factory(name: str, n_requests: int):
    classes = {cls.name: cls for cls in ALL_WORKLOADS}
    if name not in classes:
        raise ValueError(f"unknown chaos workload {name!r}; pick one "
                         f"of {sorted(classes)}")
    cls = classes[name]
    return lambda: cls(n_requests=n_requests)


def run_scenario(scenario: ChaosScenario, seed: int = 1234,
                 n_requests: int = 2000,
                 capacity_rps: Optional[float] = None,
                 ledger=None) -> ChaosVerdict:
    """Run one scenario and judge it.

    ``capacity_rps`` skips the calibration run when the caller already
    measured this workload's saturation rate (``run_matrix`` caches it
    per workload column).

    ``ledger`` (a :class:`repro.ledger.LedgerWriter`) records the
    scenario's run — provenance, metric snapshot, fault outcomes —
    plus the verdict under ``command="chaos"``.
    """
    factory = _workload_factory(scenario.workload, n_requests)
    if capacity_rps is None:
        capacity_rps = calibrate_capacity(factory, "icash")
    workload = factory()
    system = make_system("icash", workload)
    plan = FaultPlan.single(scenario.fault_kind,
                            at_request=n_requests // 2, seed=seed)
    monitor = Monitor(interval_s=0.02, rules=scenario_rules())
    result = run_benchmark(
        workload, system, engine="event",
        load=OpenLoopLoad(LOAD_FRACTION * capacity_rps, seed=seed),
        monitor=monitor, fault_plan=plan)
    report = result.faults
    outcome = report.outcomes[0]

    breaches = len(result.slo_breaches)
    recovery_s = outcome.degraded_s
    notes = []
    passed = True
    if outcome.skipped:
        passed = False
        notes.append(f"fault skipped: {outcome.detail}")
    if breaches > scenario.breach_budget:
        passed = False
        notes.append(f"{breaches} SLO breaches > budget "
                     f"{scenario.breach_budget}")
    if recovery_s > scenario.max_recovery_s:
        passed = False
        notes.append(f"recovery {recovery_s:.3f}s > "
                     f"{scenario.max_recovery_s}s")
    if scenario.max_loss_blocks is not None and \
            (outcome.data_loss_window_blocks or 0) > \
            scenario.max_loss_blocks:
        passed = False
        notes.append(f"loss window {outcome.data_loss_window_blocks} "
                     f"blk > {scenario.max_loss_blocks}")
    if scenario.must_detect and not outcome.detected:
        passed = False
        notes.append("corruption NOT detected")
    verdict = ChaosVerdict(
        scenario_id=scenario.scenario_id,
        fault_kind=scenario.fault_kind,
        workload=scenario.workload,
        passed=passed,
        breaches=breaches,
        breach_budget=scenario.breach_budget,
        recovery_s=recovery_s,
        max_recovery_s=scenario.max_recovery_s,
        rebuild_blocks=outcome.rebuild_blocks,
        rebuild_p99_us=result.read_p99_us,
        loss_window_blocks=outcome.data_loss_window_blocks,
        detected=outcome.detected,
        notes="; ".join(notes))
    if ledger is not None and getattr(ledger, "enabled", False):
        ledger.record(
            result, command="chaos",
            spec={"seed": seed},
            extra={"scenario": scenario.scenario_id,
                   "fault_kind": scenario.fault_kind,
                   "passed": verdict.passed,
                   "breaches": verdict.breaches,
                   "recovery_s": round(verdict.recovery_s, 9)})
    return verdict


def run_matrix(scenarios: Sequence[ChaosScenario] = SCENARIOS,
               seed: int = 1234, n_requests: int = 2000,
               progress=None, ledger=None) -> ChaosReport:
    """Run a scenario set; calibration is cached per workload column."""
    capacity_cache: Dict[str, float] = {}
    verdicts: List[ChaosVerdict] = []
    for scenario in scenarios:
        if scenario.workload not in capacity_cache:
            factory = _workload_factory(scenario.workload, n_requests)
            capacity_cache[scenario.workload] = calibrate_capacity(
                factory, "icash")
        if progress is not None:
            progress(f"chaos: {scenario.scenario_id} ...")
        verdicts.append(run_scenario(
            scenario, seed=seed, n_requests=n_requests,
            capacity_rps=capacity_cache[scenario.workload],
            ledger=ledger))
    return ChaosReport(seed=seed, n_requests=n_requests,
                       verdicts=verdicts)


def export_chaos_jsonl(report: ChaosReport, dest) -> int:
    """Write the report as JSONL: one meta line, one line per verdict.

    Returns the number of lines written.  Deterministic — no
    timestamps, stable key order — so CI can diff two runs.
    """
    path = Path(dest)
    lines = [json.dumps({"meta": {
        "kind": "chaos_report", "seed": report.seed,
        "n_requests": report.n_requests,
        "scenarios": len(report.verdicts),
        "failed": report.n_failed}}, sort_keys=True)]
    lines.extend(json.dumps(v.to_payload(), sort_keys=True)
                 for v in report.verdicts)
    path.write_text("\n".join(lines) + "\n")
    return len(lines)
