"""Saturation sweeps over the discrete-event engine.

The paper's throughput claims live at the *knee* of the offered-load
curve: below it a system keeps up (achieved == offered) and response
times sit near the no-contention service time; past it the bottleneck
device saturates, achieved throughput flattens at its capacity and
queue waits — hence p99 latency — blow up.  The legacy runner's
busy-time model cannot show any of this; this module sweeps an
open-loop arrival rate through ``run_benchmark(engine="event")`` to
measure it.

Determinism note: every sweep point reuses the same arrival seed, and
:class:`repro.sim.load.OpenLoopLoad` draws unit-mean interarrivals
scaled by ``1/rate`` — so a sweep sees one arrival pattern compressed
in time, not a fresh random pattern per rate, and the measured curve
is monotone instead of jittering with resampling noise.  Requests are
processed in stream order regardless of rate, so service times and SSD
write counts are identical at every point; only waiting differs.

``python -m repro loadtest`` is the CLI front end; with ``--compare``
it runs :func:`compare_at_knee`, the experiments entry that puts
I-CASH and every baseline side by side at their own saturation points.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.experiments.runner import RunResult, run_benchmark
from repro.experiments.systems import SYSTEM_NAMES, make_system
from repro.sim.load import ClosedLoopLoad, OpenLoopLoad

#: Default sweep span as fractions of the calibrated capacity: from
#: comfortably under the knee to well past it.
DEFAULT_SPAN = (0.3, 1.6)
#: A system "keeps up" with an offered rate when it achieves at least
#: this fraction of it; the first rate below the bar is the knee.
KNEE_EFFICIENCY = 0.9


@dataclass(frozen=True)
class RatePoint:
    """One sweep point: what an offered arrival rate actually got."""

    offered_rps: float
    achieved_rps: float
    n_measured: int
    mean_ms: float
    p99_ms: float
    wait_mean_ms: float
    #: Highest-utilisation station and its utilisation at this rate.
    bottleneck: Optional[str]
    bottleneck_util: float
    #: Per-station busy fraction and time-averaged queue depth from the
    #: run's :class:`~repro.sim.engine.QueueingSummary`, keyed by
    #: station (device) name.  Empty for hand-built points.
    station_util: Dict[str, float] = field(default_factory=dict)
    station_depth: Dict[str, float] = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        """Achieved / offered — 1.0 while the system keeps up."""
        return self.achieved_rps / self.offered_rps \
            if self.offered_rps else 0.0


def _pooled_p99_ms(result: RunResult) -> float:
    """Worst per-class p99 — reads and writes saturate together, and
    the max is what an SLO would alarm on."""
    return max(result.read_p99_us, result.write_p99_us) / 1e3


def run_rate_point(workload_factory, system_name: str, rate_rps: float,
                   distribution: str = "poisson",
                   seed: int = 1234,
                   ledger=None) -> Tuple[RatePoint, RunResult]:
    """Measure one open-loop arrival rate against a fresh system."""
    workload = workload_factory()
    system = make_system(system_name, workload)
    load = OpenLoopLoad(rate_rps, distribution=distribution, seed=seed)
    # No warmup cut (the transient is part of what a rate probe
    # measures) and no end-of-run flush: the flush is constant
    # bookkeeping that would dilute low-rate efficiency and blur the
    # knee.
    result = run_benchmark(workload, system, engine="event", load=load,
                           warmup_fraction=0.0, flush_at_end=False)
    _record_probe(ledger, result, seed, rate_rps, distribution,
                  role="probe")
    return _point_from_result(rate_rps, result), result


def _record_probe(ledger, result: RunResult, seed: int,
                  rate_rps: Optional[float], distribution: str,
                  role: str) -> None:
    """Append one loadtest run to the run ledger (duck-typed; the
    None / NULL_LEDGER default records nothing)."""
    if ledger is None or not getattr(ledger, "enabled", False):
        return
    load = None if rate_rps is None \
        else ["open", rate_rps, distribution, seed]
    ledger.record(result, command="loadtest",
                  spec={"seed": seed, "warmup_fraction": 0.0,
                        "load": load},
                  extra={"role": role, "offered_rps": rate_rps})


def _point_from_result(rate_rps: float, result: RunResult) -> RatePoint:
    """Distil one run's queueing summary into a :class:`RatePoint`."""
    queueing = result.queueing
    return RatePoint(
        offered_rps=rate_rps,
        achieved_rps=result.requests_per_s,
        n_measured=result.n_measured,
        mean_ms=result.io_response_ms,
        p99_ms=_pooled_p99_ms(result),
        wait_mean_ms=queueing.wait_mean_us / 1e3,
        bottleneck=queueing.bottleneck,
        bottleneck_util=(queueing.stations[queueing.bottleneck]
                         .utilization
                         if queueing.bottleneck else 0.0),
        station_util={name: s.utilization
                      for name, s in queueing.stations.items()},
        station_depth={name: s.mean_depth
                       for name, s in queueing.stations.items()})


def _rate_spec(base_spec, system_name: str, rate_rps: float,
               distribution: str, seed: int):
    """A RunSpec reproducing :func:`run_rate_point` exactly."""
    from dataclasses import replace

    return replace(base_spec, system=system_name, engine="event",
                   warmup_fraction=0.0, preload=True, flush_at_end=False,
                   load=("open", rate_rps, distribution, seed))


def calibrate_capacity(workload_factory, system_name: str,
                       ledger=None) -> float:
    """The system's saturation throughput (requests/s).

    One closed-loop run with enough zero-think clients to keep the
    bottleneck device permanently busy; its achieved rate is the
    ceiling every open-loop sweep point is measured against.
    """
    workload = workload_factory()
    system = make_system(system_name, workload)
    clients = max(4 * workload.io_concurrency, 16)
    load = ClosedLoopLoad(clients=clients, think_s=0.0)
    result = run_benchmark(workload, system, engine="event", load=load,
                           warmup_fraction=0.0, flush_at_end=False)
    if ledger is not None and getattr(ledger, "enabled", False):
        ledger.record(result, command="loadtest",
                      spec={"seed": getattr(workload, "seed", None),
                            "warmup_fraction": 0.0,
                            "load": ["closed", clients, 0.0]},
                      extra={"role": "calibrate",
                             "offered_rps": None})
    return result.requests_per_s


def auto_rates(capacity_rps: float, points: int,
               span: Tuple[float, float] = DEFAULT_SPAN) -> List[float]:
    """Linearly spaced offered rates bracketing the knee."""
    if points < 1:
        raise ValueError(f"need at least one sweep point, got {points}")
    lo, hi = span
    if not 0.0 < lo <= hi:
        raise ValueError(f"bad sweep span {span}")
    if points == 1:
        return [capacity_rps * (lo + hi) / 2.0]
    step = (hi - lo) / (points - 1)
    return [capacity_rps * (lo + i * step) for i in range(points)]


def sweep_rates(workload_factory, system_name: str,
                rates: Sequence[float],
                distribution: str = "poisson",
                seed: int = 1234, jobs: int = 1,
                base_spec=None, ledger=None) -> List[RatePoint]:
    """Measure each offered rate (ascending) on a fresh system.

    Rate points are independent runs, so with ``jobs > 1`` *and* a
    ``base_spec`` (a :class:`~repro.experiments.parallel.RunSpec`
    describing the workload declaratively — factories don't pickle)
    they fan out across worker processes; results are identical to the
    serial path either way.

    ``ledger`` records every probe under ``command="loadtest"`` —
    always in ascending-rate order, in this process, so the store is
    identical at any job count.
    """
    rates = sorted(rates)
    if jobs > 1 and base_spec is not None:
        from repro.experiments.parallel import run_specs

        specs = [_rate_spec(base_spec, system_name, rate, distribution,
                            seed) for rate in rates]
        outcomes = run_specs(specs, jobs=jobs)
        for rate, outcome in zip(rates, outcomes):
            _record_probe(ledger, outcome.result, seed, rate,
                          distribution, role="probe")
        return [_point_from_result(rate, outcome.result)
                for rate, outcome in zip(rates, outcomes)]
    return [run_rate_point(workload_factory, system_name, rate,
                           distribution=distribution, seed=seed,
                           ledger=ledger)[0]
            for rate in rates]


def find_knee(points: Sequence[RatePoint],
              efficiency: float = KNEE_EFFICIENCY) -> Optional[int]:
    """Index of the first sweep point past the saturation knee.

    The knee is where the system stops keeping up: the first offered
    rate achieving less than ``efficiency`` times the *first* point's
    achieved/offered ratio.  The relative baseline matters: a fixed
    arrival seed draws one pattern whose total span sits a few percent
    off nominal at every rate, so absolute efficiency is biased by a
    constant factor that the lowest (surely unsaturated) rate
    measures.  ``None`` when the whole sweep stayed under capacity.
    """
    if not points:
        return None
    baseline = points[0].efficiency
    for i, point in enumerate(points[1:], start=1):
        if point.efficiency < efficiency * baseline:
            return i
    return None


def render_curve(points: Sequence[RatePoint],
                 knee: Optional[int] = None,
                 width: int = 40) -> str:
    """The throughput/latency curve as an ASCII table with bars."""
    if not points:
        return "(no sweep points)"
    if knee is None:
        knee = find_knee(points)
    peak = max(p.achieved_rps for p in points) or 1.0
    lines = [f"{'offered':>10} {'achieved':>10} "
             f"{'':{width}} {'mean':>9} {'p99':>9} {'wait':>9}  "
             f"bottleneck"]
    for i, p in enumerate(points):
        bar = "#" * max(1, round(p.achieved_rps / peak * width))
        marker = "  <- knee" if knee is not None and i == knee else ""
        util = (f"{p.bottleneck} {p.bottleneck_util:.0%}"
                if p.bottleneck else "-")
        lines.append(
            f"{p.offered_rps:>10.0f} {p.achieved_rps:>10.0f} "
            f"{bar:<{width}} {p.mean_ms:>7.2f}ms {p.p99_ms:>7.2f}ms "
            f"{p.wait_mean_ms:>7.2f}ms  {util}{marker}")
    if knee is None:
        lines.append("no saturation knee inside the sweep — every rate "
                     "was achieved; raise the span")
    else:
        p = points[knee]
        lines.append(
            f"knee at ~{p.offered_rps:.0f} offered rps: achieved "
            f"{p.achieved_rps:.0f} rps ({p.efficiency:.0%}), "
            f"p99 {p.p99_ms:.2f} ms")
    return "\n".join(lines)


def export_curve_csv(points: Sequence[RatePoint],
                     destination: Union[str, TextIO]) -> int:
    """Write the sweep as CSV rows; returns the row count.

    Beyond the fixed columns, every station any point saw contributes a
    ``util_<station>`` (busy fraction) and ``depth_<station>`` (mean
    queue depth) column, so the file carries the full per-device
    queueing picture for offline analysis — no re-run needed to ask
    "what was the HDD doing at the knee".
    """
    stations = sorted({name for p in points for name in p.station_util})
    extra = [f"util_{name}" for name in stations] \
        + [f"depth_{name}" for name in stations]
    header = ("offered_rps,achieved_rps,n_measured,mean_ms,p99_ms,"
              "wait_mean_ms,bottleneck,bottleneck_util"
              + "".join("," + column for column in extra) + "\n")

    def _write(handle: TextIO) -> int:
        handle.write(header)
        for p in points:
            cells = [f"{p.offered_rps:.3f}", f"{p.achieved_rps:.3f}",
                     f"{p.n_measured}", f"{p.mean_ms:.6f}",
                     f"{p.p99_ms:.6f}", f"{p.wait_mean_ms:.6f}",
                     p.bottleneck or "", f"{p.bottleneck_util:.6f}"]
            cells += [f"{p.station_util.get(name, 0.0):.6f}"
                      for name in stations]
            cells += [f"{p.station_depth.get(name, 0.0):.6f}"
                      for name in stations]
            handle.write(",".join(cells) + "\n")
        return len(points)

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write(handle)
    return _write(destination)


# ---------------------------------------------------------------------------
# The experiments entry: every architecture at its own knee
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemKnee:
    """One architecture's saturation profile."""

    system: str
    capacity_rps: float
    #: Comfortably under the knee (low end of :data:`DEFAULT_SPAN`
    #: times capacity) and well past it (the high end).
    pre_knee: RatePoint
    post_knee: RatePoint


def compare_at_knee(workload_factory,
                    system_names: Sequence[str] = SYSTEM_NAMES,
                    distribution: str = "poisson",
                    seed: int = 1234,
                    progress: bool = False,
                    jobs: int = 1,
                    base_spec=None,
                    ledger=None) -> List[SystemKnee]:
    """Calibrate each architecture's capacity and probe both sides of
    its knee — the event-engine counterpart of the paper's Figure 6/10
    throughput comparisons.

    With ``jobs > 1`` and a declarative ``base_spec`` the work runs in
    two parallel waves: all capacity calibrations first (the probe
    rates depend on them), then every system's pre/post-knee probe.
    """
    if jobs > 1 and base_spec is not None:
        return _compare_at_knee_parallel(base_spec, system_names,
                                         distribution, seed, progress,
                                         jobs, ledger=ledger)
    reports = []
    for name in system_names:
        if progress:
            print(f"  calibrating {name}...", file=sys.stderr)
        capacity = calibrate_capacity(workload_factory, name,
                                      ledger=ledger)
        pre, _ = run_rate_point(workload_factory, name,
                                capacity * DEFAULT_SPAN[0],
                                distribution=distribution, seed=seed,
                                ledger=ledger)
        post, _ = run_rate_point(workload_factory, name,
                                 capacity * DEFAULT_SPAN[1],
                                 distribution=distribution, seed=seed,
                                 ledger=ledger)
        reports.append(SystemKnee(system=name, capacity_rps=capacity,
                                  pre_knee=pre, post_knee=post))
    return reports


def _compare_at_knee_parallel(base_spec, system_names: Sequence[str],
                              distribution: str, seed: int,
                              progress: bool,
                              jobs: int, ledger=None) -> List[SystemKnee]:
    """Parallel :func:`compare_at_knee`: calibrations, then probes."""
    from dataclasses import replace

    from repro.experiments.parallel import run_specs

    # Same client count calibrate_capacity derives (4x concurrency,
    # min 16); one throwaway workload build reads the concurrency.
    workload = base_spec.build_workload()
    clients = max(4 * workload.io_concurrency, 16)
    calibrations = [replace(base_spec, system=name, engine="event",
                            warmup_fraction=0.0, preload=True,
                            flush_at_end=False,
                            load=("closed", clients, 0.0))
                    for name in system_names]
    if progress:
        print(f"  calibrating {len(system_names)} systems "
              f"({jobs} jobs)...", file=sys.stderr)
    calibration_outcomes = run_specs(calibrations, jobs=jobs)
    recording = ledger is not None and getattr(ledger, "enabled", False)
    if recording:
        for outcome in calibration_outcomes:
            ledger.record(outcome.result, command="loadtest",
                          spec={"seed": base_spec.seed,
                                "warmup_fraction": 0.0,
                                "load": ["closed", clients, 0.0]},
                          extra={"role": "calibrate",
                                 "offered_rps": None},
                          host_wall_s=outcome.host_wall_s)
    capacities = [outcome.result.requests_per_s
                  for outcome in calibration_outcomes]
    probe_specs, probe_rates = [], []
    for name, capacity in zip(system_names, capacities):
        for fraction in DEFAULT_SPAN:
            rate = capacity * fraction
            probe_specs.append(_rate_spec(base_spec, name, rate,
                                          distribution, seed))
            probe_rates.append(rate)
    if progress:
        print(f"  probing {len(probe_specs)} knee points "
              f"({jobs} jobs)...", file=sys.stderr)
    probe_outcomes = run_specs(probe_specs, jobs=jobs)
    if recording:
        for rate, outcome in zip(probe_rates, probe_outcomes):
            _record_probe(ledger, outcome.result, seed, rate,
                          distribution, role="probe")
    points = [_point_from_result(rate, outcome.result)
              for rate, outcome in zip(probe_rates, probe_outcomes)]
    return [SystemKnee(system=name, capacity_rps=capacity,
                       pre_knee=points[2 * i], post_knee=points[2 * i + 1])
            for i, (name, capacity)
            in enumerate(zip(system_names, capacities))]


def render_comparison(reports: Sequence[SystemKnee]) -> str:
    """Side-by-side table, best capacity first."""
    lines = [f"{'system':<10} {'capacity':>10} {'pre-knee p99':>13} "
             f"{'post-knee p99':>14} {'bottleneck':>11}"]
    ranked = sorted(reports, key=lambda r: -r.capacity_rps)
    lines.extend(
        f"{r.system:<10} {r.capacity_rps:>8.0f}/s "
        f"{r.pre_knee.p99_ms:>11.2f}ms {r.post_knee.p99_ms:>12.2f}ms "
        f"{r.post_knee.bottleneck or '-':>11}"
        for r in ranked)
    best = ranked[0]
    lines.append(f"highest capacity: {best.system} at "
                 f"{best.capacity_rps:.0f} rps")
    return "\n".join(lines)
