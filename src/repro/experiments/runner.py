"""Closed-loop benchmark runner.

Replays one workload's request stream into one storage system, advancing
a virtual clock by service latencies and per-transaction application
compute.  Produces a :class:`RunResult` carrying every quantity the
paper's figures report: throughput, per-class response times, CPU
utilisation, energy and SSD write counts.

Two modelling choices bridge the gap between the paper's testbed and a
scaled trace replay:

* **Warmup window.**  The paper measures steady state over runs of
  hundreds of thousands to millions of requests, where cold compulsory
  misses are noise.  A scaled trace of a few thousand requests is *all*
  warmup unless excluded, so the first ``warmup_fraction`` of the stream
  populates caches and reference sets without being measured.
* **Concurrency.**  The real benchmarks drive many client streams
  (SysBench 16 threads, TPC-C 50 clients...), overlapping their I/O.
  Wall-clock time therefore takes aggregate device busy time divided by
  the workload's concurrency level, plus the serial application compute —
  the standard open-queue approximation.

Reads are optionally verified against the workload's shadow copy — the
end-to-end correctness check that makes the I-CASH numbers trustworthy
(a storage model that returned wrong bytes fast would be worthless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import StorageSystem
from repro.metrics.cpu import cpu_utilization
from repro.metrics.energy import EnergyReport, measure_energy
from repro.sim.engine import (EngineConfig, EventEngine,
                              QueueingSummary, StationSummary,
                              _CaptureTracer, service_items)
from repro.sim.load import default_closed_loop
from repro.sim.profile import RESIDUAL_PHASE, AttributionTable
from repro.sim.metrics import SeriesStore, SLOBreach
from repro.sim.stats import LatencyStats
from repro.workloads.base import Workload

#: The two wall-clock models ``run_benchmark`` accepts.
ENGINES = ("legacy", "event")


@dataclass
class RunResult:
    """Everything measured from one (workload, system) run.

    Latency and throughput fields cover the post-warmup measurement
    window; energy and SSD-write totals cover the whole run (the paper's
    power meter and write counters also ran for whole benchmarks).
    """

    workload: str
    system: str
    n_requests: int
    n_measured: int
    n_transactions: int
    #: Wall-clock of the measurement window (s).
    wall_time_s: float
    #: Wall-clock of the entire run including warmup (s).
    full_wall_time_s: float
    io_time_s: float
    app_cpu_s: float
    #: The CPU-busy part of ``app_cpu_s`` (the rest is waits/sleeps).
    app_cpu_busy_s: float
    storage_cpu_s: float
    background_s: float
    io_concurrency: int
    read_mean_us: float
    write_mean_us: float
    read_p99_us: float
    write_p99_us: float
    ssd_write_ops: int
    ssd_write_blocks: int
    energy: EnergyReport
    counters: Dict[str, int] = field(default_factory=dict)
    verified_reads: int = 0
    #: Windowed time series when a :class:`repro.sim.metrics.Monitor`
    #: was attached; None for plain runs.
    series: Optional[SeriesStore] = None
    #: SLO breaches the monitor's health rules flagged (empty without a
    #: monitor or when every window held).
    slo_breaches: List[SLOBreach] = field(default_factory=list)
    #: Which wall-clock model produced this result ("legacy" or
    #: "event").
    engine: str = "legacy"
    #: Per-station queueing behaviour of an ``engine="event"`` run
    #: (waits, utilisations, depths); None under the legacy model.
    queueing: Optional[QueueingSummary] = None
    #: Critical-path attribution when a
    #: :class:`repro.sim.profile.Profiler` was attached; None for
    #: plain runs.  Covers the post-warmup measurement window, same as
    #: the latency statistics.
    attribution: Optional[AttributionTable] = None
    #: Outcomes of an armed :class:`repro.sim.faults.FaultPlan`
    #: (a :class:`repro.sim.faults.FaultReport`); None when the run
    #: injected no faults.
    faults: Optional[object] = None

    @property
    def transactions_per_s(self) -> float:
        return self.n_transactions / self.wall_time_s \
            if self.wall_time_s else 0.0

    @property
    def requests_per_s(self) -> float:
        return self.n_measured / self.wall_time_s \
            if self.wall_time_s else 0.0

    @property
    def tx_response_ms(self) -> float:
        """Mean application-level transaction response time."""
        if not self.n_transactions:
            return 0.0
        return (self.io_time_s + self.app_cpu_s) \
            / self.n_transactions * 1e3

    @property
    def io_response_ms(self) -> float:
        """Mean block-request response time (ms), both classes pooled."""
        if not self.n_measured:
            return 0.0
        return self.io_time_s / self.n_measured * 1e3

    @property
    def cpu_utilization(self) -> float:
        """Host CPU utilisation over the measurement window.

        The storage stack's cycles (codec, hashing, scans) spread across
        the same cores the concurrent client streams run on, so they
        normalise by the concurrency level, like I/O time does.
        """
        return cpu_utilization(
            self.app_cpu_busy_s,
            self.storage_cpu_s / max(1, self.io_concurrency),
            self.wall_time_s)

    @property
    def loadsim_score(self) -> float:
        """LoadSim-style score: response-time based, lower is better.

        Defined as the mean transaction response time in microseconds —
        monotone in what LoadSim2003's weighted-response score measures.
        """
        return self.tx_response_ms * 1e3

    # -- worker transport --------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Plain-data snapshot for cross-process transport.

        Parallel experiment workers (:mod:`repro.experiments.parallel`)
        ship results back as payloads: scalars, nested dicts and lists
        only — no live tracer, registry or monitor state.  The windowed
        ``series``/``slo_breaches`` monitor products and fault-report
        objects are deliberately not carried (monitors and fault
        injection are interactive-run tooling; attach them
        to serial runs), and :meth:`from_payload` restores everything
        else bit-identically — floats cross pickle exactly.
        """
        payload: Dict[str, object] = {
            "workload": self.workload,
            "system": self.system,
            "n_requests": self.n_requests,
            "n_measured": self.n_measured,
            "n_transactions": self.n_transactions,
            "wall_time_s": self.wall_time_s,
            "full_wall_time_s": self.full_wall_time_s,
            "io_time_s": self.io_time_s,
            "app_cpu_s": self.app_cpu_s,
            "app_cpu_busy_s": self.app_cpu_busy_s,
            "storage_cpu_s": self.storage_cpu_s,
            "background_s": self.background_s,
            "io_concurrency": self.io_concurrency,
            "read_mean_us": self.read_mean_us,
            "write_mean_us": self.write_mean_us,
            "read_p99_us": self.read_p99_us,
            "write_p99_us": self.write_p99_us,
            "ssd_write_ops": self.ssd_write_ops,
            "ssd_write_blocks": self.ssd_write_blocks,
            "energy": {"hdd_j": self.energy.hdd_j,
                       "ssd_j": self.energy.ssd_j,
                       "cpu_j": self.energy.cpu_j},
            "counters": dict(self.counters),
            "verified_reads": self.verified_reads,
            "engine": self.engine,
            "queueing": None,
            "attribution": None,
        }
        if self.queueing is not None:
            q = self.queueing
            payload["queueing"] = {
                "duration_s": q.duration_s,
                "wait_mean_us": q.wait_mean_us,
                "wait_p99_us": q.wait_p99_us,
                "wait_max_us": q.wait_max_us,
                "stations": {
                    name: {"name": s.name, "slots": s.slots,
                           "busy_s": s.busy_s,
                           "background_s": s.background_s,
                           "utilization": s.utilization,
                           "served": s.served,
                           "mean_depth": s.mean_depth,
                           "max_depth": s.max_depth}
                    for name, s in q.stations.items()},
            }
        if self.attribution is not None:
            # Per-request (op, latency, items) in recording order,
            # *excluding* the derived (host, other) residual item: the
            # replay in from_payload recomputes it from the identical
            # floats, rebuilding rows and stats bit-identically.
            payload["attribution"] = [
                (r.op, r.latency_s,
                 [item for item in r.items
                  if item[:2] != ("host", RESIDUAL_PHASE)])
                for r in self.attribution.requests]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_payload` output."""
        data = dict(payload)
        energy = data.pop("energy")
        queueing = data.pop("queueing")
        attribution = data.pop("attribution")
        result = cls(energy=EnergyReport(**energy), **data)
        if queueing is not None:
            stations = {
                name: StationSummary(**fields)
                for name, fields in queueing["stations"].items()}
            result.queueing = QueueingSummary(
                duration_s=queueing["duration_s"],
                wait_mean_us=queueing["wait_mean_us"],
                wait_p99_us=queueing["wait_p99_us"],
                wait_max_us=queueing["wait_max_us"],
                stations=stations)
        if attribution is not None:
            table = AttributionTable()
            for op, latency_s, items in attribution:
                table.record_request(op, items, latency_s)
            result.attribution = table
        return result


def run_benchmark(workload: Workload, system: StorageSystem,
                  verify_reads: bool = False,
                  warmup_fraction: float = 0.25,
                  preload: bool = True,
                  flush_at_end: bool = True,
                  tracer=None,
                  monitor=None,
                  engine: str = "legacy",
                  load=None,
                  engine_config: Optional[EngineConfig] = None,
                  profiler=None,
                  fault_plan=None,
                  ledger=None
                  ) -> RunResult:
    """Replay ``workload`` into ``system`` and measure the run.

    ``preload`` runs the architecture's data-set organisation pass
    (:meth:`StorageSystem.ingest`) before the stream — the load phase
    every real benchmark performs — and excludes both its time and its
    device writes from the measured results.

    ``tracer`` (a :class:`repro.sim.trace.RingBufferTracer`) is attached
    *after* the ingest pass so the trace covers the benchmark stream
    itself rather than flooding the ring buffer with load-phase events.

    ``monitor`` (a :class:`repro.sim.metrics.Monitor`) likewise attaches
    after ingest; its sampler runs on the aggregate device-busy-time
    clock (``io_time_all``, the same virtual timeline trace spans lie
    on) and its series and SLO breaches land in the returned result.

    ``engine`` selects the wall-clock model.  The default ``"legacy"``
    is the open-queue approximation documented above and stays
    bit-identical run to run; ``"event"`` hands the stream to the
    discrete-event queueing engine (:mod:`repro.sim.engine`), where a
    ``load`` generator (:mod:`repro.sim.load`; default: a closed loop
    matching the workload's ``io_concurrency`` and per-I/O think time)
    times arrivals and per-request latency becomes ``queue_wait +
    service``.  Under ``"event"`` the monitor samples on the event
    clock and the result carries a :class:`QueueingSummary`.

    ``profiler`` (a :class:`repro.sim.profile.Profiler`) attributes
    each measured request's end-to-end latency to ``(device, phase)``
    pairs; its table lands in ``RunResult.attribution``.  Under the
    event engine the attribution includes exact per-station queue
    waits; under the legacy model it covers the service phases (queues
    do not exist there).

    ``fault_plan`` (a :class:`repro.sim.faults.FaultPlan`) arms fault
    injection: faults fire at their scheduled admission indices,
    repair work competes with foreground I/O through the station
    queues, and the outcomes land in ``RunResult.faults``.  Faults
    need the event timeline, so this requires ``engine="event"``.

    ``ledger`` (a :class:`repro.ledger.LedgerWriter`) appends the
    result — provenance plus a curated metric snapshot — to the
    persistent run store under ``command="run_benchmark"``.  The
    default (None, like :data:`repro.ledger.NULL_LEDGER`) records
    nothing and costs nothing (see docs/LEDGER.md).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick one of "
                         f"{ENGINES}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    if engine == "event":
        result = _run_event_benchmark(
            workload, system, verify_reads=verify_reads,
            warmup_fraction=warmup_fraction, preload=preload,
            flush_at_end=flush_at_end, tracer=tracer, monitor=monitor,
            load=load, engine_config=engine_config, profiler=profiler,
            fault_plan=fault_plan)
        _ledger_record(ledger, result, workload, warmup_fraction)
        return result
    if fault_plan is not None:
        raise ValueError("fault injection needs engine='event'; the "
                         "legacy model has no arrival timeline to "
                         "schedule faults on (see docs/RELIABILITY.md)")
    if load is not None:
        raise ValueError("load generators need engine='event'; the "
                         "legacy model has no arrival timeline")
    if preload:
        system.ingest()
    capture = None
    if profiler is not None and profiler.enabled:
        # Interpose the engine's capture tracer so each request's
        # service phases can be harvested for attribution; recorded
        # spans still reach the caller's tracer via replay.
        capture = _CaptureTracer(tracer)
        system.set_tracer(capture)
    elif tracer is not None:
        system.set_tracer(tracer)
    if monitor is not None:
        monitor.attach(system, workload)
    cpu_base = system.cpu_time
    ssd_writes_base = system.ssd_write_ops
    ssd_write_blocks_base = system.ssd_write_blocks
    n_total = getattr(workload, "n_requests", None)
    warmup_cutoff = int(n_total * warmup_fraction) if n_total else 0
    read_lat = LatencyStats()
    write_lat = LatencyStats()
    io_time_all = 0.0
    io_time_meas = 0.0
    cpu_at_warmup = 0.0
    bg_at_warmup = 0.0
    n_requests = 0
    n_measured = 0
    verified = 0
    for request in workload.requests():
        if n_requests == warmup_cutoff:
            cpu_at_warmup = system.cpu_time
            bg_at_warmup = system.background_time
        if verify_reads and request.is_read:
            latency, contents = system.process_read(request)
            shadow = workload.shadow
            for offset, content in enumerate(contents):
                expected = shadow[request.lba + offset]
                if not np.array_equal(content, expected):
                    raise AssertionError(
                        f"{system.name} returned wrong content for block "
                        f"{request.lba + offset} on request {n_requests}")
                verified += 1
        else:
            latency = system.process(request)
        if capture is not None:
            creq, entries, _bg = capture.take_request()
            if n_requests >= warmup_cutoff:
                profiler.record_request(creq[0],
                                        service_items(entries),
                                        latency)
            capture.replay(creq, entries, 0.0, latency)
        io_time_all += latency
        if monitor is not None:
            monitor.on_request(request.is_read, latency, io_time_all)
        n_requests += 1
        if n_requests > warmup_cutoff:
            io_time_meas += latency
            n_measured += 1
            if request.is_read:
                read_lat.record(latency)
            else:
                write_lat.record(latency)
    if flush_at_end:
        flush_latency = system.flush()
        io_time_all += flush_latency
        io_time_meas += flush_latency
    if monitor is not None:
        monitor.finish(io_time_all)
    concurrency = max(1, workload.io_concurrency)
    bg_meas = system.background_time - bg_at_warmup
    cpu_meas = system.cpu_time - cpu_at_warmup
    n_transactions = max(1, n_measured // workload.ios_per_transaction)
    app_cpu = n_transactions * workload.app_compute_per_tx
    # Background work (I-CASH's flushes and scans) runs on devices that
    # are otherwise idle on its critical path — that offload is the
    # architecture's point — so it shapes device busy time and energy but
    # not wall-clock.  Foreground I/O divides by client concurrency.
    wall = io_time_meas / concurrency + app_cpu
    full_tx = max(1, n_requests // workload.ios_per_transaction)
    full_app_cpu = full_tx * workload.app_compute_per_tx
    full_wall = io_time_all / concurrency + full_app_cpu \
        + system.background_time / concurrency
    result = RunResult(
        workload=workload.name,
        system=system.name,
        n_requests=n_requests,
        n_measured=n_measured,
        n_transactions=n_transactions,
        wall_time_s=wall,
        full_wall_time_s=full_wall,
        io_time_s=io_time_meas,
        app_cpu_s=app_cpu,
        app_cpu_busy_s=app_cpu * workload.app_cpu_fraction,
        storage_cpu_s=cpu_meas,
        background_s=bg_meas,
        io_concurrency=concurrency,
        read_mean_us=read_lat.mean_us,
        write_mean_us=write_lat.mean_us,
        read_p99_us=read_lat.percentile(99) * 1e6,
        write_p99_us=write_lat.percentile(99) * 1e6,
        ssd_write_ops=system.ssd_write_ops - ssd_writes_base,
        ssd_write_blocks=system.ssd_write_blocks - ssd_write_blocks_base,
        energy=measure_energy(
            system, full_wall,
            full_app_cpu * workload.app_cpu_fraction,
            storage_cpu_s=system.cpu_time - cpu_base),
        counters=system.stats.counters(),
        verified_reads=verified,
        series=monitor.store if monitor is not None else None,
        slo_breaches=list(monitor.breaches) if monitor is not None
        else [],
        attribution=profiler.table if profiler is not None else None)
    _ledger_record(ledger, result, workload, warmup_fraction)
    return result


def _ledger_record(ledger, result: RunResult, workload,
                   warmup_fraction: float) -> None:
    """Append a direct ``run_benchmark`` call to the run ledger.

    Duck-typed (no :mod:`repro.ledger` import): anything with an
    ``enabled`` flag and a ``record`` method works, and the None /
    NULL_LEDGER default short-circuits to nothing.
    """
    if ledger is None or not getattr(ledger, "enabled", False):
        return
    ledger.record(result, command="run_benchmark",
                  spec={"seed": getattr(workload, "seed", None),
                        "warmup_fraction": warmup_fraction})


def _run_event_benchmark(workload: Workload, system: StorageSystem,
                         verify_reads: bool,
                         warmup_fraction: float,
                         preload: bool,
                         flush_at_end: bool,
                         tracer,
                         monitor,
                         load,
                         engine_config: Optional[EngineConfig],
                         profiler=None,
                         fault_plan=None
                         ) -> RunResult:
    """The ``engine="event"`` half of :func:`run_benchmark`.

    Requests are still *processed* in stream order (so device state,
    block contents and service times match a legacy replay exactly);
    the event engine re-times them on an arrival/queue/service
    timeline.  Wall-clock is event time over the measurement window,
    ``io_time_s`` is the sum of response times (wait + service), and
    warmup is cut by admission index exactly like the legacy path.
    """
    if preload:
        system.ingest()
    if monitor is not None:
        monitor.attach(system, workload)
    if load is None:
        load = default_closed_loop(workload)
    sim = EventEngine(system, config=engine_config,
                      downstream_tracer=tracer, profiler=profiler)
    if monitor is not None:
        sim.register_metrics(monitor.registry)
    injector = None
    if fault_plan is not None:
        from repro.sim.faults import FaultInjector

        injector = FaultInjector(
            fault_plan, system, sim,
            registry=monitor.registry if monitor is not None else None)
        sim.attach_faults(injector)
    cpu_base = system.cpu_time
    ssd_writes_base = system.ssd_write_ops
    ssd_write_blocks_base = system.ssd_write_blocks
    n_total = getattr(workload, "n_requests", None)
    warmup_cutoff = int(n_total * warmup_fraction) if n_total else 0
    warmup_state = {"cpu": 0.0, "bg": 0.0}

    def on_admit(index: int) -> None:
        if index == warmup_cutoff:
            warmup_state["cpu"] = system.cpu_time
            warmup_state["bg"] = system.background_time

    def on_complete(record) -> None:
        if monitor is not None:
            monitor.on_request(record.is_read, record.latency_s,
                               sim.now)

    records = sim.run(workload, load, verify_reads=verify_reads,
                      on_admit=on_admit, on_complete=on_complete,
                      profile_from=warmup_cutoff)
    queueing = sim.summary()
    # Two clocks: ``t_full`` runs until the heap drains (deferred
    # background included); the throughput window closes at the last
    # request completion — trailing background is off the critical
    # path, exactly as the legacy model treats it.
    t_full = sim.t_end
    t_last = sim.last_completion_s
    read_lat = LatencyStats()
    write_lat = LatencyStats()
    io_time_all = 0.0
    io_time_meas = 0.0
    n_measured = 0
    verified = 0
    for record in records:
        io_time_all += record.latency_s
        verified += record.verified
        if record.index >= warmup_cutoff:
            io_time_meas += record.latency_s
            n_measured += 1
            if record.is_read:
                read_lat.record(record.latency_s)
            else:
                write_lat.record(record.latency_s)
    if flush_at_end:
        flush_latency = system.flush()
        io_time_all += flush_latency
        io_time_meas += flush_latency
        t_full += flush_latency
        t_last += flush_latency
    if monitor is not None:
        monitor.finish(t_full)
    # The measurement window opens when the first measured request
    # arrives and closes when the last completion (plus any final
    # flush) lands on the event clock.
    if len(records) > warmup_cutoff:
        t_meas_start = records[warmup_cutoff].arrival_s
    else:
        t_meas_start = t_last
    wall = t_last - t_meas_start
    bg_meas = system.background_time - warmup_state["bg"]
    cpu_meas = system.cpu_time - warmup_state["cpu"]
    n_transactions = max(1, n_measured // workload.ios_per_transaction)
    app_cpu = n_transactions * workload.app_compute_per_tx
    full_tx = max(1, len(records) // workload.ios_per_transaction)
    full_app_cpu = full_tx * workload.app_compute_per_tx
    return RunResult(
        workload=workload.name,
        system=system.name,
        n_requests=len(records),
        n_measured=n_measured,
        n_transactions=n_transactions,
        wall_time_s=wall,
        full_wall_time_s=t_full,
        io_time_s=io_time_meas,
        app_cpu_s=app_cpu,
        app_cpu_busy_s=app_cpu * workload.app_cpu_fraction,
        storage_cpu_s=cpu_meas,
        background_s=bg_meas,
        io_concurrency=workload.io_concurrency,
        read_mean_us=read_lat.mean_us,
        write_mean_us=write_lat.mean_us,
        read_p99_us=read_lat.percentile(99) * 1e6,
        write_p99_us=write_lat.percentile(99) * 1e6,
        ssd_write_ops=system.ssd_write_ops - ssd_writes_base,
        ssd_write_blocks=system.ssd_write_blocks - ssd_write_blocks_base,
        energy=measure_energy(
            system, t_full,
            full_app_cpu * workload.app_cpu_fraction,
            storage_cpu_s=system.cpu_time - cpu_base),
        counters=system.stats.counters(),
        verified_reads=verified,
        series=monitor.store if monitor is not None else None,
        slo_breaches=list(monitor.breaches) if monitor is not None
        else [],
        engine="event",
        queueing=queueing,
        attribution=profiler.table if profiler is not None else None,
        faults=injector.report() if injector is not None else None)


def run_grid(workload_factory, system_names,
             verify_reads: bool = False,
             warmup_fraction: float = 0.25) -> Dict[str, RunResult]:
    """Run one workload across several architectures.

    ``workload_factory`` must build a *fresh* workload per call (streams
    are restartable, but a fresh instance keeps shadow state per system
    when verification is on).  Returns ``{system name: RunResult}``.
    """
    from repro.experiments.systems import make_system

    results: Dict[str, RunResult] = {}
    for name in system_names:
        workload = workload_factory()
        system = make_system(name, workload)
        results[name] = run_benchmark(workload, system,
                                      verify_reads=verify_reads,
                                      warmup_fraction=warmup_fraction)
    return results
