"""Experiment harness regenerating every table and figure.

* :mod:`repro.experiments.systems` — builds the five storage
  architectures of Section 4.4 for a given workload (same SSD budget
  rules as the paper).
* :mod:`repro.experiments.runner` — closed-loop trace replay with
  transaction accounting; produces one :class:`RunResult` per
  (workload, system) pair.
* :mod:`repro.experiments.paperdata` — the numbers the paper reports, for
  side-by-side comparison.
* :mod:`repro.experiments.figures` — one function per figure/table.
* :mod:`repro.experiments.report` — text rendering of
  measured-vs-paper tables.
* :mod:`repro.experiments.loadtest` — open-loop arrival-rate sweeps
  over the discrete-event engine: saturation knees, throughput/latency
  curves, and the all-architectures knee comparison.
"""

from repro.experiments.loadtest import (RatePoint, SystemKnee,
                                        calibrate_capacity,
                                        compare_at_knee, find_knee,
                                        render_curve, sweep_rates)
from repro.experiments.runner import RunResult, run_benchmark
from repro.experiments.systems import SYSTEM_NAMES, make_system

__all__ = [
    "RatePoint",
    "RunResult",
    "SYSTEM_NAMES",
    "SystemKnee",
    "calibrate_capacity",
    "compare_at_knee",
    "find_knee",
    "make_system",
    "render_curve",
    "run_benchmark",
    "sweep_rates",
]
