"""One entry point per paper figure and table.

Each ``figure*`` function runs the relevant workload across the five
architectures (sharing runs between sub-figures of the same benchmark)
and returns a :class:`FigureResult` holding the measured values, the
paper's published values, and rendering/shape-check helpers.

Absolute values are not expected to match the paper (the substrate is a
simulator, the workloads synthetic, the scale 1/30th); the deliverable is
the *shape*: who wins, by roughly what factor, and where the crossovers
fall.  :meth:`FigureResult.shape_score` quantifies exactly that — the
fraction of the paper's pairwise system orderings the reproduction
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import paperdata
from repro.experiments.report import (comparison_table, normalize,
                                      render_shape_check, shape_score)
from repro.experiments.runner import RunResult, run_grid
from repro.experiments.systems import SYSTEM_NAMES
from repro.workloads import (HadoopWorkload, LoadSimWorkload,
                             MultiVMWorkload, RUBiSWorkload,
                             SpecSFSWorkload, SysBenchWorkload,
                             TPCCWorkload)

#: Default request count per benchmark run; benches may raise it.
DEFAULT_REQUESTS = 10000
#: Default seed (the paper's publication year, naturally).
DEFAULT_SEED = 2011
#: Warmup fraction excluded from measurement.
DEFAULT_WARMUP = 0.4


@dataclass
class FigureResult:
    """Measured-vs-paper outcome of one figure."""

    figure: str
    title: str
    metric: str
    better: str
    measured: Dict[str, float]
    paper: Dict[str, float]
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def shape_score(self) -> float:
        """Fraction of the paper's pairwise orderings preserved."""
        return shape_score(self.measured, self.paper)

    def render(self) -> str:
        table = comparison_table(
            f"{self.figure}: {self.title}", SYSTEM_NAMES, self.measured,
            self.paper, unit=self.metric, better=self.better,
            precision=2)
        return table + "\n" + render_shape_check(self.measured, self.paper)

    def render_bars(self) -> str:
        """The figure as the paper draws it: horizontal bars, measured
        (solid) over the paper's series (light)."""
        from repro.experiments.plotting import ascii_bars
        header = f"{self.figure}: {self.title} ({self.better} is better)"
        bars = ascii_bars(self.measured, SYSTEM_NAMES, unit=self.metric,
                          reference=self.paper)
        return f"{header}\n{bars}"


def record_figure(ledger, result: FigureResult,
                  seed: int = DEFAULT_SEED) -> int:
    """Append a figure's per-system runs to the run ledger.

    One row per architecture under ``command="figure"`` with the
    figure name in ``extra`` — so trends can filter one system out of
    one figure's history.  Duck-typed; the None / NULL_LEDGER default
    records nothing.  Returns the number of rows appended.
    """
    if ledger is None or not getattr(ledger, "enabled", False):
        return 0
    recorded = 0
    for system, run in sorted(result.runs.items()):
        ledger.record(run, command="figure",
                      spec={"seed": seed,
                            "warmup_fraction": DEFAULT_WARMUP},
                      extra={"figure": result.figure,
                             "system": system,
                             "metric": result.metric})
        recorded += 1
    return recorded


# ----------------------------------------------------------------------
# Shared run cache: Figure 6(a), 6(b) and 7 all come from one SysBench
# grid; rerunning it per sub-figure would triple the cost.
# ----------------------------------------------------------------------

_GRID_CACHE: Dict[Tuple, Dict[str, RunResult]] = {}

#: All figure grids run the legacy engine; part of the cache key so a
#: future engine-parameterised figure cannot collide with these runs.
_GRID_ENGINE = "legacy"


def _grid_key(workload_name: str, n_requests: int, seed: int) -> Tuple:
    """Cache key covering *every* parameter that shapes a grid's runs.

    Engine and warmup fraction are constants today, but they change the
    measured numbers, so they belong in the key — a cache keyed only on
    (workload, n_requests, seed) would silently serve stale results if
    either ever varied.
    """
    return (workload_name, n_requests, seed, _GRID_ENGINE, DEFAULT_WARMUP)


def _grid(workload_name: str, factory: Callable, n_requests: int,
          seed: int) -> Dict[str, RunResult]:
    key = _grid_key(workload_name, n_requests, seed)
    cached = _GRID_CACHE.setdefault(key, {})
    if any(name not in cached for name in SYSTEM_NAMES):
        fresh = run_grid(factory, SYSTEM_NAMES,
                         warmup_fraction=DEFAULT_WARMUP)
        cached.update(fresh)
    # Fixed iteration order regardless of how cells were filled in
    # (serial run_grid vs. parallel prewarm).
    return {name: cached[name] for name in SYSTEM_NAMES}


def clear_cache() -> None:
    """Drop memoised grids (tests use this to force fresh runs)."""
    _GRID_CACHE.clear()


# ----------------------------------------------------------------------
# Parallel prewarm: every figure reads from a (workload, systems) grid,
# and the grid cells are independent runs — ideal fan-out units.
# ----------------------------------------------------------------------

#: Single-workload grid behind each figure.
_FIGURE_FAMILY: Dict[str, str] = {
    "figure6a": "sysbench", "figure6b": "sysbench",
    "figure8a": "hadoop", "figure8b": "hadoop",
    "figure10a": "tpcc", "figure10b": "tpcc", "figure11": "tpcc",
    "figure12": "loadsim", "figure13": "specsfs", "figure14": "rubis",
}

#: Multi-VM figures pin their own request counts (2500/VM × 5 VMs).
_FIGURE_MULTIVM: Dict[str, str] = {"figure15": "tpcc", "figure16": "rubis"}


def grid_requirements(names, n_requests: int = DEFAULT_REQUESTS,
                      seed: int = DEFAULT_SEED):
    """The distinct grid cells the named figures will consult.

    Returns ``[(cache_key, system_name, RunSpec), ...]`` — one entry per
    (grid, system) pair, deduplicated, in deterministic order.  The
    specs reproduce :func:`run_grid`'s behaviour exactly (legacy engine,
    default warmup, fresh workload per system), so a prewarmed cell is
    bit-identical to one the figure would have computed itself.
    """
    from repro.experiments.parallel import RunSpec

    cells = []
    seen = set()
    for name in names:
        if name in _FIGURE_FAMILY:
            family = _FIGURE_FAMILY[name]
            key = _grid_key(family, n_requests, seed)
            base = dict(workload=family, n_requests=n_requests, seed=seed)
        elif name in _FIGURE_MULTIVM:
            family = _FIGURE_MULTIVM[name]
            per_vm, n_vms = 2500, 5
            key = _grid_key(f"{family}-{n_vms}vms", per_vm * n_vms, seed)
            base = dict(workload=family, n_vms=n_vms, n_requests=per_vm,
                        seed=seed)
        else:
            raise KeyError(f"unknown figure {name!r}")
        for system in SYSTEM_NAMES:
            cell = key + (system,)
            if cell in seen:
                continue
            seen.add(cell)
            cells.append((key, system,
                          RunSpec(system=system, engine=_GRID_ENGINE,
                                  warmup_fraction=DEFAULT_WARMUP, **base)))
    return cells


def prewarm(names, n_requests: int = DEFAULT_REQUESTS,
            seed: int = DEFAULT_SEED, jobs: int = 1,
            progress: Optional[Callable] = None) -> int:
    """Run (in parallel when ``jobs > 1``) every grid cell the named
    figures need that is not already cached, and install the results.

    Figure functions called afterwards hit the cache and return
    instantly.  Returns the number of cells actually run.
    """
    from repro.experiments.parallel import run_specs

    todo = [(key, system, spec)
            for key, system, spec in grid_requirements(names, n_requests,
                                                       seed)
            if system not in _GRID_CACHE.get(key, {})]
    if not todo:
        return 0
    outcomes = run_specs([spec for _, _, spec in todo], jobs=jobs,
                         progress=progress)
    for (key, system, _), outcome in zip(todo, outcomes):
        _GRID_CACHE.setdefault(key, {})[system] = outcome.result
    return len(todo)


def _sysbench(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("sysbench",
                 lambda: SysBenchWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _hadoop(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("hadoop",
                 lambda: HadoopWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _tpcc(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("tpcc",
                 lambda: TPCCWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _loadsim(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("loadsim",
                 lambda: LoadSimWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _specsfs(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("specsfs",
                 lambda: SpecSFSWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _rubis(n_requests: int, seed: int) -> Dict[str, RunResult]:
    return _grid("rubis",
                 lambda: RUBiSWorkload(n_requests=n_requests, seed=seed),
                 n_requests, seed)


def _metric(runs: Dict[str, RunResult],
            getter: Callable[[RunResult], float]) -> Dict[str, float]:
    return {name: getter(run) for name, run in runs.items()}


# ----------------------------------------------------------------------
# SysBench: Figures 6(a), 6(b), 7
# ----------------------------------------------------------------------

def figure6a(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _sysbench(n_requests, seed)
    return FigureResult(
        "Figure 6(a)", "SysBench transaction rate", "tx/s", "higher",
        _metric(runs, lambda r: r.transactions_per_s),
        paperdata.FIG6A_SYSBENCH_TPS, runs)


def figure6b(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _sysbench(n_requests, seed)
    return FigureResult(
        "Figure 6(b)", "SysBench CPU utilisation", "fraction", "lower",
        _metric(runs, lambda r: r.cpu_utilization),
        paperdata.FIG6B_SYSBENCH_CPU, runs)


def figure7(n_requests: int = DEFAULT_REQUESTS,
            seed: int = DEFAULT_SEED) -> Tuple[FigureResult, FigureResult]:
    runs = _sysbench(n_requests, seed)
    read = FigureResult(
        "Figure 7 (read)", "SysBench read response time", "µs", "lower",
        _metric(runs, lambda r: r.read_mean_us),
        paperdata.FIG7_SYSBENCH_READ_US, runs)
    write = FigureResult(
        "Figure 7 (write)", "SysBench write response time", "µs", "lower",
        _metric(runs, lambda r: r.write_mean_us),
        paperdata.FIG7_SYSBENCH_WRITE_US, runs)
    return read, write


# ----------------------------------------------------------------------
# Hadoop: Figures 8(a), 8(b), 9
# ----------------------------------------------------------------------

def figure8a(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _hadoop(n_requests, seed)
    return FigureResult(
        "Figure 8(a)", "Hadoop execution time", "s", "lower",
        _metric(runs, lambda r: r.wall_time_s),
        paperdata.FIG8A_HADOOP_TIME_S, runs)


def figure8b(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _hadoop(n_requests, seed)
    return FigureResult(
        "Figure 8(b)", "Hadoop CPU utilisation", "fraction", "lower",
        _metric(runs, lambda r: r.cpu_utilization),
        paperdata.FIG8B_HADOOP_CPU, runs)


def figure9(n_requests: int = DEFAULT_REQUESTS,
            seed: int = DEFAULT_SEED) -> Tuple[FigureResult, FigureResult]:
    runs = _hadoop(n_requests, seed)
    read = FigureResult(
        "Figure 9 (read)", "Hadoop read response time", "µs", "lower",
        _metric(runs, lambda r: r.read_mean_us),
        paperdata.FIG9_HADOOP_READ_US, runs)
    write = FigureResult(
        "Figure 9 (write)", "Hadoop write response time", "µs", "lower",
        _metric(runs, lambda r: r.write_mean_us),
        paperdata.FIG9_HADOOP_WRITE_US, runs)
    return read, write


# ----------------------------------------------------------------------
# TPC-C: Figures 10(a), 10(b), 11
# ----------------------------------------------------------------------

def figure10a(n_requests: int = DEFAULT_REQUESTS,
              seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _tpcc(n_requests, seed)
    return FigureResult(
        "Figure 10(a)", "TPC-C transaction rate", "tx/s", "higher",
        _metric(runs, lambda r: r.transactions_per_s),
        paperdata.FIG10A_TPCC_TPS, runs)


def figure10b(n_requests: int = DEFAULT_REQUESTS,
              seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _tpcc(n_requests, seed)
    return FigureResult(
        "Figure 10(b)", "TPC-C CPU utilisation", "fraction", "lower",
        _metric(runs, lambda r: r.cpu_utilization),
        paperdata.FIG10B_TPCC_CPU, runs)


def figure11(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _tpcc(n_requests, seed)
    return FigureResult(
        "Figure 11", "TPC-C application response time", "ms", "lower",
        _metric(runs, lambda r: r.tx_response_ms),
        paperdata.FIG11_TPCC_RSP_MS, runs)


# ----------------------------------------------------------------------
# LoadSim, SPEC-sfs, RUBiS: Figures 12, 13, 14
# ----------------------------------------------------------------------

def figure12(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _loadsim(n_requests, seed)
    return FigureResult(
        "Figure 12", "LoadSim score (response-time based)", "score",
        "lower",
        _metric(runs, lambda r: r.loadsim_score),
        paperdata.FIG12_LOADSIM_SCORE, runs)


def figure13(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _specsfs(n_requests, seed)
    return FigureResult(
        "Figure 13", "SPEC-sfs response time", "ms", "lower",
        _metric(runs, lambda r: r.io_response_ms),
        paperdata.FIG13_SPECSFS_RSP_MS, runs)


def figure14(n_requests: int = DEFAULT_REQUESTS,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _rubis(n_requests, seed)
    return FigureResult(
        "Figure 14", "RUBiS request rate", "req/s", "higher",
        _metric(runs, lambda r: r.requests_per_s),
        paperdata.FIG14_RUBIS_RPS, runs)


# ----------------------------------------------------------------------
# Multi-VM: Figures 15, 16
# ----------------------------------------------------------------------

def _multivm_grid(workload_cls, n_vms: int, per_vm_requests: int,
                  seed: int) -> Dict[str, RunResult]:
    name = f"{workload_cls.name}-{n_vms}vms"
    return _grid(name,
                 lambda: MultiVMWorkload(
                     workload_cls, n_vms=n_vms, scale=0.25,
                     n_requests_per_vm=per_vm_requests, seed=seed),
                 per_vm_requests * n_vms, seed)


def figure15(per_vm_requests: int = 2500, n_vms: int = 5,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _multivm_grid(TPCCWorkload, n_vms, per_vm_requests, seed)
    measured = normalize(_metric(runs, lambda r: r.transactions_per_s))
    return FigureResult(
        "Figure 15", f"{n_vms} TPC-C VMs, normalised transaction rate",
        "x fusion-io", "higher", measured,
        paperdata.FIG15_TPCC_5VMS_NORM, runs)


def figure16(per_vm_requests: int = 2500, n_vms: int = 5,
             seed: int = DEFAULT_SEED) -> FigureResult:
    runs = _multivm_grid(RUBiSWorkload, n_vms, per_vm_requests, seed)
    measured = normalize(_metric(runs, lambda r: r.requests_per_s))
    return FigureResult(
        "Figure 16", f"{n_vms} RUBiS VMs, normalised request rate",
        "x fusion-io", "higher", measured,
        paperdata.FIG16_RUBIS_5VMS_NORM, runs)


# ----------------------------------------------------------------------
# Tables 5 and 6
# ----------------------------------------------------------------------

def table5(n_requests: int = DEFAULT_REQUESTS,
           seed: int = DEFAULT_SEED) -> Dict[str, FigureResult]:
    """Energy (Wh) for Hadoop and TPC-C, per architecture."""
    out: Dict[str, FigureResult] = {}
    for bench, runs_fn in (("hadoop", _hadoop), ("tpcc", _tpcc)):
        runs = runs_fn(n_requests, seed)
        out[bench] = FigureResult(
            "Table 5", f"Energy for {bench}", "Wh", "lower",
            _metric(runs, lambda r: r.energy.total_wh),
            paperdata.TABLE5_ENERGY_WH[bench], runs)
    return out


def table6(n_requests: int = DEFAULT_REQUESTS,
           seed: int = DEFAULT_SEED) -> Dict[str, FigureResult]:
    """Runtime SSD write operations for the four write-heavy benchmarks."""
    benches = (("sysbench", _sysbench), ("hadoop", _hadoop),
               ("tpcc", _tpcc), ("specsfs", _specsfs))
    out: Dict[str, FigureResult] = {}
    for bench, runs_fn in benches:
        runs = runs_fn(n_requests, seed)
        measured = {name: float(run.ssd_write_ops)
                    for name, run in runs.items() if name != "raid0"}
        out[bench] = FigureResult(
            "Table 6", f"SSD write requests, {bench}", "writes", "lower",
            measured, paperdata.TABLE6_SSD_WRITES[bench], runs)
    return out


#: Every single-result figure, for "run them all" loops.
ALL_FIGURES: Dict[str, Callable[[], FigureResult]] = {
    "figure6a": figure6a,
    "figure6b": figure6b,
    "figure8a": figure8a,
    "figure8b": figure8b,
    "figure10a": figure10a,
    "figure10b": figure10b,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
}
