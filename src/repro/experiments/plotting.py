"""Terminal rendering of the paper's bar charts.

Every evaluation figure in the paper is a horizontal bar chart; these
helpers reproduce that presentation in plain text so a bench run reads
like the paper's Section 5 — measured bars with the paper's bars
alongside for eyeballing shape.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: Width of the bar area, in characters.
BAR_WIDTH = 42
_FULL = "█"
_PAPER = "░"


def ascii_bars(values: Dict[str, float], order: Sequence[str],
               unit: str = "", width: int = BAR_WIDTH,
               reference: Optional[Dict[str, float]] = None) -> str:
    """Horizontal bars for ``values``, optionally with reference bars.

    Measured bars use a solid glyph; the reference (paper) series, when
    given, renders beneath each measured bar in a light glyph, scaled to
    its own maximum so the two series' *shapes* are comparable even when
    the absolute scales differ wildly.
    """
    rows = [name for name in order if name in values]
    if not rows:
        return "(no data)"
    max_measured = max(values[name] for name in rows) or 1.0
    max_reference = None
    if reference:
        present = [reference[name] for name in rows if name in reference]
        max_reference = max(present) if present else None
    label_width = max(len(name) for name in rows)
    lines = []
    for name in rows:
        value = values[name]
        bar = _FULL * max(1, round(value / max_measured * width)) \
            if value > 0 else ""
        lines.append(f"{name:<{label_width}} |{bar:<{width}}| "
                     f"{value:,.2f} {unit}".rstrip())
        if reference and name in reference and max_reference:
            ref = reference[name]
            ref_bar = _PAPER * max(1, round(ref / max_reference * width)) \
                if ref > 0 else ""
            lines.append(f"{'paper':>{label_width}} |{ref_bar:<{width}}| "
                         f"{ref:,.2f} {unit}".rstrip())
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """A one-line trend of a numeric series (sweep outputs)."""
    glyphs = "▁▂▃▄▅▆▇█"
    if not series:
        return ""
    low = min(series)
    high = max(series)
    span = (high - low) or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1,
                   int((value - low) / span * (len(glyphs) - 1)))]
        for value in series)
