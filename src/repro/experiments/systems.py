"""Factories for the five storage architectures of Section 4.4.

Provisioning rules follow the paper:

* **fusion-io** (pure SSD) gets enough flash for the whole data set;
* **raid0** gets four striped disks;
* **dedup**, **lru** and **icash** get the *same* SSD budget — about one
  tenth of the workload's data set (``Workload.ssd_budget_blocks``);
* **icash** additionally gets a RAM delta buffer sized like the
  prototype's (a fraction of the SSD budget).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import (DedupCacheStorage, LRUCacheStorage, PureSSD,
                             RAID0Storage, StorageSystem)
from repro.core import ICASHConfig, ICASHController
from repro.sim.request import BLOCK_SIZE
from repro.workloads.base import Workload

#: Display order used throughout the figures (matches the paper's).
SYSTEM_NAMES = ("fusion-io", "raid0", "dedup", "lru", "icash")


def make_icash_config(workload: Workload) -> ICASHConfig:
    """I-CASH tuning for a workload, scaled like the prototype's.

    The prototype pairs its SSD budget with a delta buffer of roughly a
    quarter of the SSD size (e.g. 128 MB SSD + 32 MB RAM for SysBench,
    512 MB + 256 MB for Hadoop) and a data cache of similar order.
    """
    ssd_blocks = workload.ssd_budget_blocks
    # Sized so the steady-state delta population fits in RAM (the
    # prototype reports caching all deltas; our synthetic blocks carry
    # more per-block noise, hence the x2 headroom over the SSD budget).
    delta_ram = max(1 << 19, 2 * ssd_blocks * BLOCK_SIZE)
    data_ram = max(1 << 19, ssd_blocks * BLOCK_SIZE)
    # The paper scans every 2 000 I/Os over runs of millions of requests;
    # simulation traces are thousands of requests, so the interval scales
    # down proportionally to give the similarity detector a comparable
    # number of passes over the working set.
    n_requests = getattr(workload, "n_requests", None)
    if n_requests is None:  # composed workloads (multi-VM)
        n_requests = sum(vm.n_requests for vm in getattr(workload, "vms", ())) or 8000
    scan_interval = max(200, min(2000, n_requests // 16))
    return ICASHConfig(
        ssd_capacity_blocks=ssd_blocks,
        data_ram_bytes=data_ram,
        delta_ram_bytes=delta_ram,
        max_virtual_blocks=max(8192, 2 * workload.n_blocks),
        log_blocks=max(4096, workload.n_blocks),
        scan_interval=scan_interval,
        scan_window=4000)


def make_system(name: str, workload: Workload) -> StorageSystem:
    """Instantiate architecture ``name`` initialised with the workload's
    pristine data set."""
    dataset = workload.build_dataset()
    builders: Dict[str, Callable[[], StorageSystem]] = {
        "fusion-io": lambda: PureSSD(dataset),
        "raid0": lambda: RAID0Storage(dataset, ndisks=4),
        "dedup": lambda: DedupCacheStorage(
            dataset, cache_blocks=workload.ssd_budget_blocks),
        "lru": lambda: LRUCacheStorage(
            dataset, cache_blocks=workload.ssd_budget_blocks),
        "icash": lambda: ICASHController(
            dataset, make_icash_config(workload)),
    }
    if name not in builders:
        raise ValueError(
            f"unknown system {name!r}; expected one of {SYSTEM_NAMES}")
    return builders[name]()
