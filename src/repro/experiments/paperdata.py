"""The numbers the paper reports, figure by figure.

Stored verbatim from Section 5 so every bench prints measured-vs-paper
side by side.  System order everywhere: fusion-io, raid0, dedup, lru,
icash (the paper's bar order).
"""

from __future__ import annotations

from typing import Dict, Tuple

SYSTEMS: Tuple[str, ...] = ("fusion-io", "raid0", "dedup", "lru", "icash")


def _by_system(values) -> Dict[str, float]:
    return dict(zip(SYSTEMS, values))


# Figure 6(a): SysBench transactions per second.
FIG6A_SYSBENCH_TPS = _by_system((180, 85, 161, 175, 190))
# Figure 6(b): SysBench CPU utilisation.
FIG6B_SYSBENCH_CPU = _by_system((0.52, 0.53, 0.53, 0.56, 0.55))
# Figure 7: SysBench block-level response times (µs).
FIG7_SYSBENCH_READ_US = _by_system((35, 192, 71, 36, 18))
FIG7_SYSBENCH_WRITE_US = _by_system((75, 1156, 106, 122, 7))

# Figure 8(a): Hadoop execution time (s).
FIG8A_HADOOP_TIME_S = _by_system((24, 32, 26, 25, 18))
# Figure 8(b): Hadoop CPU utilisation.
FIG8B_HADOOP_CPU = _by_system((0.83, 0.73, 0.82, 0.84, 0.86))
# Figure 9: Hadoop block-level response times (µs).
FIG9_HADOOP_READ_US = _by_system((1311, 3959, 1712, 1699, 1368))
FIG9_HADOOP_WRITE_US = _by_system((7301, 3244, 7520, 7405, 586))

# Figure 10(a): TPC-C transactions per second.
FIG10A_TPCC_TPS = _by_system((51, 40, 49, 50, 58))
# Figure 10(b): TPC-C CPU utilisation.
FIG10B_TPCC_CPU = _by_system((0.51, 0.41, 0.52, 0.61, 0.62))
# Figure 11: TPC-C application-level response time (ms).
FIG11_TPCC_RSP_MS = _by_system((6.6, 14, 12, 7.1, 2.6))

# Figure 12: LoadSim score (lower is better).
FIG12_LOADSIM_SCORE = _by_system((1803, 5340, 3259, 3002, 2263))

# Figure 13: SPEC-sfs response time (ms).
FIG13_SPECSFS_RSP_MS = _by_system((1.4, 1.8, 2.1, 2.1, 1.5))

# Figure 14: RUBiS requests per second.
FIG14_RUBIS_RPS = _by_system((84, 48, 59, 73, 76))

# Figure 15: five TPC-C VMs, transactions/s normalised to fusion-io.
FIG15_TPCC_5VMS_NORM = _by_system((1.0, 0.4, 0.5, 0.4, 2.8))
# Figure 16: five RUBiS VMs, requests/s normalised to fusion-io.
FIG16_RUBIS_5VMS_NORM = _by_system((1.0, 0.2, 0.3, 0.3, 1.2))

# Table 5: energy in watt-hours (no LRU/Dedup column for TPC-C missing —
# the paper lists all five; transcribed in full).
TABLE5_ENERGY_WH = {
    "hadoop": _by_system((8, 24, 10, 10, 7)),
    "tpcc": _by_system((11, 28, 11, 12, 11)),
}

# Table 6: number of write requests on SSD (no RAID0 column — RAID0 has
# no SSD).
TABLE6_SSD_WRITES = {
    "sysbench": {"fusion-io": 893_700, "dedup": 1_419_023,
                 "lru": 1_494_220, "icash": 232_452},
    "hadoop": {"fusion-io": 2_540_124, "dedup": 3_082_196,
               "lru": 3_469_785, "icash": 1_521_399},
    "tpcc": {"fusion-io": 1_173_741, "dedup": 1_963_988,
             "lru": 2_051_511, "icash": 359_919},
    "specsfs": {"fusion-io": 5_752_436, "dedup": 5_559_698,
                "lru": 5_514_935, "icash": 5_096_890},
}

# Section 5.1 prose: block-population breakdown observed for SysBench.
SYSBENCH_BLOCK_MIX = {"reference": 0.01, "associate": 0.85,
                      "independent": 0.14}
