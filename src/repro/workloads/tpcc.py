"""TPC-C: on-line transaction processing over Postgres (TPCC-UVA).

Paper setup (Section 4.4): 5 warehouses, 10 clients each, 30 minutes;
Table 4 measures 339 K reads / 156 K writes, mid-size requests, 1.2 GB.

Clients "commit small transactions frequently generating a large amount
of write requests" (Section 5.1) scattered across warehouses — lots of
small random I/O, which is what buries RAID0 in Figure 10 and lets
I-CASH's microsecond delta writes shine in Figure 11.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import SyntheticWorkload, WorkloadProfile

#: Default simulated data-set size in 4 KB blocks (32 MiB, scaled from the
#: paper's 1.2 GB).
BASE_BLOCKS = 8192


class TPCCWorkload(SyntheticWorkload):
    """OLTP: small random transactions, commit-heavy, similar DB pages."""

    name = "tpcc"
    ios_per_transaction = 6
    app_compute_per_tx = 5.0e-3
    io_concurrency = 10          # 50 clients over 5 warehouses
    app_cpu_fraction = 0.5
    paper_profile = WorkloadProfile(
        name="TPC-C", n_reads=339_000, n_writes=156_000,
        avg_read_bytes=13312, avg_write_bytes=10752,
        data_size_bytes=int(1.2 * 2**30), vm_ram_bytes=256 * 2**20)

    def __init__(self, scale: float = 1.0, n_requests: Optional[int] = None,
                 seed: int = 2011, vm_id: int = 0,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        n_blocks = max(256, int(BASE_BLOCKS * scale))
        super().__init__(
            n_blocks=n_blocks,
            n_requests=n_requests if n_requests is not None else 8000,
            read_fraction=0.685,            # 339K / (339K + 156K)
            avg_read_blocks=13312 / 4096,
            avg_write_blocks=10752 / 4096,
            zipf_theta=1.4,
            seq_run_prob=0.10,              # random small transactions
            n_families=max(2, n_blocks // 64),
            mutation_fraction=0.06,         # a few rows per page update
            duplicate_fraction=0.05,
            dup_write_fraction=0.02,
            rewrite_fraction=0.03,
            vm_id=vm_id, seed=seed, content_seed=content_seed,
            image_divergence=image_divergence)
