"""Hadoop: a MapReduce WordCount job over HDFS.

Paper setup (Section 4.4): a two-VM Hadoop cluster counting words in a
web-server access log; Table 4 measures 241 K reads / 62 K writes with
large requests (~21 KB reads, ~99 KB writes) over 4.4 GB.

HDFS streams data in large sequential extents; log text is highly
repetitive (the same URL patterns over and over), so both sequentiality
and content locality are high.  The job itself is compute heavy — the
paper's Figure 8(b) shows 73–86 % CPU utilisation.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import SyntheticWorkload, WorkloadProfile

#: Default simulated data-set size in 4 KB blocks (64 MiB, scaled from the
#: paper's 4.4 GB).
BASE_BLOCKS = 16384


class HadoopWorkload(SyntheticWorkload):
    """MapReduce: sequential streaming, large requests, repetitive text."""

    name = "hadoop"
    ios_per_transaction = 16
    app_compute_per_tx = 8.0e-3
    io_concurrency = 4           # two VMs, few mappers
    app_cpu_fraction = 0.8
    paper_profile = WorkloadProfile(
        name="Hadoop", n_reads=241_000, n_writes=62_000,
        avg_read_bytes=20992, avg_write_bytes=101376,
        data_size_bytes=int(4.4 * 2**30), vm_ram_bytes=512 * 2**20)

    def __init__(self, scale: float = 1.0, n_requests: Optional[int] = None,
                 seed: int = 2011, vm_id: int = 0,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        n_blocks = max(256, int(BASE_BLOCKS * scale))
        super().__init__(
            n_blocks=n_blocks,
            n_requests=n_requests if n_requests is not None else 6000,
            read_fraction=0.795,            # 241K / (241K + 62K)
            avg_read_blocks=20992 / 4096,
            avg_write_blocks=101376 / 4096,
            zipf_theta=0.9,
            seq_run_prob=0.70,              # streaming scans
            n_families=max(2, n_blocks // 32),
            mutation_fraction=0.15,
            duplicate_fraction=0.10,
            dup_write_fraction=0.05,
            rewrite_fraction=0.10,          # output files are fresh content
            vm_id=vm_id, seed=seed, content_seed=content_seed,
            image_divergence=image_divergence)
