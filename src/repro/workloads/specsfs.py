"""SPEC-sfs: NFS file-server benchmark.

Paper setup (Section 4.4): 100 NFS LOADs against an Ubuntu NFS server;
Table 4 measures 64 K reads against 715 K writes — the one write-dominated
workload in the study (~92 % writes) — over 10 GB.

File servers overwrite files with mostly-similar content (append, edit,
re-save), so new data is similar to old data: Section 5.1 credits
I-CASH's 28 % response-time win over the dedup cache to "exploit[ing] the
content similarity between the new data and the old data to store only
the changed data in small deltas", while dedup pays copy-on-write for
every changed shared block.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import SyntheticWorkload, WorkloadProfile

#: Default simulated data-set size in 4 KB blocks (64 MiB, scaled from the
#: paper's 10 GB).
BASE_BLOCKS = 16384


class SpecSFSWorkload(SyntheticWorkload):
    """NFS server: write-intensive, new content similar to old."""

    name = "specsfs"
    ios_per_transaction = 10
    app_compute_per_tx = 3.0e-3
    io_concurrency = 16          # 100 NFS LOAD generators
    app_cpu_fraction = 0.5
    paper_profile = WorkloadProfile(
        name="SPEC-sfs", n_reads=64_000, n_writes=715_000,
        avg_read_bytes=6144, avg_write_bytes=17408,
        data_size_bytes=int(10 * 2**30), vm_ram_bytes=512 * 2**20)

    def __init__(self, scale: float = 1.0, n_requests: Optional[int] = None,
                 seed: int = 2011, vm_id: int = 0,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        n_blocks = max(256, int(BASE_BLOCKS * scale))
        super().__init__(
            n_blocks=n_blocks,
            n_requests=n_requests if n_requests is not None else 8000,
            read_fraction=0.082,            # 64K / (64K + 715K)
            avg_read_blocks=6144 / 4096,
            avg_write_blocks=17408 / 4096,
            zipf_theta=1.1,
            seq_run_prob=0.30,              # file-sized extents
            n_families=max(2, n_blocks // 16),
            mutation_fraction=0.60,
            duplicate_fraction=0.08,
            dup_write_fraction=0.04,
            rewrite_fraction=0.35,
            vm_id=vm_id, seed=seed, content_seed=content_seed,
            image_divergence=image_divergence)
