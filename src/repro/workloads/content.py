"""Content generation with tunable content locality.

The generator builds a block population out of *content families*: each
family has a base block, and every member is the base plus a bounded
amount of private noise.  Two dials control the structure the paper's
mechanisms feed on:

* **family count** — fewer families means more cross-block similarity
  (I-CASH's delta scheme wins) and, with duplicates enabled, more exact
  copies (dedup's win);
* **mutation fraction** — how much of a block changes per overwrite.
  The paper cites measurements of 5–20 % of bits changing on a typical
  block write (Section 2.2); heavier mutation defeats delta encoding.

Mutations are applied as a small number of contiguous byte runs rather
than scattered single bytes — real partial updates (a record in a page, a
field in a header) are clustered, and clustering is what makes run-based
delta encoding effective.

The model is built from a dedicated *content seed* while per-request
randomness comes from the caller's RNG.  Keeping the two apart lets the
multi-VM composer clone byte-identical images (same content seed) that
then diverge under independent request streams — the virtual-machine
image sprawl scenario of Section 3.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.request import BLOCK_SIZE


class ContentModel:
    """Family-structured content for one workload's block space."""

    def __init__(self, n_blocks: int, n_families: int,
                 mutation_fraction: float, duplicate_fraction: float,
                 content_seed: int,
                 family_noise_bytes: int = 24) -> None:
        if n_blocks < 1:
            raise ValueError(f"need at least one block, got {n_blocks}")
        if not 1 <= n_families <= n_blocks:
            raise ValueError(
                f"n_families must be in [1, {n_blocks}], got {n_families}")
        if not 0.0 <= mutation_fraction <= 1.0:
            raise ValueError(
                f"mutation_fraction must be in [0, 1], "
                f"got {mutation_fraction}")
        if not 0.0 <= duplicate_fraction <= 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1], "
                f"got {duplicate_fraction}")
        self.n_blocks = n_blocks
        self.n_families = n_families
        self.mutation_fraction = mutation_fraction
        self.duplicate_fraction = duplicate_fraction
        self.family_noise_bytes = family_noise_bytes
        self.content_seed = content_seed
        build_rng = np.random.default_rng(content_seed)
        self._bases = build_rng.integers(
            0, 256, size=(n_families, BLOCK_SIZE), dtype=np.uint8)
        self.family_of = build_rng.integers(0, n_families, size=n_blocks)
        self._unique_mask = (build_rng.random(n_blocks)
                             >= duplicate_fraction)
        # Per-block anchored update offsets: real partial writes hit the
        # same few regions of a block over and over (a row, a header
        # field), so repeated mutations must not diffuse across the whole
        # block — that bounded drift is what keeps deltas small over a
        # block's lifetime.
        self._anchor_rng = np.random.default_rng(content_seed + 3)
        self._anchors: dict = {}

    # -- initial population -------------------------------------------------

    def build_dataset(self) -> np.ndarray:
        """The initial content of every block (deterministic in the seed).

        A ``duplicate_fraction`` of blocks are *exact* copies of their
        family base (dedup-able); the rest carry a little private noise on
        top of the base (delta-able but not identical).
        """
        dataset = self._bases[self.family_of].copy()
        rng = np.random.default_rng(self.content_seed + 2)
        for lba in np.flatnonzero(self._unique_mask):
            self._sprinkle_noise(dataset[lba], rng)
        return dataset

    def _sprinkle_noise(self, block: np.ndarray,
                        rng: np.random.Generator) -> None:
        count = self.family_noise_bytes
        if count == 0:
            return
        positions = rng.integers(0, BLOCK_SIZE, size=count)
        block[positions] = rng.integers(0, 256, size=count, dtype=np.uint8)

    # -- overwrites ---------------------------------------------------------------

    #: Probability that a mutation run lands on one of the block's
    #: anchored offsets rather than a fresh random position.
    ANCHOR_REUSE_PROB = 0.85
    #: Anchored update sites per block.
    ANCHORS_PER_BLOCK = 6

    def _anchors_of(self, lba: int) -> np.ndarray:
        anchors = self._anchors.get(lba)
        if anchors is None:
            per_block_rng = np.random.default_rng(
                [self.content_seed, int(lba)])
            anchors = per_block_rng.integers(
                0, BLOCK_SIZE, size=self.ANCHORS_PER_BLOCK)
            self._anchors[lba] = anchors
        return anchors

    def mutate(self, current: np.ndarray, rng: np.random.Generator,
               fraction: Optional[float] = None,
               lba: Optional[int] = None) -> np.ndarray:
        """A new version of ``current`` after one application-level write.

        Changes ``fraction`` of the block's bytes, in a handful of
        contiguous runs (clustered partial update).  When ``lba`` is
        given, most runs start at the block's anchored update sites, so
        repeated writes churn the same regions instead of diffusing
        change across the whole block.  Returns a fresh array.
        """
        fraction = self.mutation_fraction if fraction is None else fraction
        updated = current.copy()
        total = int(BLOCK_SIZE * fraction)
        if total <= 0:
            return updated
        n_runs = max(1, min(8, total // 64))
        run_len = max(1, total // n_runs)
        anchors = self._anchors_of(lba) if lba is not None else None
        for _ in range(n_runs):
            if anchors is not None \
                    and rng.random() < self.ANCHOR_REUSE_PROB:
                start = int(anchors[rng.integers(0, len(anchors))])
                start = min(start, BLOCK_SIZE - run_len)
            else:
                start = int(rng.integers(0, max(1, BLOCK_SIZE - run_len)))
            updated[start:start + run_len] = rng.integers(
                0, 256, size=run_len, dtype=np.uint8)
        return updated

    def duplicate_of(self, lba: int) -> np.ndarray:
        """Exact-copy content for ``lba``: its family base.

        Used by workloads that occasionally write identical blocks
        (snapshots, log rotation, packaged files) — the traffic dedup
        caches feed on.
        """
        return self._bases[self.family_of[lba]].copy()

    def rewrite(self, lba: int, rng: np.random.Generator) -> np.ndarray:
        """A full rewrite: fresh family-based content for ``lba``.

        Unlike :meth:`mutate`, the result is unrelated to the current
        content but still similar to the family base — a new record page,
        a rewritten file, a reprovisioned VM block.
        """
        block = self._bases[self.family_of[lba]].copy()
        self._sprinkle_noise(block, rng)
        return block
