"""Content generation with tunable content locality.

The generator builds a block population out of *content families*: each
family has a base block, and every member is the base plus a bounded
amount of private noise.  Two dials control the structure the paper's
mechanisms feed on:

* **family count** — fewer families means more cross-block similarity
  (I-CASH's delta scheme wins) and, with duplicates enabled, more exact
  copies (dedup's win);
* **mutation fraction** — how much of a block changes per overwrite.
  The paper cites measurements of 5–20 % of bits changing on a typical
  block write (Section 2.2); heavier mutation defeats delta encoding.

Mutations are applied as a small number of contiguous byte runs rather
than scattered single bytes — real partial updates (a record in a page, a
field in a header) are clustered, and clustering is what makes run-based
delta encoding effective.

The model is built from a dedicated *content seed* while per-request
randomness comes from the caller's RNG.  Keeping the two apart lets the
multi-VM composer clone byte-identical images (same content seed) that
then diverge under independent request streams — the virtual-machine
image sprawl scenario of Section 3.1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.request import BLOCK_SIZE

#: Bound on the per-process memoised-dataset LRU (entries).  Datasets
#: are deterministic in their parameters, so a cache hit returns a copy
#: that is bit-identical to rebuilding — the win is skipping the
#: per-block noise loop, whose RNG draw order is deliberately *not*
#: vectorised (the byte stream is part of the reproduction contract).
DATASET_CACHE_CAPACITY = 8

#: Dataset parameters -> the finished initial-content matrix.
DatasetKey = Tuple[int, int, float, int, int]

_dataset_cache: "OrderedDict[DatasetKey, np.ndarray]" = OrderedDict()
_dataset_counters = {"hits": 0, "misses": 0, "attached": 0}

#: Shared-memory segments published by a parent process, by dataset key.
#: Workers attach lazily on first use; a failed attach (segment already
#: unlinked) silently falls back to rebuilding — the arena is a
#: go-faster switch, never a correctness dependency.
_shared_refs: Dict[DatasetKey, Tuple[str, Tuple[int, int]]] = {}
#: Attached SharedMemory handles, kept alive for the process lifetime:
#: cached arrays view their buffers, so closing early would invalidate
#: them (and raise BufferError anyway while views exist).
_shared_handles: List[object] = []


def clear_dataset_cache() -> None:
    """Drop memoised datasets and shared-segment registrations."""
    _dataset_cache.clear()
    _shared_refs.clear()
    _dataset_counters["hits"] = 0
    _dataset_counters["misses"] = 0
    _dataset_counters["attached"] = 0


def dataset_cache_stats() -> Dict[str, int]:
    return {"hits": _dataset_counters["hits"],
            "misses": _dataset_counters["misses"],
            "attached": _dataset_counters["attached"],
            "size": len(_dataset_cache),
            "shared_refs": len(_shared_refs)}


def cached_datasets() -> Dict[DatasetKey, np.ndarray]:
    """Read-only snapshot of the memoised datasets (arena publishing)."""
    return dict(_dataset_cache)


def register_shared_datasets(
        refs: Dict[DatasetKey, Tuple[str, Tuple[int, int]]]) -> None:
    """Note shared-memory segments holding finished datasets by name.

    Called in workers (via the parallel fan-out's task envelope) before
    any workload is built; :meth:`ContentModel.build_dataset` attaches
    on demand.
    """
    _shared_refs.update(refs)


def _attach_shared(key: DatasetKey) -> Optional[np.ndarray]:
    ref = _shared_refs.get(key)
    if ref is None:
        return None
    name, shape = ref
    try:
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=name)
    except (ImportError, FileNotFoundError, OSError):
        del _shared_refs[key]
        return None
    try:
        # Attaching registered the segment with this process's resource
        # tracker, which would unlink it at exit behind the owner's
        # back; the owning (publishing) process manages the lifetime.
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    _shared_handles.append(shm)
    array = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
    array.flags.writeable = False
    _dataset_counters["attached"] += 1
    return array


def _dataset_cache_get(key: DatasetKey) -> Optional[np.ndarray]:
    cached = _dataset_cache.get(key)
    if cached is not None:
        _dataset_cache.move_to_end(key)
        _dataset_counters["hits"] += 1
        return cached
    attached = _attach_shared(key)
    if attached is not None:
        _dataset_cache_put(key, attached, copy=False)
        _dataset_counters["hits"] += 1
        return attached
    _dataset_counters["misses"] += 1
    return None


def _dataset_cache_put(key: DatasetKey, dataset: np.ndarray,
                       copy: bool = True) -> None:
    kept = dataset.copy() if copy else dataset
    kept.flags.writeable = False
    _dataset_cache[key] = kept
    if len(_dataset_cache) > DATASET_CACHE_CAPACITY:
        _dataset_cache.popitem(last=False)


class ContentModel:
    """Family-structured content for one workload's block space."""

    def __init__(self, n_blocks: int, n_families: int,
                 mutation_fraction: float, duplicate_fraction: float,
                 content_seed: int,
                 family_noise_bytes: int = 24) -> None:
        if n_blocks < 1:
            raise ValueError(f"need at least one block, got {n_blocks}")
        if not 1 <= n_families <= n_blocks:
            raise ValueError(
                f"n_families must be in [1, {n_blocks}], got {n_families}")
        if not 0.0 <= mutation_fraction <= 1.0:
            raise ValueError(
                f"mutation_fraction must be in [0, 1], "
                f"got {mutation_fraction}")
        if not 0.0 <= duplicate_fraction <= 1.0:
            raise ValueError(
                f"duplicate_fraction must be in [0, 1], "
                f"got {duplicate_fraction}")
        self.n_blocks = n_blocks
        self.n_families = n_families
        self.mutation_fraction = mutation_fraction
        self.duplicate_fraction = duplicate_fraction
        self.family_noise_bytes = family_noise_bytes
        self.content_seed = content_seed
        build_rng = np.random.default_rng(content_seed)
        self._bases = build_rng.integers(
            0, 256, size=(n_families, BLOCK_SIZE), dtype=np.uint8)
        self.family_of = build_rng.integers(0, n_families, size=n_blocks)
        self._unique_mask = (build_rng.random(n_blocks)
                             >= duplicate_fraction)
        # Per-block anchored update offsets: real partial writes hit the
        # same few regions of a block over and over (a row, a header
        # field), so repeated mutations must not diffuse across the whole
        # block — that bounded drift is what keeps deltas small over a
        # block's lifetime.
        self._anchor_rng = np.random.default_rng(content_seed + 3)
        self._anchors: dict = {}

    # -- initial population -------------------------------------------------

    @property
    def dataset_key(self) -> DatasetKey:
        """Parameters that fully determine :meth:`build_dataset`'s bytes."""
        return (self.n_blocks, self.n_families, self.duplicate_fraction,
                self.family_noise_bytes, self.content_seed)

    def build_dataset(self) -> np.ndarray:
        """The initial content of every block (deterministic in the seed).

        A ``duplicate_fraction`` of blocks are *exact* copies of their
        family base (dedup-able); the rest carry a little private noise on
        top of the base (delta-able but not identical).

        The finished matrix is memoised per process (and may be attached
        from a parent's shared-memory arena); either way callers receive
        a private copy bit-identical to a fresh build.
        """
        key = self.dataset_key
        cached = _dataset_cache_get(key)
        if cached is not None:
            return cached.copy()
        dataset = self._bases[self.family_of].copy()
        rng = np.random.default_rng(self.content_seed + 2)
        for lba in np.flatnonzero(self._unique_mask):
            self._sprinkle_noise(dataset[lba], rng)
        _dataset_cache_put(key, dataset)
        return dataset

    def _sprinkle_noise(self, block: np.ndarray,
                        rng: np.random.Generator) -> None:
        count = self.family_noise_bytes
        if count == 0:
            return
        positions = rng.integers(0, BLOCK_SIZE, size=count)
        block[positions] = rng.integers(0, 256, size=count, dtype=np.uint8)

    # -- overwrites ---------------------------------------------------------------

    #: Probability that a mutation run lands on one of the block's
    #: anchored offsets rather than a fresh random position.
    ANCHOR_REUSE_PROB = 0.85
    #: Anchored update sites per block.
    ANCHORS_PER_BLOCK = 6

    def _anchors_of(self, lba: int) -> np.ndarray:
        anchors = self._anchors.get(lba)
        if anchors is None:
            per_block_rng = np.random.default_rng(
                [self.content_seed, int(lba)])
            anchors = per_block_rng.integers(
                0, BLOCK_SIZE, size=self.ANCHORS_PER_BLOCK)
            self._anchors[lba] = anchors
        return anchors

    def mutate(self, current: np.ndarray, rng: np.random.Generator,
               fraction: Optional[float] = None,
               lba: Optional[int] = None) -> np.ndarray:
        """A new version of ``current`` after one application-level write.

        Changes ``fraction`` of the block's bytes, in a handful of
        contiguous runs (clustered partial update).  When ``lba`` is
        given, most runs start at the block's anchored update sites, so
        repeated writes churn the same regions instead of diffusing
        change across the whole block.  Returns a fresh array.
        """
        fraction = self.mutation_fraction if fraction is None else fraction
        updated = current.copy()
        total = int(BLOCK_SIZE * fraction)
        if total <= 0:
            return updated
        n_runs = max(1, min(8, total // 64))
        run_len = max(1, total // n_runs)
        anchors = self._anchors_of(lba) if lba is not None else None
        for _ in range(n_runs):
            if anchors is not None \
                    and rng.random() < self.ANCHOR_REUSE_PROB:
                start = int(anchors[rng.integers(0, len(anchors))])
                start = min(start, BLOCK_SIZE - run_len)
            else:
                start = int(rng.integers(0, max(1, BLOCK_SIZE - run_len)))
            updated[start:start + run_len] = rng.integers(
                0, 256, size=run_len, dtype=np.uint8)
        return updated

    def duplicate_of(self, lba: int) -> np.ndarray:
        """Exact-copy content for ``lba``: its family base.

        Used by workloads that occasionally write identical blocks
        (snapshots, log rotation, packaged files) — the traffic dedup
        caches feed on.
        """
        return self._bases[self.family_of[lba]].copy()

    def rewrite(self, lba: int, rng: np.random.Generator) -> np.ndarray:
        """A full rewrite: fresh family-based content for ``lba``.

        Unlike :meth:`mutate`, the result is unrelated to the current
        content but still similar to the family base — a new record page,
        a rewritten file, a reprovisioned VM block.
        """
        block = self._bases[self.family_of[lba]].copy()
        self._sprinkle_noise(block, rng)
        return block
