"""Workload base classes.

A :class:`Workload` owns a block space with initial content, and yields a
deterministic stream of content-bearing :class:`IORequest`s.  It also
keeps a *shadow copy* of what every block should contain after the writes
it has issued — the ground truth the test suite and the experiment runner
check storage systems against.

:class:`SyntheticWorkload` provides the shared machinery: hot/cold and
sequential address patterns, geometric request sizes, and family-based
content with partial-overwrite mutation.  The six benchmark subclasses
only set parameters (matched to the paper's Table 4) and their
transaction model.

Request streams are *restartable*: every call to :meth:`requests` resets
the generator state and replays the identical stream, which is how the
experiment runner feeds the same trace to five storage architectures.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.request import BLOCK_SIZE, IORequest, OpType
from repro.workloads.content import ContentModel

#: Bound on the per-process memoised request-stream LRU (entries).  A
#: stream is deterministic in the workload's parameters (that is the
#: restartability contract above), so replaying a memoised stream is
#: bit-identical to regenerating it; payload arrays are frozen
#: read-only at creation so no consumer can corrupt a shared stream.
STREAM_CACHE_CAPACITY = 4
#: Upper bound on total cached payload bytes; oldest streams are evicted
#: first once the budget is exceeded.
STREAM_CACHE_MAX_BYTES = 512 * 1024 * 1024

_stream_cache: "OrderedDict[Tuple, Tuple[List[IORequest], int]]" = \
    OrderedDict()
_stream_counters = {"hits": 0, "misses": 0, "bytes": 0}


def clear_stream_cache() -> None:
    """Drop every memoised request stream (tests use this)."""
    _stream_cache.clear()
    _stream_counters["hits"] = 0
    _stream_counters["misses"] = 0
    _stream_counters["bytes"] = 0


def stream_cache_stats() -> dict:
    return {"hits": _stream_counters["hits"],
            "misses": _stream_counters["misses"],
            "size": len(_stream_cache),
            "bytes": _stream_counters["bytes"]}


def _stream_cache_put(key: Tuple, stream: List[IORequest]) -> None:
    nbytes = sum(request.size_bytes for request in stream
                 if request.is_write)
    _stream_cache[key] = (stream, nbytes)
    _stream_counters["bytes"] += nbytes
    while _stream_cache and (
            len(_stream_cache) > STREAM_CACHE_CAPACITY
            or _stream_counters["bytes"] > STREAM_CACHE_MAX_BYTES):
        _, (_, evicted_bytes) = _stream_cache.popitem(last=False)
        _stream_counters["bytes"] -= evicted_bytes


@dataclass(frozen=True)
class WorkloadProfile:
    """One row of the paper's Table 4 (workload characteristics)."""

    name: str
    n_reads: int
    n_writes: int
    avg_read_bytes: float
    avg_write_bytes: float
    data_size_bytes: float
    vm_ram_bytes: int

    @property
    def read_fraction(self) -> float:
        total = self.n_reads + self.n_writes
        return self.n_reads / total if total else 0.0

    def format_row(self) -> str:
        return (f"{self.name:<12} reads={self.n_reads:>9} "
                f"writes={self.n_writes:>9} "
                f"avg_read={self.avg_read_bytes:>8.0f}B "
                f"avg_write={self.avg_write_bytes:>8.0f}B "
                f"data={self.data_size_bytes / 2**20:>8.1f}MB")


class Workload(abc.ABC):
    """Abstract source of a content-bearing request stream."""

    #: Human-readable benchmark name.
    name: str = "workload"
    #: Block requests grouped into one application transaction (for
    #: throughput figures).
    ios_per_transaction: int = 4
    #: Application compute time per transaction (seconds) — think time and
    #: CPU work between I/Os; this is what keeps CPU busy in Figure 6(b).
    app_compute_per_tx: float = 2e-3
    #: Concurrent request streams the real benchmark drives (SysBench runs
    #: 16 threads, TPC-C 50 clients, ...).  The runner divides aggregate
    #: I/O busy time by this when deriving wall-clock time — the standard
    #: open-queue approximation for a closed-loop trace replay.
    io_concurrency: int = 8
    #: Fraction of per-transaction application time that is actual CPU
    #: work (the rest is lock waits, network, sleeps).  Sets the CPU
    #: utilisation baseline of Figures 6(b)/8(b)/10(b); the storage
    #: architecture's own cycles add on top.
    app_cpu_fraction: float = 0.55

    @abc.abstractmethod
    def build_dataset(self) -> np.ndarray:
        """The initial (pre-request) content of the whole block space."""

    @abc.abstractmethod
    def requests(self) -> Iterator[IORequest]:
        """The deterministic request stream (restarts on every call)."""

    @property
    @abc.abstractmethod
    def n_blocks(self) -> int:
        """Size of the block space."""

    @property
    @abc.abstractmethod
    def shadow(self) -> np.ndarray:
        """Ground-truth content after the requests issued so far."""

    @property
    def data_size_bytes(self) -> int:
        return self.n_blocks * BLOCK_SIZE

    @property
    def ssd_budget_blocks(self) -> int:
        """The SSD provisioning the paper gives I-CASH/LRU/Dedup: about
        one tenth of the data-set size."""
        return max(64, self.n_blocks // 10)

    # -- metrics -------------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Workload-side instruments (see :mod:`repro.sim.metrics`).

        The replay is a closed loop: every stream always has exactly one
        request outstanding, so offered load and outstanding requests
        both equal the stream count.  Both are exported as gauges so a
        future open-loop generator can report a varying depth without
        the schema changing.
        """
        if not registry.enabled:
            return
        registry.gauge("offered_load_streams") \
            .set_fn(lambda: self.io_concurrency)
        registry.gauge("outstanding_requests") \
            .set_fn(lambda: self.io_concurrency)


class SyntheticWorkload(Workload):
    """Parameterised synthetic benchmark generator.

    Address model: requests either continue a sequential run (probability
    ``seq_run_prob``) or start fresh at a random block — drawn from a
    scattered *hot set* covering ``hot_fraction`` of the space with
    probability ``hot_access_prob``, otherwise from the whole space.

    Content model: see :class:`~repro.workloads.content.ContentModel`.
    Writes mutate the current shadow content; a ``dup_write_fraction`` of
    written blocks are exact family-base copies (dedup-able traffic), and
    a ``rewrite_fraction`` are full rewrites (fresh family content).

    ``content_seed`` defaults to ``seed`` but can be pinned separately so
    several instances share one content universe (identical initial
    images) while issuing independent request streams — the multi-VM
    cloning scenario.  ``image_divergence`` additionally mutates that
    fraction of blocks privately at start-up, modelling a VM image that
    has drifted slightly from the golden image.
    """

    # Subclasses override these class-level defaults.
    name = "synthetic"
    paper_profile: Optional[WorkloadProfile] = None

    def __init__(self, n_blocks: int, n_requests: int, read_fraction: float,
                 avg_read_blocks: float, avg_write_blocks: float,
                 hot_fraction: float = 0.2, hot_access_prob: float = 0.8,
                 zipf_theta: Optional[float] = None,
                 seq_run_prob: float = 0.3, n_families: Optional[int] = None,
                 mutation_fraction: float = 0.10,
                 duplicate_fraction: float = 0.05,
                 dup_write_fraction: float = 0.03,
                 rewrite_fraction: float = 0.05,
                 max_request_blocks: int = 32,
                 vm_id: int = 0, seed: int = 2011,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], "
                             f"got {read_fraction}")
        if n_requests < 1:
            raise ValueError(f"need at least one request, got {n_requests}")
        if not 0.0 <= image_divergence <= 1.0:
            raise ValueError(f"image_divergence must be in [0, 1], "
                             f"got {image_divergence}")
        self._n_blocks = n_blocks
        self.n_requests = n_requests
        self.read_fraction = read_fraction
        self.avg_read_blocks = max(1.0, avg_read_blocks)
        self.avg_write_blocks = max(1.0, avg_write_blocks)
        self.hot_fraction = hot_fraction
        self.hot_access_prob = hot_access_prob
        self.zipf_theta = zipf_theta
        self.seq_run_prob = seq_run_prob
        self.dup_write_fraction = dup_write_fraction
        self.rewrite_fraction = rewrite_fraction
        self.max_request_blocks = max_request_blocks
        self.vm_id = vm_id
        self.seed = seed
        self.content_seed = content_seed if content_seed is not None \
            else seed
        self.image_divergence = image_divergence
        if n_families is None:
            n_families = max(1, n_blocks // 32)
        self.content = ContentModel(
            n_blocks=n_blocks, n_families=n_families,
            mutation_fraction=mutation_fraction,
            duplicate_fraction=duplicate_fraction,
            content_seed=self.content_seed)
        self._initial = self.content.build_dataset()
        if image_divergence > 0.0:
            diverge_rng = np.random.default_rng(seed + 0x5EED)
            count = int(n_blocks * image_divergence)
            for lba in diverge_rng.choice(n_blocks, size=count,
                                          replace=False):
                self._initial[lba] = self.content.mutate(
                    self._initial[lba], diverge_rng)
        self._reset()

    def _reset(self) -> None:
        """Restore pristine generator state (same stream on every pass)."""
        self._rng = np.random.default_rng(self.seed)
        self._shadow = self._initial.copy()
        hot_count = max(1, int(self._n_blocks * self.hot_fraction))
        self._hot_set = self._rng.permutation(self._n_blocks)[:hot_count]
        if self.zipf_theta is not None:
            # Zipf popularity over a permuted ranking: rank r gets
            # probability proportional to 1/r^theta, and ranks map to
            # scattered addresses so popular blocks are not contiguous.
            ranks = np.arange(1, self._n_blocks + 1, dtype=np.float64)
            pmf = ranks ** (-self.zipf_theta)
            self._zipf_cdf = np.cumsum(pmf / pmf.sum())
            self._zipf_perm = self._rng.permutation(self._n_blocks)
        self._run_next: Optional[int] = None

    # -- Workload interface -------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def shadow(self) -> np.ndarray:
        return self._shadow

    def build_dataset(self) -> np.ndarray:
        return self._initial.copy()

    @property
    def _stream_key(self) -> Tuple:
        """Every parameter the generated stream depends on.

        The restartability contract (module docstring) makes the stream a
        pure function of these values, so two workload instances with the
        same key replay bit-identical request sequences.
        """
        content = self.content
        return (type(self).__qualname__, self._n_blocks, self.n_requests,
                self.read_fraction, self.avg_read_blocks,
                self.avg_write_blocks, self.hot_fraction,
                self.hot_access_prob, self.zipf_theta, self.seq_run_prob,
                self.dup_write_fraction, self.rewrite_fraction,
                self.max_request_blocks, self.vm_id, self.seed,
                self.content_seed, self.image_divergence,
                content.n_families, content.mutation_fraction,
                content.duplicate_fraction, content.family_noise_bytes)

    def requests(self) -> Iterator[IORequest]:
        key = self._stream_key
        cached = _stream_cache.get(key)
        if cached is not None:
            _stream_cache.move_to_end(key)
            _stream_counters["hits"] += 1
            return self._replay(cached[0])
        _stream_counters["misses"] += 1
        return self._generate(key)

    def _generate(self, key: Tuple) -> Iterator[IORequest]:
        self._reset()
        stream: List[IORequest] = []
        for _ in range(self.n_requests):
            request = self._next_request()
            stream.append(request)
            yield request
        # Reached only when the consumer drained the whole stream — a
        # partially consumed generator must never seed the cache.
        _stream_cache_put(key, stream)

    def _replay(self, stream: List[IORequest]) -> Iterator[IORequest]:
        """Yield a memoised stream, still applying writes to the shadow.

        The shadow copy is the part of :meth:`requests` with an observable
        side effect (``self.shadow`` is the verification ground truth), so
        a replay repeats exactly the writes the generation pass made;
        everything else (RNG draws, content mutation) is skipped.
        """
        self._reset()
        for request in stream:
            if request.is_write:
                for offset, block in enumerate(request.payload):
                    self._shadow[request.lba + offset] = block
            yield request

    # -- generation ------------------------------------------------------------

    def _pick_length(self, mean_blocks: float) -> int:
        # Geometric sizes reproduce the long-ish tail of real request-size
        # distributions while matching the Table 4 mean.
        p = min(1.0, 1.0 / mean_blocks)
        length = int(self._rng.geometric(p))
        return max(1, min(length, self.max_request_blocks))

    def _pick_start(self, length: int) -> int:
        if self._run_next is not None \
                and self._rng.random() < self.seq_run_prob:
            start = self._run_next
            if start + length <= self._n_blocks:
                return start
        if self.zipf_theta is not None:
            rank = int(np.searchsorted(self._zipf_cdf, self._rng.random()))
            start = int(self._zipf_perm[min(rank, self._n_blocks - 1)])
        elif self._rng.random() < self.hot_access_prob:
            start = int(self._hot_set[
                self._rng.integers(0, len(self._hot_set))])
        else:
            start = int(self._rng.integers(0, self._n_blocks))
        return min(start, self._n_blocks - length)

    def _next_request(self) -> IORequest:
        is_read = self._rng.random() < self.read_fraction
        mean = self.avg_read_blocks if is_read else self.avg_write_blocks
        length = self._pick_length(mean)
        start = self._pick_start(length)
        self._run_next = start + length \
            if start + length < self._n_blocks else None
        if is_read:
            return IORequest(OpType.READ, start, length, vm_id=self.vm_id)
        payload = [self._new_content(lba)
                   for lba in range(start, start + length)]
        for offset, block in enumerate(payload):
            self._shadow[start + offset] = block
            # Frozen so a memoised stream cannot be corrupted by a
            # consumer patching payload arrays in place.
            block.flags.writeable = False
        return IORequest(OpType.WRITE, start, length, payload=payload,
                         vm_id=self.vm_id)

    def _new_content(self, lba: int) -> np.ndarray:
        roll = self._rng.random()
        if roll < self.dup_write_fraction:
            return self.content.duplicate_of(lba)
        if roll < self.dup_write_fraction + self.rewrite_fraction:
            return self.content.rewrite(lba, self._rng)
        return self.content.mutate(self._shadow[lba], self._rng, lba=lba)

    # -- reporting ---------------------------------------------------------------

    def measured_profile(self) -> WorkloadProfile:
        """Replay the stream and summarise it as a Table 4 row."""
        reads = writes = 0
        read_bytes = write_bytes = 0
        for request in self.requests():
            if request.is_read:
                reads += 1
                read_bytes += request.size_bytes
            else:
                writes += 1
                write_bytes += request.size_bytes
        return WorkloadProfile(
            name=self.name,
            n_reads=reads,
            n_writes=writes,
            avg_read_bytes=read_bytes / reads if reads else 0.0,
            avg_write_bytes=write_bytes / writes if writes else 0.0,
            data_size_bytes=self.data_size_bytes,
            vm_ram_bytes=0)
