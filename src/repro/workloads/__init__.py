"""Synthetic, content-bearing benchmark workloads.

The paper stresses (Section 4.4) that evaluating I-CASH needs more than
address traces: "the workload should have data contents in addition to
addresses", because deltas are content dependent.  Each generator here
produces a deterministic, seeded stream of block requests whose *payloads*
carry realistic content structure — families of similar blocks, partial
overwrites changing 5–20 % of a block, exact duplicates — matched to the
benchmark's published characteristics (Table 4): read/write mix, request
sizes, data-set scale and access locality.

Generators:

* :class:`~repro.workloads.sysbench.SysBenchWorkload` — OLTP on MySQL.
* :class:`~repro.workloads.hadoop.HadoopWorkload` — MapReduce WordCount.
* :class:`~repro.workloads.tpcc.TPCCWorkload` — TPC-C on Postgres.
* :class:`~repro.workloads.loadsim.LoadSimWorkload` — Exchange LoadSim2003.
* :class:`~repro.workloads.specsfs.SpecSFSWorkload` — SPEC-sfs NFS server.
* :class:`~repro.workloads.rubis.RUBiSWorkload` — RUBiS auction site.
* :class:`~repro.workloads.multivm.MultiVMWorkload` — N cloned VM images
  running the same benchmark (Figures 15–16).
"""

from repro.workloads.base import SyntheticWorkload, Workload, WorkloadProfile
from repro.workloads.hadoop import HadoopWorkload
from repro.workloads.loadsim import LoadSimWorkload
from repro.workloads.multivm import MultiVMWorkload
from repro.workloads.rubis import RUBiSWorkload
from repro.workloads.specsfs import SpecSFSWorkload
from repro.workloads.sysbench import SysBenchWorkload
from repro.workloads.tpcc import TPCCWorkload

ALL_WORKLOADS = (
    SysBenchWorkload,
    HadoopWorkload,
    TPCCWorkload,
    LoadSimWorkload,
    SpecSFSWorkload,
    RUBiSWorkload,
)

__all__ = [
    "ALL_WORKLOADS",
    "HadoopWorkload",
    "LoadSimWorkload",
    "MultiVMWorkload",
    "RUBiSWorkload",
    "SpecSFSWorkload",
    "SyntheticWorkload",
    "SysBenchWorkload",
    "TPCCWorkload",
    "Workload",
    "WorkloadProfile",
]
