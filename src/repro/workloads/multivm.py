"""Multi-VM workload composition (Figures 15 and 16).

Section 5.1: "It is common to setup several similar virtual machines on
the same physical machine to run multiple services... On each virtual
machine, a distinct data set and benchmark parameters are used."  The
five TPC-C VMs use 1–5 warehouses; the five RUBiS VMs use 20–24 items
per page.

The composer gives each VM a private region of the logical block space,
but all VM images are clones of one golden image (same content seed)
that have drifted slightly — the *virtual machine image sprawl* of
Section 2.2.  The resulting cross-VM content similarity is exactly what
I-CASH exploits to win 2.8x over pure SSD in Figure 15: thousands of
blocks across images delta-compress against a tiny shared reference set.

Per-VM request streams are interleaved round-robin, modelling the
concurrent VMs competing for the shared storage element.
"""

from __future__ import annotations

from typing import Iterator, List, Type

import numpy as np

from repro.sim.request import IORequest
from repro.workloads.base import SyntheticWorkload, Workload


class MultiVMWorkload(Workload):
    """N cloned VMs running the same benchmark over one storage element."""

    def __init__(self, workload_cls: Type[SyntheticWorkload],
                 n_vms: int = 5, scale: float = 0.25,
                 n_requests_per_vm: int = 2000, seed: int = 2011) -> None:
        if n_vms < 1:
            raise ValueError(f"need at least one VM, got {n_vms}")
        self.n_vms = n_vms
        # Same content seed -> identical golden image; different request
        # seed + growing divergence -> "distinct data set and benchmark
        # parameters" per VM.
        self.vms: List[SyntheticWorkload] = [
            workload_cls(scale=scale, n_requests=n_requests_per_vm,
                         seed=seed + 101 * vm, vm_id=vm, content_seed=seed,
                         image_divergence=0.01 * vm)
            for vm in range(n_vms)]
        self.vm_blocks = self.vms[0].n_blocks
        for vm in self.vms[1:]:
            if vm.n_blocks != self.vm_blocks:
                raise ValueError("all VM images must be the same size")
        self.name = f"{self.vms[0].name}-{n_vms}vms"
        self.ios_per_transaction = self.vms[0].ios_per_transaction
        # Guest application compute runs concurrently across the VMs (the
        # host is multi-core); what the VMs genuinely contend for is the
        # shared storage element.  Per-transaction compute therefore
        # scales down with the VM count while I/O time does not.
        self.app_compute_per_tx = self.vms[0].app_compute_per_tx / n_vms
        self.app_cpu_fraction = getattr(self.vms[0], "app_cpu_fraction",
                                        0.55)
        self.io_concurrency = getattr(self.vms[0], "io_concurrency", 8)

    # -- Workload interface -------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.n_vms * self.vm_blocks

    @property
    def shadow(self) -> np.ndarray:
        return np.concatenate([vm.shadow for vm in self.vms], axis=0)

    def build_dataset(self) -> np.ndarray:
        return np.concatenate([vm.build_dataset() for vm in self.vms],
                              axis=0)

    def _translate(self, vm_index: int, request: IORequest) -> IORequest:
        base = vm_index * self.vm_blocks
        return IORequest(request.op, base + request.lba, request.nblocks,
                         payload=request.payload, vm_id=vm_index,
                         timestamp=request.timestamp)

    def requests(self) -> Iterator[IORequest]:
        """Round-robin interleave of the per-VM streams."""
        streams = [vm.requests() for vm in self.vms]
        live = list(range(self.n_vms))
        while live:
            finished: List[int] = []
            for vm_index in live:
                try:
                    request = next(streams[vm_index])
                except StopIteration:
                    finished.append(vm_index)
                    continue
                yield self._translate(vm_index, request)
            for vm_index in finished:
                live.remove(vm_index)

    def cross_vm_similarity(self) -> float:
        """Fraction of VM-1..N-1 initial blocks identical to VM 0's copy.

        A quick measure of how much image sprawl the composition created;
        exercised by tests and the VM example.
        """
        if self.n_vms < 2:
            return 1.0
        golden = self.vms[0].build_dataset()
        identical = 0
        total = 0
        for vm in self.vms[1:]:
            image = vm.build_dataset()
            identical += int(
                (image == golden).all(axis=1).sum())
            total += self.vm_blocks
        return identical / total if total else 1.0
