"""Trace file I/O.

Workloads in this repository are generated on the fly, but real studies
archive traces.  This module serialises a content-bearing request stream
to a single ``.npz`` file and replays it later — useful for freezing a
workload, sharing it, or diffing two generator versions.

Format (inside the npz):

* ``ops``     — int8 array, 0 = read, 1 = write
* ``lbas``    — int64 array, start block of each request
* ``lengths`` — int32 array, blocks per request
* ``vm_ids``  — int32 array
* ``timestamps`` — float64 array, issue times in seconds (0.0 when the
  source carries none)
* ``payload`` — uint8 array of shape (total written blocks, 4096),
  the concatenated write payloads in stream order
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

import numpy as np

from repro.sim.request import BLOCK_SIZE, IORequest, OpType


def save_trace(path: Union[str, Path],
               requests: Iterable[IORequest]) -> int:
    """Serialise ``requests`` to ``path``; returns the request count."""
    ops: List[int] = []
    lbas: List[int] = []
    lengths: List[int] = []
    vm_ids: List[int] = []
    timestamps: List[float] = []
    payload_blocks: List[np.ndarray] = []
    for request in requests:
        ops.append(0 if request.is_read else 1)
        lbas.append(request.lba)
        lengths.append(request.nblocks)
        vm_ids.append(request.vm_id)
        timestamps.append(request.timestamp)
        if request.is_write:
            payload_blocks.extend(request.payload)
    payload = (np.stack(payload_blocks)
               if payload_blocks
               else np.empty((0, BLOCK_SIZE), dtype=np.uint8))
    np.savez_compressed(
        Path(path),
        ops=np.asarray(ops, dtype=np.int8),
        lbas=np.asarray(lbas, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int32),
        vm_ids=np.asarray(vm_ids, dtype=np.int32),
        timestamps=np.asarray(timestamps, dtype=np.float64),
        payload=payload)
    return len(ops)


def load_trace(path: Union[str, Path]) -> Iterator[IORequest]:
    """Replay a trace saved by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        ops = archive["ops"]
        lbas = archive["lbas"]
        lengths = archive["lengths"]
        vm_ids = archive["vm_ids"]
        payload = archive["payload"]
        if "timestamps" in archive.files:
            timestamps = archive["timestamps"]
        else:  # archives written before the field existed
            timestamps = np.zeros(len(ops), dtype=np.float64)
    cursor = 0
    for op, lba, length, vm_id, ts in zip(ops, lbas, lengths, vm_ids,
                                          timestamps):
        if op == 0:
            yield IORequest(OpType.READ, int(lba), int(length),
                            vm_id=int(vm_id), timestamp=float(ts))
        else:
            blocks = [payload[cursor + i] for i in range(length)]
            cursor += length
            yield IORequest(OpType.WRITE, int(lba), int(length),
                            payload=blocks, vm_id=int(vm_id),
                            timestamp=float(ts))


class TraceWorkload:
    """An archived trace as a first-class :class:`Workload`.

    Wraps a trace file plus the initial dataset it was captured against,
    exposing the same interface the synthetic generators provide —
    restartable ``requests()``, a live ``shadow`` — so archived traces
    drop straight into the experiment runner and the systems factory.

    The transaction model (``ios_per_transaction``,
    ``app_compute_per_tx``, ``io_concurrency``) is taken from the
    workload class the trace was captured from, or set explicitly.
    """

    def __init__(self, path: Union[str, Path], initial: np.ndarray,
                 name: str = "trace", ios_per_transaction: int = 4,
                 app_compute_per_tx: float = 2e-3,
                 io_concurrency: int = 8,
                 app_cpu_fraction: float = 0.55) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(f"no trace at {self.path}")
        self._initial = initial.copy()
        self._shadow = initial.copy()
        self.name = name
        self.ios_per_transaction = ios_per_transaction
        self.app_compute_per_tx = app_compute_per_tx
        self.io_concurrency = io_concurrency
        self.app_cpu_fraction = app_cpu_fraction
        with np.load(self.path) as archive:
            self.n_requests = int(archive["ops"].shape[0])

    @classmethod
    def capture(cls, path: Union[str, Path], workload) -> "TraceWorkload":
        """Archive ``workload``'s stream and wrap the result.

        Copies the source workload's transaction model so replays measure
        like the original.
        """
        save_trace(path, workload.requests())
        return cls(path, workload.build_dataset(),
                   name=f"{workload.name}-trace",
                   ios_per_transaction=workload.ios_per_transaction,
                   app_compute_per_tx=workload.app_compute_per_tx,
                   io_concurrency=getattr(workload, "io_concurrency", 8),
                   app_cpu_fraction=getattr(workload, "app_cpu_fraction",
                                            0.55))

    @property
    def n_blocks(self) -> int:
        return self._initial.shape[0]

    @property
    def data_size_bytes(self) -> int:
        return self.n_blocks * BLOCK_SIZE

    @property
    def ssd_budget_blocks(self) -> int:
        return max(64, self.n_blocks // 10)

    @property
    def shadow(self) -> np.ndarray:
        return self._shadow

    def build_dataset(self) -> np.ndarray:
        return self._initial.copy()

    def requests(self) -> Iterator[IORequest]:
        self._shadow = self._initial.copy()
        for request in load_trace(self.path):
            if request.is_write:
                for offset, block in enumerate(request.payload):
                    self._shadow[request.lba + offset] = block
            yield request
