"""RUBiS: eBay-style auction-site benchmark.

Paper setup (Section 4.4): Apache + MySQL + PHP serving 300 clients for
15 minutes; Table 4 measures 799 K reads against only 7 K writes (~99 %
reads) over 1.8 GB.

Because the workload is read-dominated, I-CASH's write-path advantage is
muted: the paper reports I-CASH about 10 % *slower* than pure SSD here
(Figure 14) but still 1.5x over RAID0 — and the "online similarity
detection of I-CASH is effective under read intensive workloads",
beating the dedup cache 1.29x by packing more logical blocks into the
same SSD budget.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import SyntheticWorkload, WorkloadProfile

#: Default simulated data-set size in 4 KB blocks (32 MiB, scaled from the
#: paper's 1.8 GB).
BASE_BLOCKS = 8192


class RUBiSWorkload(SyntheticWorkload):
    """Auction web site: 99 % reads with strong locality."""

    name = "rubis"
    ios_per_transaction = 5
    app_compute_per_tx = 1.5e-3
    io_concurrency = 12          # 300 web clients
    app_cpu_fraction = 0.6
    paper_profile = WorkloadProfile(
        name="RUBiS", n_reads=799_000, n_writes=7_000,
        avg_read_bytes=4608, avg_write_bytes=20480,
        data_size_bytes=int(1.8 * 2**30), vm_ram_bytes=256 * 2**20)

    def __init__(self, scale: float = 1.0, n_requests: Optional[int] = None,
                 seed: int = 2011, vm_id: int = 0,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        n_blocks = max(256, int(BASE_BLOCKS * scale))
        super().__init__(
            n_blocks=n_blocks,
            n_requests=n_requests if n_requests is not None else 8000,
            read_fraction=0.991,            # 799K / (799K + 7K)
            avg_read_blocks=4608 / 4096,
            avg_write_blocks=20480 / 4096,
            zipf_theta=1.6,
            seq_run_prob=0.15,
            n_families=max(2, n_blocks // 32),
            mutation_fraction=0.08,
            duplicate_fraction=0.10,
            dup_write_fraction=0.03,
            rewrite_fraction=0.03,
            vm_id=vm_id, seed=seed, content_seed=content_seed,
            image_divergence=image_divergence)
