"""SysBench: multi-threaded OLTP benchmark over MySQL.

Paper setup (Section 4.4): a 4,000,000-row table, 100,000 max requests,
16 threads; Table 4 measures 619 K reads / 236 K writes, ~6.7 KB reads,
~7.7 KB writes over a 960 MB data set.

Database pages share heavy structure (same schema, same page layout), so
content locality is strong: the paper finds 85 % of blocks similar to a
1 % reference set.  Transactions touch a hot set of rows with small,
clustered page updates.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import SyntheticWorkload, WorkloadProfile

#: Default simulated data-set size in 4 KB blocks (32 MiB; the paper's
#: 960 MB scaled to simulation size — ratios, not absolutes, matter).
BASE_BLOCKS = 8192


class SysBenchWorkload(SyntheticWorkload):
    """OLTP: read-mostly, small requests, strong content locality."""

    name = "sysbench"
    ios_per_transaction = 8
    app_compute_per_tx = 0.5e-3
    io_concurrency = 16          # SysBench runs 16 threads
    app_cpu_fraction = 0.52
    paper_profile = WorkloadProfile(
        name="SysBench", n_reads=619_000, n_writes=236_000,
        avg_read_bytes=6656, avg_write_bytes=7680,
        data_size_bytes=int(960 * 2**20), vm_ram_bytes=256 * 2**20)

    def __init__(self, scale: float = 1.0, n_requests: Optional[int] = None,
                 seed: int = 2011, vm_id: int = 0,
                 content_seed: Optional[int] = None,
                 image_divergence: float = 0.0) -> None:
        n_blocks = max(256, int(BASE_BLOCKS * scale))
        super().__init__(
            n_blocks=n_blocks,
            n_requests=n_requests if n_requests is not None else 8000,
            read_fraction=0.724,            # 619K / (619K + 236K)
            avg_read_blocks=6656 / 4096,
            avg_write_blocks=7680 / 4096,
            zipf_theta=1.6,
            seq_run_prob=0.20,
            n_families=max(2, n_blocks // 64),
            mutation_fraction=0.08,
            duplicate_fraction=0.05,
            dup_write_fraction=0.02,
            rewrite_fraction=0.04,
            vm_id=vm_id, seed=seed, content_seed=content_seed,
            image_divergence=image_divergence)
