"""Adapter for MSR-Cambridge-style block traces.

The de-facto community format for block traces (SNIA's MSR-Cambridge
release) is a CSV of::

    timestamp,hostname,disk_number,type,offset,size,response_time

with ``offset``/``size`` in bytes and ``type`` in {Read, Write}.  These
traces carry **no content** — and the paper is explicit that content is
what I-CASH's evaluation needs.  The adapter therefore does the honest
thing: it replays the trace's exact *addresses, sizes, ordering and
read/write mix*, and synthesises write payloads from this repository's
family-based content model (documented as a substitution; the content
knobs are explicit parameters).

Use it to drive the simulator with real-world access patterns::

    workload = MSRTraceWorkload("proj_0.csv", mutation_fraction=0.1)
    system = make_system("icash", workload)
    run_benchmark(workload, system)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.sim.request import BLOCK_SIZE, IORequest, OpType
from repro.workloads.content import ContentModel

#: Accepted spellings of the operation column.
_READ_TOKENS = {"read", "r", "rs"}
_WRITE_TOKENS = {"write", "w", "ws"}


def parse_msr_row(row: List[str]) -> Tuple[float, str, int, int, int]:
    """One CSV row -> (timestamp, op, start block, block count, size).

    Raises ``ValueError`` with a row-specific message on malformed input.
    """
    if len(row) < 6:
        raise ValueError(f"MSR row needs >= 6 columns, got {len(row)}")
    timestamp = float(row[0])
    op = row[3].strip().lower()
    if op in _READ_TOKENS:
        op = "read"
    elif op in _WRITE_TOKENS:
        op = "write"
    else:
        raise ValueError(f"unknown MSR op type {row[3]!r}")
    offset = int(row[4])
    size = int(row[5])
    if offset < 0 or size <= 0:
        raise ValueError(f"bad offset/size {offset}/{size}")
    start_block = offset // BLOCK_SIZE
    end_block = -(-(offset + size) // BLOCK_SIZE)
    return timestamp, op, start_block, end_block - start_block, size


class MSRTraceWorkload:
    """Replay an MSR-format trace with synthesised content.

    The address space is the trace's own footprint, remapped densely:
    block addresses are compacted in first-touch order, so a sparse
    multi-terabyte offset range becomes a dense simulatable space.

    Content substitution: writes synthesise payloads via
    :class:`ContentModel` — family-structured blocks with anchored
    partial overwrites — because the source format has none.
    """

    def __init__(self, path: Union[str, Path],
                 max_requests: Optional[int] = None,
                 max_request_blocks: int = 64,
                 n_families: Optional[int] = None,
                 mutation_fraction: float = 0.10,
                 duplicate_fraction: float = 0.05,
                 name: Optional[str] = None,
                 ios_per_transaction: int = 8,
                 app_compute_per_tx: float = 2e-3,
                 io_concurrency: int = 8,
                 app_cpu_fraction: float = 0.55,
                 content_seed: int = 2011) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(f"no trace at {self.path}")
        self.name = name or f"msr:{self.path.stem}"
        self.ios_per_transaction = ios_per_transaction
        self.app_compute_per_tx = app_compute_per_tx
        self.io_concurrency = io_concurrency
        self.app_cpu_fraction = app_cpu_fraction
        self.max_request_blocks = max_request_blocks

        # First pass: learn the footprint and build the dense remap.
        # Entries: (op, dense lba, nblocks, timestamp seconds).
        self._ops: List[Tuple[str, int, int, float]] = []
        remap: dict = {}
        with open(self.path, newline="") as handle:
            for row in csv.reader(handle):
                if not row or row[0].lstrip().startswith("#"):
                    continue
                ts, op, start, nblocks, _size = parse_msr_row(row)
                nblocks = min(nblocks, max_request_blocks)
                for block in range(start, start + nblocks):
                    if block not in remap:
                        remap[block] = len(remap)
                dense = remap[start]
                # Compaction is first-touch order, so a multi-block
                # span stays contiguous when first seen together.
                self._ops.append((op, dense, nblocks, ts))
                if max_requests and len(self._ops) >= max_requests:
                    break
        if not self._ops:
            raise ValueError(f"{self.path} contains no usable requests")
        self._n_blocks = max(64, len(remap))
        if n_families is None:
            n_families = max(2, self._n_blocks // 32)
        self.content = ContentModel(
            n_blocks=self._n_blocks, n_families=n_families,
            mutation_fraction=mutation_fraction,
            duplicate_fraction=duplicate_fraction,
            content_seed=content_seed)
        self._initial = self.content.build_dataset()
        self._shadow = self._initial.copy()
        self.n_requests = len(self._ops)
        self._content_seed = content_seed

    # -- Workload interface -------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def data_size_bytes(self) -> int:
        return self._n_blocks * BLOCK_SIZE

    @property
    def ssd_budget_blocks(self) -> int:
        return max(64, self._n_blocks // 10)

    @property
    def shadow(self) -> np.ndarray:
        return self._shadow

    def build_dataset(self) -> np.ndarray:
        return self._initial.copy()

    def requests(self) -> Iterator[IORequest]:
        self._shadow = self._initial.copy()
        rng = np.random.default_rng(self._content_seed + 7)
        for op, lba, nblocks, ts in self._ops:
            end = min(lba + nblocks, self._n_blocks)
            span = max(1, end - lba)
            if op == "read":
                yield IORequest(OpType.READ, lba, span, timestamp=ts)
                continue
            payload = []
            for block in range(lba, lba + span):
                content = self.content.mutate(self._shadow[block], rng,
                                              lba=block)
                self._shadow[block] = content
                payload.append(content)
            yield IORequest(OpType.WRITE, lba, span, payload=payload,
                            timestamp=ts)

    def footprint_summary(self) -> str:
        reads = sum(1 for op, _, _, _ in self._ops if op == "read")
        return (f"{self.name}: {self.n_requests} requests "
                f"({reads / self.n_requests:.0%} reads) over "
                f"{self._n_blocks} distinct blocks "
                f"({self.data_size_bytes / 2**20:.1f} MiB footprint)")
