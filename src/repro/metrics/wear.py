"""SSD wear and endurance accounting (the lifetime argument of Table 6).

NAND blocks survive a bounded number of erase cycles (the paper cites
10 K for MLC, 100 K for SLC).  I-CASH's claim is that keeping random
writes off the SSD prolongs its life; this module turns the simulator's
per-block erase counters into the numbers that claim is judged by:

* total and per-block erase counts, and how evenly wear spread
  (wear-leveling quality);
* write amplification (GC relocations inflating host writes);
* projected device lifetime at the observed erase rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.devices.ssd import FlashSSD

#: Seconds per year, for lifetime projection.
_YEAR_S = 365.25 * 24 * 3600


@dataclass
class WearReport:
    """Wear summary for one SSD after a simulation run."""

    host_write_pages: int
    gc_moved_pages: int
    total_erases: int
    max_erase_count: int
    mean_erase_count: float
    erase_stddev: float
    write_amplification: float
    endurance_cycles: int
    #: Projected years until the worst block exhausts its endurance,
    #: assuming the observed per-wall-second erase rate continues.
    #: ``None`` when the run saw no erases (effectively unlimited life).
    projected_lifetime_years: Optional[float]

    @property
    def wear_evenness(self) -> float:
        """max / mean erase count; 1.0 is perfectly level wear."""
        if self.mean_erase_count == 0:
            return 1.0
        return self.max_erase_count / self.mean_erase_count


def wear_report(ssd: FlashSSD, wall_time_s: float) -> WearReport:
    """Build a :class:`WearReport` for ``ssd`` over a run of
    ``wall_time_s`` virtual seconds."""
    if wall_time_s <= 0:
        raise ValueError(f"wall time must be positive, got {wall_time_s}")
    counts = ssd.erase_counts()
    total = sum(counts)
    mean = total / len(counts) if counts else 0.0
    variance = (sum((c - mean) ** 2 for c in counts) / len(counts)
                if counts else 0.0)
    max_count = max(counts) if counts else 0
    lifetime: Optional[float] = None
    if max_count > 0:
        # The worst block's erase rate bounds device life.
        worst_rate = max_count / wall_time_s
        remaining = ssd.spec.endurance_cycles - max_count
        lifetime = max(0.0, remaining / worst_rate) / _YEAR_S
    return WearReport(
        host_write_pages=ssd.stats.count("write_blocks"),
        gc_moved_pages=ssd.stats.count("gc_page_moves"),
        total_erases=total,
        max_erase_count=max_count,
        mean_erase_count=mean,
        erase_stddev=math.sqrt(variance),
        write_amplification=ssd.write_amplification,
        endurance_cycles=ssd.spec.endurance_cycles,
        projected_lifetime_years=lifetime)
