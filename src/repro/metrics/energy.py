"""Energy model (Table 5).

The paper measures wall-socket energy with the system's idle draw
subtracted, so what remains is *activity* energy: spindles and actuators,
NAND operations, and the CPU cycles the storage architecture and the
application burn.  The model mirrors that accounting:

* **HDD** — a spinning drive draws power for the whole run (the paper
  charges "4 disks, 15 Walts each" against RAID0), modelled as a spin
  component over wall-clock time plus an actuator component over busy
  time.
* **SSD** — per-operation energies; the paper cites 9.5 µJ per 4 KB read
  and 76.1 µJ per 4 KB write (Section 5.2, from Sun et al.), plus erase
  energy for garbage collection.
* **CPU** — active power over the seconds of application compute and
  storage-stack computation (delta codec, hashing, scans).

Longer runs on slower storage therefore cost more energy even at equal
power — which is most of why RAID0 loses Table 5 so badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.base import StorageSystem


@dataclass(frozen=True)
class EnergySpec:
    """Component power/energy parameters."""

    #: HDD spindle power while the run lasts (W).
    hdd_spin_w: float = 7.0
    #: Additional HDD power while actually seeking/transferring (W);
    #: spin + active together match the paper's 15 W per disk.
    hdd_active_w: float = 8.0
    #: SSD energy per 4 KB page read (J) — the paper's cited 9.5 µJ.
    ssd_read_j: float = 9.5e-6
    #: SSD energy per 4 KB page program (J) — the paper's cited 76.1 µJ.
    ssd_write_j: float = 76.1e-6
    #: SSD energy per block erase (J).
    ssd_erase_j: float = 2.0e-3
    #: CPU active power above idle (W).
    cpu_active_w: float = 65.0
    #: Spindle power of the host's system disk (W).  Charged to systems
    #: that bring no HDD of their own — the paper's Fusion-io baseline
    #: explicitly includes the system disk in its measurement.
    system_disk_w: float = 7.0


@dataclass
class EnergyReport:
    """Per-component activity energy for one benchmark run."""

    hdd_j: float
    ssd_j: float
    cpu_j: float

    @property
    def total_j(self) -> float:
        return self.hdd_j + self.ssd_j + self.cpu_j

    @property
    def total_wh(self) -> float:
        """Watt-hours, the unit of the paper's Table 5."""
        return self.total_j / 3600.0

    def breakdown_wh(self) -> Dict[str, float]:
        return {
            "hdd": self.hdd_j / 3600.0,
            "ssd": self.ssd_j / 3600.0,
            "cpu": self.cpu_j / 3600.0,
        }


def measure_energy(system: StorageSystem, wall_time_s: float,
                   app_cpu_s: float,
                   storage_cpu_s: Optional[float] = None,
                   spec: Optional[EnergySpec] = None) -> EnergyReport:
    """Activity energy of one completed run on ``system``.

    ``wall_time_s`` is the run's total virtual time and ``app_cpu_s`` the
    application compute within it (both come from the experiment runner).
    ``storage_cpu_s`` lets the runner exclude load-phase computation; it
    defaults to the system's cumulative CPU time.
    """
    if spec is None:
        spec = EnergySpec()
    if wall_time_s < 0 or app_cpu_s < 0:
        raise ValueError("times cannot be negative")
    if storage_cpu_s is None:
        storage_cpu_s = system.cpu_time
    hdd_j = 0.0
    ssd_j = 0.0
    has_hdd = False
    for device in system.devices():
        name = getattr(device, "name", "")
        if name == "ssd":
            stats = device.stats
            ssd_j += stats.count("read_blocks") * spec.ssd_read_j
            ssd_j += stats.count("write_blocks") * spec.ssd_write_j
            ssd_j += stats.count("gc_page_moves") * (
                spec.ssd_read_j + spec.ssd_write_j)
            ssd_j += stats.count("gc_erases") * spec.ssd_erase_j
        elif name == "hdd":
            has_hdd = True
            hdd_j += spec.hdd_spin_w * wall_time_s
            hdd_j += spec.hdd_active_w * device.busy_time
    if not has_hdd:
        # The host still spins its system disk for the whole run.
        hdd_j += spec.system_disk_w * wall_time_s
    cpu_j = spec.cpu_active_w * (app_cpu_s + storage_cpu_s)
    return EnergyReport(hdd_j=hdd_j, ssd_j=ssd_j, cpu_j=cpu_j)
