"""Measurement models layered over simulation runs.

* :mod:`repro.metrics.energy` — the power model behind Table 5
  (watt-hours per benchmark run, per architecture).
* :mod:`repro.metrics.wear` — SSD endurance accounting behind Table 6's
  lifetime argument (erase counts, write amplification, projected life).
* :mod:`repro.metrics.cpu` — host CPU utilisation behind Figures 6(b),
  8(b) and 10(b).
"""

from repro.metrics.cpu import cpu_utilization
from repro.metrics.energy import EnergyReport, EnergySpec, measure_energy
from repro.metrics.wear import WearReport, wear_report

__all__ = [
    "EnergyReport",
    "EnergySpec",
    "WearReport",
    "cpu_utilization",
    "measure_energy",
    "wear_report",
]
