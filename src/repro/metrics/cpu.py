"""Host CPU utilisation model (Figures 6(b), 8(b), 10(b)).

The prototype runs the I-CASH logic on the host CPU, so its compression,
decompression and scan cycles compete with the application.  The paper's
finding is that the overhead is small — utilisation across the five
architectures differs by less than 4 % — because the codec costs are
microseconds against millisecond-scale transactions.

Utilisation here is simply busy CPU seconds over wall-clock seconds:
the application's compute plus whatever the storage architecture burned
(``StorageSystem.cpu_time``: delta codec and scans for I-CASH, content
hashing for dedup, nothing for the passive architectures).
"""

from __future__ import annotations


def cpu_utilization(app_cpu_s: float, storage_cpu_s: float,
                    wall_time_s: float) -> float:
    """Fraction of wall-clock time the host CPU was busy, clamped to 1."""
    if wall_time_s <= 0:
        raise ValueError(f"wall time must be positive, got {wall_time_s}")
    if app_cpu_s < 0 or storage_cpu_s < 0:
        raise ValueError("CPU times cannot be negative")
    return min(1.0, (app_cpu_s + storage_cpu_s) / wall_time_s)
