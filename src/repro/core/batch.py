"""Vectorised batch kernels over stacked 4 KB blocks.

Every kernel here has a scalar twin in :mod:`repro.core.signatures` or
:mod:`repro.delta.encoder`; the scalar implementations remain the
semantic reference and the golden-equivalence tests
(``tests/test_batch_kernels.py``) assert bit-identical results on
random shapes, non-contiguous views, empty batches and single blocks.

The point of the batch tier is wall-clock only: callers that already
hold ``N`` blocks in a contiguous ``(N, 4096)`` uint8 array (controller
ingest, multi-block writes, the similarity scanner's candidate window)
pay one numpy pass instead of ``N`` python round trips.  Simulated
metrics are unaffected by construction — the kernels compute the same
values in the same order the scalar loops would.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.signatures import (
    _FLAT_SAMPLE_INDEX,
    SAMPLE_OFFSETS,
    SUB_BLOCKS,
    SignatureScheme,
    _cache_get,
    _cache_put,
    _hash_from_bytes,
)
from repro.delta.encoder import (
    DELTA_HEADER_BYTES,
    MERGE_GAP,
    RUN_HEADER_BYTES,
    Delta,
)
from repro.sim.request import BLOCK_SIZE


def _as_block_matrix(blocks: np.ndarray, name: str) -> np.ndarray:
    """Validate and normalise an ``(N, 4096)`` uint8 batch."""
    arr = np.asarray(blocks)
    if arr.ndim != 2 or arr.shape[1] != BLOCK_SIZE:
        raise ValueError(
            f"{name} must be an (N, {BLOCK_SIZE}) array, got shape "
            f"{arr.shape}")
    if arr.dtype != np.uint8:
        raise ValueError(f"{name} must be uint8, got {arr.dtype}")
    return np.ascontiguousarray(arr)


def block_signatures_batch(blocks: np.ndarray,
                           scheme: SignatureScheme = SignatureScheme.SAMPLED,
                           ) -> np.ndarray:
    """Sub-signatures of ``N`` stacked blocks as an ``(N, 8)`` uint8 array.

    The sampled scheme is one fancy-index gather plus a reshape-sum over
    ``_FLAT_SAMPLE_INDEX`` — uint8 summation wraps at 256, which *is*
    the paper's mod-256.  The hash scheme has no vector form (SHA-1 per
    sub-block) and falls back to the scalar reference per row.
    """
    arr = _as_block_matrix(blocks, "blocks")
    n = arr.shape[0]
    if n == 0:
        return np.empty((0, SUB_BLOCKS), dtype=np.uint8)
    if scheme is SignatureScheme.SAMPLED:
        return (arr[:, _FLAT_SAMPLE_INDEX]
                .reshape(n, SUB_BLOCKS, len(SAMPLE_OFFSETS))
                .sum(axis=2, dtype=np.uint8))
    out = np.empty((n, SUB_BLOCKS), dtype=np.uint8)
    for i in range(n):
        out[i] = _hash_from_bytes(arr[i].tobytes())
    return out


def signature_tuples(matrix: np.ndarray) -> List[Tuple[int, ...]]:
    """Rows of a signature matrix as the scalar API's python tuples."""
    return [tuple(row) for row in matrix.tolist()]


def block_signatures_many(blocks: Sequence[np.ndarray],
                          scheme: SignatureScheme = SignatureScheme.SAMPLED,
                          ) -> List[Tuple[int, ...]]:
    """Cache-aware signatures for a sequence of individual blocks.

    Drop-in for ``[block_signatures(b) for b in blocks]``: each block is
    looked up in the memoisation LRU first, then the misses are computed
    in one :func:`block_signatures_batch` pass and inserted.  Duplicate
    content within one batch is computed once.
    """
    results: List[Optional[Tuple[int, ...]]] = [None] * len(blocks)
    miss_raw: dict = {}
    miss_slots: List[Tuple[int, Tuple[str, bytes]]] = []
    for i, block in enumerate(blocks):
        arr = np.asarray(block)
        if arr.nbytes != BLOCK_SIZE:
            raise ValueError(
                f"signatures are defined on {BLOCK_SIZE}-byte blocks, "
                f"got {arr.nbytes}")
        if arr.dtype != np.uint8:
            # Rare non-byte layouts keep scalar semantics (uncached).
            from repro.core.signatures import block_signatures
            results[i] = block_signatures(arr, scheme)
            continue
        key = (scheme.value, arr.tobytes())
        cached = _cache_get(key)
        if cached is not None:
            results[i] = cached
        else:
            if key not in miss_raw:
                miss_raw[key] = len(miss_raw)
            miss_slots.append((i, key))
    if miss_raw:
        stacked = np.frombuffer(
            b"".join(key[1] for key in miss_raw),
            dtype=np.uint8).reshape(len(miss_raw), BLOCK_SIZE)
        matrix = block_signatures_batch(stacked, scheme)
        computed = signature_tuples(matrix)
        for key, row in zip(miss_raw, computed):
            _cache_put(key, row)
        for i, key in miss_slots:
            results[i] = computed[miss_raw[key]]
    return results  # type: ignore[return-value]


def encode_delta_batch(targets: np.ndarray,
                       references: np.ndarray) -> List[Delta]:
    """Delta-encode ``N`` target blocks against ``N`` reference blocks.

    Golden-equivalent to ``[encode_delta(t, r) for t, r in zip(...)]``:
    one vectorised diff + edge detection + gap merge over the whole
    batch, then per-run payload slices.  Identical rows produce the
    empty (identity) delta, exactly as the scalar encoder does.
    """
    tgt = _as_block_matrix(targets, "targets")
    ref = _as_block_matrix(references, "references")
    if tgt.shape != ref.shape:
        raise ValueError(
            f"targets and references must match in shape: "
            f"{tgt.shape} vs {ref.shape}")
    n = tgt.shape[0]
    if n == 0:
        return []
    # Edge detection over every row at once: pad each row with a False
    # column on both sides so run starts/ends appear as transitions.
    padded = np.zeros((n, BLOCK_SIZE + 2), dtype=bool)
    np.not_equal(tgt, ref, out=padded[:, 1:-1])
    edges = padded[:, 1:] != padded[:, :-1]
    rows, cols = np.nonzero(edges)
    if rows.size == 0:
        return [Delta(runs=()) for _ in range(n)]
    # np.nonzero is row-major, so each row's edge columns alternate
    # start, end, start, end ...; parity within the row splits them.
    edge_counts = edges.sum(axis=1)
    row_first = np.concatenate(([0], np.cumsum(edge_counts)[:-1]))
    parity = (np.arange(rows.size) - row_first[rows]) % 2
    starts = cols[parity == 0]
    ends = cols[parity == 1]
    run_rows = rows[parity == 0]
    # Gap merge (scalar rule: gaps <= MERGE_GAP coalesce) across the
    # whole batch; a row boundary always starts a new merged run.
    keep = np.empty(starts.size, dtype=bool)
    keep[0] = True
    if starts.size > 1:
        keep[1:] = ((starts[1:] - ends[:-1] > MERGE_GAP)
                    | (run_rows[1:] != run_rows[:-1]))
    keep_idx = np.flatnonzero(keep)
    m_starts = starts[keep_idx]
    m_ends = ends[np.concatenate((keep_idx[1:] - 1, [starts.size - 1]))]
    m_rows = run_rows[keep_idx]
    # Group merged runs back into one Delta per row.
    boundaries = np.flatnonzero(np.diff(m_rows)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [m_rows.size]))
    deltas = [Delta(runs=())] * n
    starts_list = m_starts.tolist()
    ends_list = m_ends.tolist()
    # Vectorised wire headers: the scalar ``Delta._wire`` packs
    # ``<H{2n}H`` little-endian uint16 pairs (offset, length); a ``<u2``
    # row-major array produces the identical byte stream, so each
    # delta's run-header section is one slice of this buffer.
    header16 = np.empty((m_starts.size, 2), dtype="<u2")
    header16[:, 0] = m_starts
    header16[:, 1] = m_ends - m_starts
    run_headers = header16.tobytes()
    changed_per_group = np.add.reduceat(m_ends - m_starts,
                                        group_starts).tolist()
    for g0, g1, changed in zip(group_starts.tolist(), group_ends.tolist(),
                               changed_per_group):
        row = int(m_rows[g0])
        # One bulk copy to bytes then cheap slicing, matching the scalar
        # encoder's payload materialisation byte for byte.
        raw = tgt[row].tobytes()
        starts_g = starts_list[g0:g1]
        payloads = [raw[s:e] for s, e in zip(starts_g, ends_list[g0:g1])]
        delta = Delta(runs=tuple(zip(starts_g, payloads)))
        # Preinstall both cached_property views: size follows from the
        # merged run bounds, and the wire is the count prefix + this
        # group's header slice + the payloads — sparing every consumer
        # (the accept threshold, the log packer) the lazy recompute.
        n_runs = g1 - g0
        delta.__dict__["size_bytes"] = (DELTA_HEADER_BYTES
                                        + RUN_HEADER_BYTES * n_runs
                                        + changed)
        delta.__dict__["_wire"] = (struct.pack("<H", n_runs)
                                   + run_headers[4 * g0:4 * g1]
                                   + b"".join(payloads))
        deltas[row] = delta
    return deltas


def apply_delta_batch(deltas: Sequence[Delta],
                      references: np.ndarray) -> np.ndarray:
    """Reconstruct ``N`` blocks from deltas over ``N`` reference blocks.

    Golden-equivalent to ``np.stack([apply_delta(d, r) ...])`` for valid
    deltas (sorted, non-overlapping runs — the only kind the encoder
    produces): all patch bytes across the batch are scattered with one
    fancy assignment into a copy of the reference matrix.
    """
    ref = _as_block_matrix(references, "references")
    if len(deltas) != ref.shape[0]:
        raise ValueError(
            f"got {len(deltas)} deltas for {ref.shape[0]} references")
    out = ref.copy()
    starts: List[int] = []
    lengths: List[int] = []
    payloads: List[bytes] = []
    for i, delta in enumerate(deltas):
        base = i * BLOCK_SIZE
        for offset, payload in delta.runs:
            end = offset + len(payload)
            if offset < 0 or end > BLOCK_SIZE:
                raise ValueError(
                    f"delta run [{offset}, {end}) outside block "
                    f"of {BLOCK_SIZE} bytes")
            if payload:
                starts.append(base + offset)
                lengths.append(len(payload))
                payloads.append(payload)
    if not starts:
        return out
    starts_arr = np.asarray(starts, dtype=np.intp)
    lengths_arr = np.asarray(lengths, dtype=np.intp)
    # Same trick as Delta._patch_plan, batched: expand each run into its
    # absolute byte indices with one repeat + cumulative ramp.
    total = int(lengths_arr.sum())
    ramp = np.arange(total, dtype=np.intp)
    ramp -= np.repeat(np.cumsum(lengths_arr) - lengths_arr, lengths_arr)
    indices = np.repeat(starts_arr, lengths_arr) + ramp
    values = np.frombuffer(b"".join(payloads), dtype=np.uint8)
    out.reshape(-1)[indices] = values
    return out
