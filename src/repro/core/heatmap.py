"""The Heatmap: a content-popularity frequency spectrum.

Section 4.2: a two-dimensional array of S rows (one per sub-block
position) by Vs columns (one per possible sub-signature value).  Every
block access increments the S entries matching the block's
sub-signatures.  Because *similar* blocks share sub-signature values, the
Heatmap captures content locality; because *repeated* accesses increment
the same entries, it captures temporal locality — both with a single
cheap update.

The dimensions are configurable so the unit tests can reproduce the
paper's worked example (Table 1: S = 2 sub-blocks, Vs = 4 values) exactly,
while the production configuration is 8 x 256.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.signatures import SIGNATURE_VALUES, SUB_BLOCKS


class Heatmap:
    """S x Vs popularity counters over sub-signature values."""

    def __init__(self, rows: int = SUB_BLOCKS,
                 values: int = SIGNATURE_VALUES) -> None:
        if rows < 1 or values < 1:
            raise ValueError(
                f"heatmap dimensions must be positive, got {rows}x{values}")
        self.rows = rows
        self.values = values
        self._counts = np.zeros((rows, values), dtype=np.int64)
        self._rows_index = np.arange(rows)
        self.total_accesses = 0
        # Per-access increments are buffered and scattered lazily:
        # counter increments commute, so any reader that flushes first
        # observes exactly the state N eager updates would have built,
        # while the hot path pays a list append instead of a numpy
        # fancy-index round trip per IO.
        self._pending: List[Tuple[int, ...]] = []

    def _check(self, signatures: Sequence[int]) -> None:
        if len(signatures) != self.rows:
            raise ValueError(
                f"expected {self.rows} sub-signatures, got {len(signatures)}")
        for sig in signatures:
            if not 0 <= sig < self.values:
                raise ValueError(
                    f"sub-signature {sig} outside [0, {self.values})")

    def record(self, signatures: Sequence[int]) -> None:
        """Register one access of a block with the given sub-signatures."""
        self._check(signatures)
        self._pending.append(tuple(signatures))
        self.total_accesses += 1

    def _flush(self) -> None:
        if not self._pending:
            return
        sig = np.asarray(self._pending, dtype=np.intp)
        np.add.at(self._counts, (self._rows_index, sig), 1)
        self._pending.clear()

    def _check_matrix(self, matrix: np.ndarray) -> np.ndarray:
        sig = np.asarray(matrix)
        if sig.ndim != 2 or sig.shape[1] != self.rows:
            raise ValueError(
                f"expected an (N, {self.rows}) signature matrix, "
                f"got shape {sig.shape}")
        if sig.size and (int(sig.min()) < 0 or int(sig.max()) >= self.values):
            raise ValueError(
                f"sub-signature outside [0, {self.values})")
        return sig

    def record_batch(self, matrix: np.ndarray) -> None:
        """Register one access per row of an ``(N, rows)`` signature matrix.

        Exactly equivalent to ``N`` :meth:`record` calls in any order —
        counter increments commute — but one ``np.add.at`` scatter.
        """
        sig = self._check_matrix(matrix)
        np.add.at(self._counts, (self._rows_index, sig), 1)
        self.total_accesses += sig.shape[0]

    def popularity_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row :meth:`popularity` of a signature matrix (int64)."""
        sig = self._check_matrix(matrix)
        self._flush()
        return self._counts[self._rows_index, sig].sum(axis=1)

    def popularity(self, signatures: Sequence[int]) -> int:
        """Block popularity: sum of its sub-signature popularity values.

        This is the quantity Table 2 computes when selecting a reference
        block — the most popular block's content is the best compression
        anchor for the working set.
        """
        self._check(signatures)
        self._flush()
        return int(self._counts[self._rows_index, list(signatures)].sum())

    def row(self, index: int) -> Tuple[int, ...]:
        """One row of popularity counters (used by tests and reports)."""
        self._flush()
        return tuple(int(v) for v in self._counts[index])

    def decay(self, factor: float = 0.5) -> None:
        """Age all counters multiplicatively.

        The paper's prototype never ages its Heatmap (its runs are
        bounded); long-running deployments need aging so stale content
        does not anchor reference selection forever.  Exposed as an
        extension and exercised by the ablation tests.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0, 1], got {factor}")
        self._flush()  # buffered accesses precede the aging event
        self._counts = (self._counts * factor).astype(np.int64)

    def reset(self) -> None:
        self._pending.clear()
        self._counts.fill(0)
        self.total_accesses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Heatmap(rows={self.rows}, values={self.values}, "
                f"accesses={self.total_accesses})")
