"""I-CASH configuration.

Defaults follow the paper's prototype (Sections 4.2–4.3): 4 KB cache
blocks split into eight 512 B sub-blocks with 1-byte sampled
sub-signatures; a similarity scan every 2 000 I/Os over 4 000 LRU blocks;
a 2 048-byte delta spill threshold; delta storage in 64-byte segments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signatures import SignatureScheme


@dataclass(frozen=True)
class ICASHConfig:
    """All tunables of one I-CASH storage element."""

    # -- geometry ----------------------------------------------------------
    #: SSD reference store capacity in 4 KB blocks.  The paper typically
    #: provisions about 10 % of the benchmark's data-set size.
    ssd_capacity_blocks: int = 4096
    #: RAM dedicated to cached data blocks, in bytes.
    data_ram_bytes: int = 16 * 1024 * 1024
    #: RAM dedicated to the delta segment pool, in bytes (the paper's
    #: "delta buffer", 32–512 MB depending on benchmark).
    delta_ram_bytes: int = 8 * 1024 * 1024
    #: Maximum virtual blocks tracked (metadata entries).  Virtual blocks
    #: are tiny, so the prototype keeps far more of them than data blocks.
    max_virtual_blocks: int = 65536
    #: HDD delta-log region size in blocks.
    log_blocks: int = 16384
    #: Place the delta log on byte-addressable NVRAM (PRAM) instead of
    #: the HDD — the extension Section 2.1 points at via Sun et al.
    #: Appends persist in microseconds and the crash-loss window shrinks
    #: accordingly; the HDD keeps only the data region.
    log_on_nvram: bool = False

    # -- signatures and similarity ------------------------------------------
    signature_scheme: SignatureScheme = SignatureScheme.SAMPLED
    #: Run the similarity scan every this many I/Os (paper: 2 000).
    scan_interval: int = 2000
    #: Blocks examined per scan from the head of the LRU queue (paper: 4 000).
    scan_window: int = 4000
    #: Sub-signature positions that must match before a delta encode is
    #: even attempted between a block and a candidate reference.
    min_signature_match: int = 4
    #: Largest delta (bytes) accepted when associating a block with a
    #: reference during the scan.
    delta_accept_bytes: int = 2048

    # -- write path ------------------------------------------------------------
    #: Deltas larger than this spill the whole block to the SSD instead
    #: (paper: 2 048 bytes — "to release delta buffer").
    delta_spill_bytes: int = 2048
    #: Flush dirty deltas and data to the HDD at least every this many I/Os
    #: (the tunable reliability/performance knob of Section 3.3).
    flush_interval: int = 1024
    #: Also flush once this many deltas are dirty — "a tunable parameter
    #: based on the number of dirty delta blocks in the system" (§3.3).
    #: Batching matters: each flush packs its records into shared delta
    #: blocks, so bigger batches mean fewer, denser log writes.
    flush_dirty_count: int = 512
    #: How dirty deltas are ordered into packed delta blocks:
    #: ``"arrival"`` keeps write order, so deltas of one sequential or
    #: temporal burst share a delta block (§3.1 case 1 — one later HDD
    #: read then serves the whole burst); ``"lba"`` packs by address,
    #: favouring spatially clustered re-access.
    flush_order: str = "arrival"

    # -- CPU cost model ----------------------------------------------------------
    #: Time to delta-compress one 4 KB block (s).  The paper overlaps
    #: compression with I/O processing, so only ``compress_exposed_fraction``
    #: of it lands on the request's critical path.
    compress_s: float = 15e-6
    compress_exposed_fraction: float = 0.2
    #: Time to decompress (apply) one delta (s); the paper measures ~10 µs.
    decompress_s: float = 10e-6
    #: CPU time per candidate comparison in the similarity scan (s).
    scan_compare_s: float = 2e-6

    # -- long-run behaviour ------------------------------------------------------
    #: Age the Heatmap multiplicatively every this many I/Os (0 = never).
    #: The paper's bounded runs never need aging; long-lived deployments
    #: do, or stale content anchors reference selection forever.
    heatmap_decay_interval: int = 0
    #: Multiplicative factor applied at each decay.
    heatmap_decay_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.ssd_capacity_blocks < 1:
            raise ValueError("SSD needs at least one block")
        if self.scan_interval < 1 or self.scan_window < 1:
            raise ValueError("scan parameters must be positive")
        if not 0.0 <= self.compress_exposed_fraction <= 1.0:
            raise ValueError("compress_exposed_fraction must be in [0, 1]")
        if self.delta_spill_bytes < self.delta_accept_bytes:
            raise ValueError(
                "spill threshold below accept threshold would spill every "
                "freshly associated block")
        if self.flush_order not in ("arrival", "lba"):
            raise ValueError(
                f"flush_order must be 'arrival' or 'lba', "
                f"got {self.flush_order!r}")
        if self.heatmap_decay_interval < 0:
            raise ValueError("heatmap_decay_interval cannot be negative")
        if not 0.0 <= self.heatmap_decay_factor <= 1.0:
            raise ValueError(
                f"heatmap_decay_factor must be in [0, 1], "
                f"got {self.heatmap_decay_factor}")
