"""Crash recovery from durable I-CASH state (Section 3.3).

After a failure, RAM contents (dirty data blocks, unflushed deltas) are
gone.  What survives is:

* the HDD data region (the backing store),
* the SSD's reference blocks and spilled blocks,
* the HDD delta log.

"I-CASH can recover data by combining reference blocks with deltas
unrolled from the delta logs in the HDD."  Replay walks the log in flush
order; the *last* record for each block wins (the controller always
appends a block's current delta, so later records supersede earlier
ones), and each winning delta is applied to its reference's SSD copy.

Writes that never reached a flush are lost — that is the bounded loss
window the flush-interval knob of Section 3.3 trades against performance.
The test suite asserts both sides: recovery is byte-exact after a flush,
and the loss window never exceeds the data written since the last flush.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.controller import ICASHController
from repro.delta.encoder import apply_delta


class RecoveredImage:
    """The durable content of an I-CASH element after a simulated crash."""

    def __init__(self, controller: ICASHController) -> None:
        self._backing = controller.backing
        self._ssd = controller.ssd_content_snapshot()
        self._spilled = set(controller.spilled_lbas)
        self._references = set(controller.reference_lbas)
        # Shadowed references serve dependents from their frozen copy but
        # recover their *own* content from the HDD data region.
        self._shadowed = set(controller.shadowed_reference_lbas)
        # Unroll the log: the last record per block wins, and only records
        # the durable delta map still vouches for count — a block that was
        # later spilled or reverted leaves stale records behind.
        delta_map = controller.delta_map_snapshot()
        self._winning: Dict[int, object] = {}
        for record in controller.log.replay():
            mapped = delta_map.get(record.lba)
            if mapped is not None and mapped[0] == record.ref_lba:
                self._winning[record.lba] = record
        #: Torn/corrupted log blocks skipped during replay; their deltas
        #: fall back to older durable state.
        self.corrupt_blocks_skipped = controller.log.corrupt_blocks_skipped

    def read(self, lba: int) -> np.ndarray:
        """The recovered content of one block."""
        record = self._winning.get(lba)
        if record is not None and record.ref_lba in self._ssd:
            return apply_delta(record.delta, self._ssd[record.ref_lba])
        if lba in self._shadowed:
            return self._backing.get(lba)
        if lba in self._spilled or lba in self._references:
            return self._ssd[lba].copy()
        return self._backing.get(lba)

    def read_many(self, lbas: Iterable[int]) -> Dict[int, np.ndarray]:
        return {lba: self.read(lba) for lba in lbas}

    @property
    def logged_blocks(self) -> int:
        """Distinct blocks with a recoverable delta in the log."""
        return len(self._winning)


def recover(controller: ICASHController) -> RecoveredImage:
    """Simulate a crash of ``controller`` and rebuild durable content.

    The controller object itself is left untouched (the simulation can
    continue); the returned image answers "what would a restarted I-CASH
    element serve for block X".
    """
    return RecoveredImage(controller)


def rebuild_controller(crashed: ICASHController) -> ICASHController:
    """Restart after a crash: build a *fresh* controller from durable
    state only, ready to serve I/O.

    This is the full §3.3 story rather than a read-only view: the new
    element starts with

    * the HDD data region patched to the recovered content of every
      delta-mapped and shadowed block (log replay applied once, then the
      log is considered consumed),
    * the SSD reference/spill set re-registered,
    * empty RAM — no data blocks, no delta pool, cold Heatmap.

    The returned controller then re-learns its reference/associate
    structure online, exactly like a rebooted prototype would.
    """
    image = RecoveredImage(crashed)
    capacity = crashed.capacity_blocks
    # Durable content for every block becomes the new data region.
    rebuilt = np.empty((capacity, 4096), dtype=np.uint8)
    for lba in range(capacity):
        rebuilt[lba] = image.read(lba)
    fresh = ICASHController(rebuilt, crashed.config)
    # Re-register the surviving SSD population.  The fresh element has no
    # delta map yet — nothing depends on the *old* frozen copies — so
    # every reference re-freezes at its recovered current content (a
    # reference that carried its own logged delta would otherwise serve
    # stale bytes).  The new structure then re-forms online.
    from repro.core.signatures import block_signatures
    from repro.core.virtual_block import BlockKind
    for lba in sorted(crashed.reference_lbas):
        slot = fresh._acquire_ssd_slot(lba)
        if slot is None:  # pragma: no cover - same capacity as before
            break
        fresh._ssd_data[lba] = rebuilt[lba].copy()
        vb = fresh._install_virtual_block(lba, BlockKind.REFERENCE,
                                          ssd_slot=slot)
        vb.signatures = block_signatures(rebuilt[lba],
                                         crashed.config.signature_scheme)
        fresh.scanner.note_reference(vb)
    for lba in sorted(crashed.spilled_lbas):
        slot = fresh._acquire_ssd_slot(lba)
        if slot is None:  # pragma: no cover
            break
        fresh._ssd_data[lba] = rebuilt[lba].copy()
        fresh._spilled.add(lba)
        fresh._slot_of[lba] = slot
    fresh.stats.bump("rebuilt_references", len(crashed.reference_lbas))
    fresh.stats.bump("rebuilt_spills", len(crashed.spilled_lbas))
    return fresh


def verify_recovery(controller: ICASHController,
                    expected: Dict[int, np.ndarray],
                    ) -> Dict[int, bool]:
    """Compare recovered content against expected content per block.

    Returns ``{lba: matches}``; helper for tests and the reliability
    example.
    """
    image = recover(controller)
    return {lba: bool(np.array_equal(image.read(lba), content))
            for lba, content in expected.items()}
