"""The I-CASH virtual-block cache.

An LRU-ordered map of :class:`VirtualBlock` plus the two capacity budgets
that drive the paper's three replacement policies (Section 4.3):

1. **Virtual block replacement** — no free virtual block: replace the
   first *non-reference* block from the LRU tail.
2. **Data block replacement** — RAM data budget exhausted: drop the data
   of the first block from the tail that holds one (a reference block's
   data copy may also be dropped; the SSD still holds it).
3. **Delta replacement** — segment pool exhausted: replace the first
   non-reference block from the tail that holds a delta.

The cache is a pure data structure: it *finds* victims and accounts
capacity, but performing the dirty-state cleanup a victim needs (flushing
deltas, writing data back) requires devices, so that lives in the
controller.  Auxiliary LRU-ordered indexes of data holders and delta
holders keep victim search O(1) instead of O(cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.core.virtual_block import VirtualBlock
from repro.delta.segments import SegmentPool
from repro.sim.request import BLOCK_SIZE


class ICashCache:
    """LRU cache of virtual blocks with data and delta budgets."""

    def __init__(self, max_virtual_blocks: int, data_ram_bytes: int,
                 segment_pool: SegmentPool) -> None:
        if max_virtual_blocks < 8:
            raise ValueError(
                f"cache needs at least 8 virtual blocks, "
                f"got {max_virtual_blocks}")
        self.max_virtual_blocks = max_virtual_blocks
        self.max_data_blocks = max(1, data_ram_bytes // BLOCK_SIZE)
        self.segments = segment_pool
        self._blocks: "OrderedDict[int, VirtualBlock]" = OrderedDict()
        # LRU-ordered views over the holders of each budgeted resource.
        self._data_order: "OrderedDict[int, VirtualBlock]" = OrderedDict()
        self._delta_order: "OrderedDict[int, VirtualBlock]" = OrderedDict()

    # -- basic map operations ------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, lba: int) -> bool:
        return lba in self._blocks

    def get(self, lba: int, touch: bool = True) -> Optional[VirtualBlock]:
        vb = self._blocks.get(lba)
        if vb is not None and touch:
            self.touch(lba)
        return vb

    def touch(self, lba: int) -> None:
        if lba not in self._blocks:
            return
        self._blocks.move_to_end(lba)
        if lba in self._data_order:
            self._data_order.move_to_end(lba)
        if lba in self._delta_order:
            self._delta_order.move_to_end(lba)

    def insert(self, vb: VirtualBlock) -> None:
        """Insert at the MRU end.  Capacity must already be ensured."""
        if vb.lba in self._blocks:
            raise ValueError(f"virtual block {vb.lba} already cached")
        if len(self._blocks) >= self.max_virtual_blocks:
            raise MemoryError("virtual block capacity exhausted")
        self._blocks[vb.lba] = vb
        if vb.has_data:
            if len(self._data_order) >= self.max_data_blocks:
                raise MemoryError("data block capacity exhausted")
            self._data_order[vb.lba] = vb

    def remove(self, lba: int) -> VirtualBlock:
        """Detach a virtual block, releasing its data and delta budgets."""
        vb = self._blocks.pop(lba)
        self._data_order.pop(lba, None)
        self._delta_order.pop(lba, None)
        if vb.delta_segments_bytes:
            self.segments.free(vb.delta_segments_bytes)
            vb.delta_segments_bytes = 0
        vb.delta = None
        vb.data = None
        return vb

    # -- budget-aware attribute updates ------------------------------------------

    def attach_data(self, vb: VirtualBlock, data) -> None:
        """Give ``vb`` a RAM data block.  Capacity must be ensured first."""
        if not vb.has_data:
            if len(self._data_order) >= self.max_data_blocks:
                raise MemoryError("data block capacity exhausted")
            self._data_order[vb.lba] = vb
            self._data_order.move_to_end(vb.lba)
        vb.data = data

    def drop_data(self, vb: VirtualBlock) -> None:
        if vb.has_data:
            vb.data = None
            vb.data_dirty = False
            self._data_order.pop(vb.lba, None)

    def attach_delta(self, vb: VirtualBlock, delta) -> None:
        """Store a delta for ``vb`` in the segment pool (replacing any old
        one).  Segment capacity must be ensured first."""
        if vb.delta_segments_bytes:
            self.segments.free(vb.delta_segments_bytes)
            vb.delta_segments_bytes = 0
        self.segments.allocate(delta.size_bytes)
        vb.delta = delta
        vb.delta_segments_bytes = delta.size_bytes
        self._delta_order[vb.lba] = vb
        self._delta_order.move_to_end(vb.lba)

    def drop_delta(self, vb: VirtualBlock) -> None:
        if vb.delta_segments_bytes:
            self.segments.free(vb.delta_segments_bytes)
            vb.delta_segments_bytes = 0
        vb.delta = None
        vb.delta_dirty = False
        self._delta_order.pop(vb.lba, None)

    # -- victim search (the three policies) ------------------------------------------

    def find_virtual_victim(self) -> Optional[VirtualBlock]:
        """Policy 1: first non-reference block from the LRU tail."""
        for vb in self._blocks.values():
            if not vb.is_reference:
                return vb
        return None

    def find_data_victim(self) -> Optional[VirtualBlock]:
        """Policy 2: first data-holding block from the LRU tail."""
        for vb in self._data_order.values():
            return vb
        return None

    def find_delta_victim(self) -> Optional[VirtualBlock]:
        """Policy 3: first non-reference, delta-holding block from tail."""
        for vb in self._delta_order.values():
            if not vb.is_reference:
                return vb
        return None

    # -- capacity queries --------------------------------------------------------

    @property
    def virtual_blocks_free(self) -> int:
        return self.max_virtual_blocks - len(self._blocks)

    @property
    def data_blocks_used(self) -> int:
        return len(self._data_order)

    @property
    def data_blocks_free(self) -> int:
        return self.max_data_blocks - len(self._data_order)

    # -- iteration ---------------------------------------------------------------

    def lru_order(self) -> Iterator[VirtualBlock]:
        """Blocks from least- to most-recently used."""
        return iter(list(self._blocks.values()))

    def mru_window(self, count: int) -> List[VirtualBlock]:
        """The ``count`` most recently used blocks, MRU first.

        This is the scan window: Section 4.2 checks "the 4,000 blocks from
        the beginning of an LRU queue" — the hot end, where reference
        candidates live.
        """
        out: List[VirtualBlock] = []
        for vb in reversed(self._blocks.values()):
            out.append(vb)
            if len(out) >= count:
                break
        return out

    def references(self) -> List[VirtualBlock]:
        return [vb for vb in self._blocks.values() if vb.is_reference]
