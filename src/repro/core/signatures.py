"""Content sub-signatures.

Section 4.2: each 4 KB block is divided into eight 512 B sub-blocks and a
1-byte *sub-signature* is computed per sub-block as the sum of the bytes
at offsets 0, 16, 32 and 64 (mod 256).  The paper deliberately avoids
cryptographic hashing here: hashing detects *identical* content, but a
single changed byte destroys the hash, which hurts *similarity* detection
— and similarity, not identity, is what pairs blocks with reference
blocks.

A hash-based scheme is provided anyway so the ablation bench
(``bench_ablation_signature_scheme``) can quantify that design choice.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Tuple

import numpy as np

from repro.sim.request import BLOCK_SIZE

#: Number of sub-blocks per 4 KB block.
SUB_BLOCKS = 8
#: Bytes per sub-block.
SUB_BLOCK_BYTES = BLOCK_SIZE // SUB_BLOCKS
#: Byte offsets within a sub-block that the sampled signature sums.
SAMPLE_OFFSETS = (0, 16, 32, 64)
#: Number of possible values of one sub-signature.
SIGNATURE_VALUES = 256


class SignatureScheme(enum.Enum):
    """How sub-signatures are derived from sub-block content."""

    #: The paper's scheme: sum of four sampled bytes, mod 256.  Cheap, and
    #: tolerant of changes outside the sampled offsets — which is what
    #: makes it a *similarity* signature.
    SAMPLED = "sampled"
    #: First byte of SHA-1 over the whole sub-block.  Detects identity
    #: only; kept for the ablation.
    HASH = "hash"


def block_signatures(block: np.ndarray,
                     scheme: SignatureScheme = SignatureScheme.SAMPLED,
                     ) -> Tuple[int, ...]:
    """The 8-tuple of sub-signatures of a 4 KB block."""
    if block.nbytes != BLOCK_SIZE:
        raise ValueError(
            f"signatures are defined on {BLOCK_SIZE}-byte blocks, "
            f"got {block.nbytes}")
    if scheme is SignatureScheme.SAMPLED:
        return _sampled_signatures(block)
    return _hash_signatures(block)


def _sampled_signatures(block: np.ndarray) -> Tuple[int, ...]:
    view = block.reshape(SUB_BLOCKS, SUB_BLOCK_BYTES)
    # Sum the four sampled columns per sub-block; uint8 overflow wraps
    # naturally at 256, matching the paper's 1-byte signature.
    sampled = view[:, list(SAMPLE_OFFSETS)].astype(np.uint32)
    return tuple(int(s) & 0xFF for s in sampled.sum(axis=1))


def _hash_signatures(block: np.ndarray) -> Tuple[int, ...]:
    view = block.reshape(SUB_BLOCKS, SUB_BLOCK_BYTES)
    return tuple(
        hashlib.sha1(view[i].tobytes()).digest()[0]
        for i in range(SUB_BLOCKS))


def signature_overlap(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """Positions at which two signature tuples agree.

    Agreement at position ``i`` means sub-block ``i`` of the two blocks
    *probably* carries similar content; the scanner requires a minimum
    overlap before paying for a real delta encode.
    """
    if len(a) != len(b):
        raise ValueError(
            f"signature tuples differ in length: {len(a)} vs {len(b)}")
    return sum(1 for x, y in zip(a, b) if x == y)
