"""Content sub-signatures.

Section 4.2: each 4 KB block is divided into eight 512 B sub-blocks and a
1-byte *sub-signature* is computed per sub-block as the sum of the bytes
at offsets 0, 16, 32 and 64 (mod 256).  The paper deliberately avoids
cryptographic hashing here: hashing detects *identical* content, but a
single changed byte destroys the hash, which hurts *similarity* detection
— and similarity, not identity, is what pairs blocks with reference
blocks.

A hash-based scheme is provided anyway so the ablation bench
(``bench_ablation_signature_scheme``) can quantify that design choice.

Because :func:`block_signatures` sits on both hot request paths (every
write, every first read of a block), results are memoised behind a
bounded LRU keyed by the *exact block content* plus the scheme — so a
cache hit is byte-for-byte equivalent to recomputing by construction
(no digest collisions: the key is the content itself).  The direct
implementations (:func:`_sampled_signatures`, :func:`_hash_signatures`)
are kept and exercised by golden-equivalence tests.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np

from repro.sim.request import BLOCK_SIZE

#: Number of sub-blocks per 4 KB block.
SUB_BLOCKS = 8
#: Bytes per sub-block.
SUB_BLOCK_BYTES = BLOCK_SIZE // SUB_BLOCKS
#: Byte offsets within a sub-block that the sampled signature sums.
SAMPLE_OFFSETS = (0, 16, 32, 64)
#: Number of possible values of one sub-signature.
SIGNATURE_VALUES = 256

#: Bound on the memoised-signature LRU (entries; each key holds one 4 KB
#: content copy, so the default caps the cache at ~16 MiB — the same
#: order as the paper's delta buffer).
SIGNATURE_CACHE_CAPACITY = 4096

#: Flat byte indices of every sampled offset within a 4 KB block, row
#: by sub-block — precomputed once for the vectorised fast path.
_FLAT_SAMPLE_INDEX = (
    np.arange(SUB_BLOCKS, dtype=np.intp)[:, None] * SUB_BLOCK_BYTES
    + np.array(SAMPLE_OFFSETS, dtype=np.intp)).ravel()


class SignatureScheme(enum.Enum):
    """How sub-signatures are derived from sub-block content."""

    #: The paper's scheme: sum of four sampled bytes, mod 256.  Cheap, and
    #: tolerant of changes outside the sampled offsets — which is what
    #: makes it a *similarity* signature.
    SAMPLED = "sampled"
    #: First byte of SHA-1 over the whole sub-block.  Detects identity
    #: only; kept for the ablation.
    HASH = "hash"


_signature_cache: "OrderedDict[Tuple[str, bytes], Tuple[int, ...]]" = \
    OrderedDict()
_cache_counters = {"hits": 0, "misses": 0, "evictions": 0, "size_bytes": 0}

#: Per-entry key overhead beyond the 4 KB content copy: the scheme tag
#: and the memoised 8-tuple.  Small but honest — the point of
#: ``size_bytes`` is that each entry costs a full content copy, not just
#: a digest.
_CACHE_ENTRY_OVERHEAD = 64


def _cache_entry_bytes(key: Tuple[str, bytes]) -> int:
    return len(key[1]) + _CACHE_ENTRY_OVERHEAD


def clear_signature_cache() -> None:
    """Drop every memoised signature (tests and benchmarks use this)."""
    _signature_cache.clear()
    _cache_counters["hits"] = 0
    _cache_counters["misses"] = 0
    _cache_counters["evictions"] = 0
    _cache_counters["size_bytes"] = 0


def signature_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the memoisation layer.

    ``size_bytes`` accounts for the content-copy keys (each entry pins a
    full 4 KB ``tobytes()`` copy plus bookkeeping), and ``evictions``
    counts LRU pop-outs — together they make cache pressure visible in
    ``repro critpath --json``.
    """
    return {"hits": _cache_counters["hits"],
            "misses": _cache_counters["misses"],
            "size": len(_signature_cache),
            "size_bytes": _cache_counters["size_bytes"],
            "evictions": _cache_counters["evictions"]}


def _cache_get(key: Tuple[str, bytes]):
    """LRU lookup with hit/miss accounting (shared with the batch path)."""
    cached = _signature_cache.get(key)
    if cached is not None:
        _signature_cache.move_to_end(key)
        _cache_counters["hits"] += 1
        return cached
    _cache_counters["misses"] += 1
    return None


def _cache_put(key: Tuple[str, bytes],
               signatures: Tuple[int, ...]) -> None:
    """Insert one memoised signature, evicting LRU past capacity."""
    if key not in _signature_cache:
        _cache_counters["size_bytes"] += _cache_entry_bytes(key)
    _signature_cache[key] = signatures
    if len(_signature_cache) > SIGNATURE_CACHE_CAPACITY:
        evicted_key, _ = _signature_cache.popitem(last=False)
        _cache_counters["evictions"] += 1
        _cache_counters["size_bytes"] -= _cache_entry_bytes(evicted_key)


def block_signatures(block: np.ndarray,
                     scheme: SignatureScheme = SignatureScheme.SAMPLED,
                     ) -> Tuple[int, ...]:
    """The 8-tuple of sub-signatures of a 4 KB block."""
    if block.nbytes != BLOCK_SIZE:
        raise ValueError(
            f"signatures are defined on {BLOCK_SIZE}-byte blocks, "
            f"got {block.nbytes}")
    if block.dtype != np.uint8:
        # Rare non-byte layouts keep the direct element-wise semantics
        # and skip the content-keyed cache (whose key is raw bytes).
        if scheme is SignatureScheme.SAMPLED:
            return _sampled_signatures(block)
        return _hash_signatures(block)
    raw = block.tobytes()
    key = (scheme.value, raw)
    cached = _cache_get(key)
    if cached is not None:
        return cached
    if scheme is SignatureScheme.SAMPLED:
        signatures = _sampled_from_bytes(raw)
    else:
        signatures = _hash_from_bytes(raw)
    _cache_put(key, signatures)
    return signatures


def _sampled_from_bytes(raw: bytes) -> Tuple[int, ...]:
    """Vectorised sampled scheme over the block's raw bytes.

    ``uint8`` summation wraps at 256, which *is* the paper's mod-256 —
    golden-equivalence tested against :func:`_sampled_signatures`.
    """
    flat = np.frombuffer(raw, dtype=np.uint8)
    sums = flat[_FLAT_SAMPLE_INDEX] \
        .reshape(SUB_BLOCKS, len(SAMPLE_OFFSETS)) \
        .sum(axis=1, dtype=np.uint8)
    return tuple(sums.tolist())


def _hash_from_bytes(raw: bytes) -> Tuple[int, ...]:
    return tuple(
        hashlib.sha1(
            raw[i * SUB_BLOCK_BYTES:(i + 1) * SUB_BLOCK_BYTES]
        ).digest()[0]
        for i in range(SUB_BLOCKS))


def _sampled_signatures(block: np.ndarray) -> Tuple[int, ...]:
    """Direct (unmemoised, element-wise) sampled scheme — the reference
    implementation golden tests compare the cached path against."""
    view = block.reshape(SUB_BLOCKS, SUB_BLOCK_BYTES)
    # Sum the four sampled columns per sub-block; uint8 overflow wraps
    # naturally at 256, matching the paper's 1-byte signature.
    sampled = view[:, list(SAMPLE_OFFSETS)].astype(np.uint32)
    return tuple(int(s) & 0xFF for s in sampled.sum(axis=1))


def _hash_signatures(block: np.ndarray) -> Tuple[int, ...]:
    """Direct hash scheme — reference implementation for golden tests."""
    view = block.reshape(SUB_BLOCKS, SUB_BLOCK_BYTES)
    return tuple(
        hashlib.sha1(view[i].tobytes()).digest()[0]
        for i in range(SUB_BLOCKS))


def signature_overlap(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """Positions at which two signature tuples agree.

    Agreement at position ``i`` means sub-block ``i`` of the two blocks
    *probably* carries similar content; the scanner requires a minimum
    overlap before paying for a real delta encode.
    """
    if len(a) != len(b):
        raise ValueError(
            f"signature tuples differ in length: {len(a)} vs {len(b)}")
    return sum(1 for x, y in zip(a, b) if x == y)
