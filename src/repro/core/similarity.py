"""Similarity detection and reference-block selection.

The periodic scan of Section 4.2: every ``scan_interval`` I/Os, examine
the ``scan_window`` hottest blocks of the LRU queue, promote the blocks
whose sub-signatures are most popular (per the Heatmap) to *reference
blocks*, and try to delta-compress the remaining blocks against them.

The module separates the pure selection logic (rankable, testable against
the paper's Table 2 worked example) from the :class:`SimilarityScanner`
that walks a live cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple)

import numpy as np

from repro.core.cache import ICashCache
from repro.core.heatmap import Heatmap
from repro.core.signatures import signature_overlap
from repro.core.virtual_block import VirtualBlock
from repro.delta.encoder import Delta, encode_delta

#: Fraction of the scan window (by popularity rank) eligible to become
#: new reference blocks in one scan.
REF_CANDIDATE_FRACTION = 0.10


class SignatureIndex:
    """Incrementally maintained ``(row, value) -> reference blocks`` map.

    The direct implementation (:meth:`SimilarityScanner._index_by_signature`)
    rebuilds this mapping from scratch on every scan — eight dict operations
    per reference per scan.  This class keeps the mapping alive across
    scans: the controller notifies it when references appear, change
    content, or retire, and each scan merely *syncs* the window's
    references (a no-op when nothing changed).

    Correctness does not depend on the notifications being complete: the
    per-scan sync re-adds any window reference whose entry is missing or
    stale, and the scanner filters candidates to the current window, so a
    stale entry for a retired reference can never be selected — it only
    wastes a dict hit until evicted.
    """

    def __init__(self) -> None:
        #: ``(row, value) -> {lba: block}`` — dict-valued cells so discard
        #: is O(1) instead of a list scan.
        self._cells: Dict[Tuple[int, int], Dict[int, VirtualBlock]] = {}
        #: ``lba -> (block, signatures-at-insert)``; the recorded
        #: signatures let :meth:`sync` detect content refreshes.
        self._entries: Dict[int, Tuple[VirtualBlock, Tuple[int, ...]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, vb: VirtualBlock) -> None:
        """Index ``vb`` under each of its sub-signatures (replacing any
        previous entry for the same LBA)."""
        if not vb.signatures:
            return
        self.discard(vb.lba)
        sigs = tuple(vb.signatures)
        self._entries[vb.lba] = (vb, sigs)
        for row, value in enumerate(sigs):
            self._cells.setdefault((row, value), {})[vb.lba] = vb

    def discard(self, lba: int) -> None:
        """Forget the reference at ``lba`` (no-op when absent)."""
        entry = self._entries.pop(lba, None)
        if entry is None:
            return
        _vb, sigs = entry
        for row, value in enumerate(sigs):
            cell = self._cells.get((row, value))
            if cell is not None:
                cell.pop(lba, None)
                if not cell:
                    del self._cells[(row, value)]

    def sync(self, vb: VirtualBlock) -> None:
        """Ensure the index entry for ``vb`` is current (self-healing)."""
        entry = self._entries.get(vb.lba)
        if entry is not None and entry[0] is vb \
                and entry[1] == tuple(vb.signatures):
            return
        self.add(vb)

    def match_batch(
        self, cand_sigs: np.ndarray, rank_of: Dict[int, int],
    ) -> List[Tuple[Optional[Tuple[int, int, int, VirtualBlock]], int]]:
        """Best indexed reference per candidate row, in one vectorised pass.

        ``cand_sigs`` is an ``(N, SUB_BLOCKS)`` integer matrix;
        ``rank_of`` maps reference LBAs to their popularity rank (stale
        index entries absent from it are ignored, exactly as the scalar
        tally loop does).  Each result slot is ``(count, first_row,
        rank, ref)`` for the reference minimising ``(-count, first_row,
        rank)`` — the scalar tie-break — plus ``tallies``, the number of
        references sharing at least one sub-signature (the scalar
        comparison count).  Slots with no match are ``None``.

        Returns a list of ``(best_or_none, tallies)`` pairs.
        """
        n = int(cand_sigs.shape[0]) if cand_sigs.ndim == 2 else 0
        ordered = sorted(
            (rank, lba) for lba, rank in rank_of.items()
            if lba in self._entries)
        if n == 0 or not ordered:
            return [(None, 0)] * n
        ranks = np.asarray([rank for rank, _ in ordered], dtype=np.int64)
        ref_vbs = [self._entries[lba][0] for _, lba in ordered]
        ref_sigs = np.asarray(
            [self._entries[lba][1] for _, lba in ordered], dtype=np.int64)
        eq = cand_sigs[:, None, :] == ref_sigs[None, :, :]
        counts = eq.sum(axis=2)
        matched = counts > 0
        tallies = matched.sum(axis=1)
        first_row = np.argmax(eq, axis=2)
        sub = ref_sigs.shape[1]
        # Composite minimisation key reproducing (-count, first_row,
        # rank): lexicographic because each factor strictly dominates
        # the next's range.
        key = (((sub - counts) * sub + first_row)
               * (int(ranks.max()) + 1) + ranks[None, :])
        key[~matched] = np.iinfo(np.int64).max
        best_j = np.argmin(key, axis=1)
        out: List[Tuple[Optional[Tuple[int, int, int, VirtualBlock]], int]] \
            = []
        for i in range(n):
            j = int(best_j[i])
            if not matched[i, j]:
                out.append((None, 0))
            else:
                out.append(((int(counts[i, j]), int(first_row[i, j]),
                             int(ranks[j]), ref_vbs[j]),
                            int(tallies[i])))
        return out

    def candidates(self, row: int, value: int) -> Sequence[VirtualBlock]:
        """References carrying sub-signature ``value`` at ``row``.

        The returned view must not be retained across an :meth:`add` or
        :meth:`discard` — the scanner consumes it immediately.
        """
        cell = self._cells.get((row, value))
        return cell.values() if cell else ()

    def clear(self) -> None:
        self._cells.clear()
        self._entries.clear()


def popularity_ranking(entries: Sequence[Tuple[object, Sequence[int]]],
                       heatmap: Heatmap,
                       ) -> List[Tuple[object, int]]:
    """Rank ``(key, signatures)`` entries by Heatmap popularity, best first.

    Ties preserve input order, matching the paper's example where the
    earliest-seen block wins among equals.
    """
    scored = [(key, heatmap.popularity(sigs)) for key, sigs in entries]
    return sorted(scored, key=lambda pair: -pair[1])


def select_reference(entries: Sequence[Tuple[object, Sequence[int]]],
                     heatmap: Heatmap) -> object:
    """The single best reference among ``entries`` (Table 2's selection).

    The paper's example: after the Table 1 request sequence, block
    (A, D) at LBA3 has popularity 5 — the highest — and is selected, which
    minimises total cache space once the others delta-compress against it.
    """
    if not entries:
        raise ValueError("cannot select a reference from no candidates")
    return popularity_ranking(entries, heatmap)[0][0]


@dataclass
class Association:
    """A block newly paired with a reference, with its computed delta."""

    vb: VirtualBlock
    ref_lba: int
    delta: Delta


@dataclass
class ScanResult:
    """Outcome of one similarity scan."""

    new_references: List[VirtualBlock] = field(default_factory=list)
    associations: List[Association] = field(default_factory=list)
    blocks_examined: int = 0
    comparisons: int = 0
    #: CPU seconds the scan consumed (comparisons + delta encodes).
    cpu_time: float = 0.0


class SimilarityScanner:
    """Walks the cache's hot window selecting references and associates."""

    def __init__(self, heatmap: Heatmap, min_signature_match: int,
                 delta_accept_bytes: int, scan_compare_s: float,
                 compress_s: float,
                 use_incremental_index: bool = True,
                 use_batch_match: bool = True) -> None:
        self.heatmap = heatmap
        self.min_signature_match = min_signature_match
        self.delta_accept_bytes = delta_accept_bytes
        self.scan_compare_s = scan_compare_s
        self.compress_s = compress_s
        #: ``False`` falls back to rebuilding the signature index per scan
        #: (the direct implementation) — golden-equivalence tests run both
        #: paths and require identical results.
        self.use_incremental_index = use_incremental_index
        #: Vectorised candidate-vs-index matching (requires the
        #: incremental index); ``False`` keeps the per-candidate tally
        #: loop.  All three modes are golden-equivalence tested.
        self.use_batch_match = use_batch_match
        self.signature_index = SignatureIndex()

    def note_reference(self, vb: VirtualBlock) -> None:
        """Controller hook: ``vb`` became (or refreshed) a reference."""
        self.signature_index.add(vb)

    def note_retired(self, lba: int) -> None:
        """Controller hook: the reference at ``lba`` was demoted/evicted."""
        self.signature_index.discard(lba)

    def scan(self, cache: ICashCache, window: int, max_new_references: int,
             content_fn: Callable[[VirtualBlock], Optional[np.ndarray]],
             ) -> ScanResult:
        """One scan pass.

        ``content_fn`` resolves a virtual block's current content without
        device I/O (RAM data, SSD-resident copies the controller already
        holds) and returns ``None`` when content is not cheaply available —
        such blocks are skipped rather than paged in, as a background scan
        must not thrash the devices.

        ``max_new_references`` lets the controller cap promotions at its
        free SSD slots.
        """
        result = ScanResult()
        candidates = [vb for vb in cache.mru_window(window) if vb.signatures]
        result.blocks_examined = len(candidates)
        if not candidates:
            return result

        batched = self.use_batch_match and self.use_incremental_index
        if batched:
            # Batch tier: one popularity gather over the whole window,
            # then a stable argsort identical to popularity_ranking's
            # stable sort on (-popularity).
            sig_matrix = np.asarray(
                [vb.signatures for vb in candidates], dtype=np.int64)
            pops = self.heatmap.popularity_batch(sig_matrix).tolist()
            order = sorted(range(len(candidates)), key=lambda i: -pops[i])
            ranked = [(candidates[i], pops[i]) for i in order]
            ranked_sigs = sig_matrix[order]
        else:
            ranked = popularity_ranking(
                [(vb, vb.signatures) for vb in candidates], self.heatmap)
            ranked_sigs = None
        result.cpu_time += len(ranked) * self.scan_compare_s

        # One pass in popularity order (Table 2's semantics): a block that
        # delta-compresses against an existing reference becomes its
        # associate; a popular block no reference covers becomes a new
        # reference itself.  Promoting only the *unmatched* is what spreads
        # reference coverage across content clusters instead of piling
        # redundant references into the hottest one.
        refs: List[VirtualBlock] = [vb for vb, _ in ranked if vb.is_reference]
        incremental = self.use_incremental_index
        if incremental:
            # Heal the persistent index for this window (no-op per ref
            # when notifications kept it current) and rank the window's
            # references by popularity position: the rank reproduces the
            # direct implementation's tie-break, where a cell lists
            # window references in ranked order followed by references
            # promoted mid-scan in promotion order.
            for ref in refs:
                self.signature_index.sync(ref)
            rank_of: Dict[int, int] = {
                ref.lba: pos for pos, ref in enumerate(refs)}
            next_rank = len(refs)
            index: Dict[Tuple[int, int], List[VirtualBlock]] = {}
        else:
            rank_of = {}
            next_rank = 0
            index = self._index_by_signature(refs)
        if batched:
            # One vectorised pass against the window's references; blocks
            # promoted mid-scan are folded in per candidate below.
            base_match = self.signature_index.match_batch(
                ranked_sigs, rank_of)
            promoted: List[Tuple[int, VirtualBlock]] = []
        promotable = min(max_new_references,
                         max(4, int(len(ranked) * REF_CANDIDATE_FRACTION)))
        for pos, (vb, _pop) in enumerate(ranked):
            if vb.is_reference:
                continue
            if vb.is_associate and vb.has_delta:
                continue  # already well paired; reorganised lazily
            content = content_fn(vb)
            if content is None:
                continue
            if batched:
                best = self._best_reference_batched(
                    vb, base_match[pos], promoted, result)
            elif incremental:
                best = self._best_reference_indexed(vb, rank_of, result)
            else:
                best = self._best_reference(vb, index, result)
            if best is not None and best.lba != vb.lba:
                ref_content = content_fn(best)
                if ref_content is not None:
                    delta = encode_delta(content, ref_content)
                    result.cpu_time += self.compress_s
                    if delta.size_bytes <= self.delta_accept_bytes:
                        result.associations.append(Association(
                            vb=vb, ref_lba=best.lba, delta=delta))
                        continue
            if len(result.new_references) < promotable:
                result.new_references.append(vb)
                if incremental:
                    self.signature_index.add(vb)
                    rank_of[vb.lba] = next_rank
                    if batched:
                        promoted.append((next_rank, vb))
                    next_rank += 1
                else:
                    for row, value in enumerate(vb.signatures):
                        index.setdefault((row, value), []).append(vb)
        return result

    def _best_reference_batched(
            self, vb: VirtualBlock,
            base: Tuple[Optional[Tuple[int, int, int, VirtualBlock]], int],
            promoted: Sequence[Tuple[int, VirtualBlock]],
            result: ScanResult) -> Optional[VirtualBlock]:
        """Batched counterpart of :meth:`_best_reference_indexed`.

        ``base`` is this candidate's precomputed slot from
        :meth:`SignatureIndex.match_batch` (window references only);
        references promoted mid-scan are tallied here, scalar-style, so
        the combined selection minimises the same ``(-count, first_row,
        rank)`` key over the same reference set.
        """
        best_entry, tally = base
        if best_entry is not None:
            count, first_row, rank, best = best_entry
            best_key: Optional[Tuple[int, int, int]] = \
                (-count, first_row, rank)
        else:
            best = None
            best_key = None
        for rank, ref in promoted:
            count = 0
            first_row = -1
            for row, (a, b) in enumerate(zip(vb.signatures, ref.signatures)):
                if a == b:
                    count += 1
                    if first_row < 0:
                        first_row = row
            if count:
                tally += 1
                key = (-count, first_row, rank)
                if best_key is None or key < best_key:
                    best_key = key
                    best = ref
        result.comparisons += tally
        result.cpu_time += tally * self.scan_compare_s
        if best is None:
            return None
        if -best_key[0] < self.min_signature_match:
            return None
        if signature_overlap(vb.signatures, best.signatures) \
                < self.min_signature_match:
            return None
        return best

    @staticmethod
    def _index_by_signature(refs: Sequence[VirtualBlock],
                            ) -> Dict[Tuple[int, int], List[VirtualBlock]]:
        """(row, value) -> reference blocks carrying that sub-signature."""
        index: Dict[Tuple[int, int], List[VirtualBlock]] = {}
        for ref in refs:
            for row, value in enumerate(ref.signatures):
                index.setdefault((row, value), []).append(ref)
        return index

    def _best_reference_indexed(self, vb: VirtualBlock,
                                rank_of: Dict[int, int],
                                result: ScanResult,
                                ) -> Optional[VirtualBlock]:
        """Indexed counterpart of :meth:`_best_reference`.

        The direct implementation's ``max`` keeps the *first-inserted*
        maximum, and insertion order there is lexicographic by (first
        matching signature row, position in the cell's list) — which for
        window references is their popularity rank and for mid-scan
        promotions their promotion order.  Selecting the minimum of
        ``(-count, first_row, rank)`` is therefore byte-identical, while
        letting the persistent index hold references in any order and
        ignore entries outside the current window.
        """
        # lba -> [tally, first matching row, rank, block]
        tallies: Dict[int, List] = {}
        for row, value in enumerate(vb.signatures):
            for ref in self.signature_index.candidates(row, value):
                rank = rank_of.get(ref.lba)
                if rank is None:
                    continue  # stale entry: not a reference this window
                entry = tallies.get(ref.lba)
                if entry is None:
                    tallies[ref.lba] = [1, row, rank, ref]
                else:
                    entry[0] += 1
        result.comparisons += len(tallies)
        result.cpu_time += len(tallies) * self.scan_compare_s
        if not tallies:
            return None
        count, _row, _rank, best = min(
            tallies.values(), key=lambda e: (-e[0], e[1], e[2]))
        if count < self.min_signature_match:
            return None
        if signature_overlap(vb.signatures, best.signatures) \
                < self.min_signature_match:
            return None
        return best

    def _best_reference(self, vb: VirtualBlock,
                        index: Dict[Tuple[int, int], List[VirtualBlock]],
                        result: ScanResult) -> Optional[VirtualBlock]:
        """Reference with the highest signature overlap, if it clears the
        minimum-match bar."""
        tallies: Dict[int, int] = {}
        by_id: Dict[int, VirtualBlock] = {}
        for row, value in enumerate(vb.signatures):
            for ref in index.get((row, value), ()):
                tallies[id(ref)] = tallies.get(id(ref), 0) + 1
                by_id[id(ref)] = ref
        result.comparisons += len(tallies)
        result.cpu_time += len(tallies) * self.scan_compare_s
        if not tallies:
            return None
        best_id = max(tallies, key=lambda k: tallies[k])
        best = by_id[best_id]
        # Exact tally beats re-deriving overlap, but guard the invariant.
        if tallies[best_id] < self.min_signature_match:
            return None
        if signature_overlap(vb.signatures, best.signatures) \
                < self.min_signature_match:
            return None
        return best
