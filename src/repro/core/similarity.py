"""Similarity detection and reference-block selection.

The periodic scan of Section 4.2: every ``scan_interval`` I/Os, examine
the ``scan_window`` hottest blocks of the LRU queue, promote the blocks
whose sub-signatures are most popular (per the Heatmap) to *reference
blocks*, and try to delta-compress the remaining blocks against them.

The module separates the pure selection logic (rankable, testable against
the paper's Table 2 worked example) from the :class:`SimilarityScanner`
that walks a live cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple)

import numpy as np

from repro.core.cache import ICashCache
from repro.core.heatmap import Heatmap
from repro.core.signatures import signature_overlap
from repro.core.virtual_block import VirtualBlock
from repro.delta.encoder import Delta, encode_delta

#: Fraction of the scan window (by popularity rank) eligible to become
#: new reference blocks in one scan.
REF_CANDIDATE_FRACTION = 0.10


def popularity_ranking(entries: Sequence[Tuple[object, Sequence[int]]],
                       heatmap: Heatmap,
                       ) -> List[Tuple[object, int]]:
    """Rank ``(key, signatures)`` entries by Heatmap popularity, best first.

    Ties preserve input order, matching the paper's example where the
    earliest-seen block wins among equals.
    """
    scored = [(key, heatmap.popularity(sigs)) for key, sigs in entries]
    return sorted(scored, key=lambda pair: -pair[1])


def select_reference(entries: Sequence[Tuple[object, Sequence[int]]],
                     heatmap: Heatmap) -> object:
    """The single best reference among ``entries`` (Table 2's selection).

    The paper's example: after the Table 1 request sequence, block
    (A, D) at LBA3 has popularity 5 — the highest — and is selected, which
    minimises total cache space once the others delta-compress against it.
    """
    if not entries:
        raise ValueError("cannot select a reference from no candidates")
    return popularity_ranking(entries, heatmap)[0][0]


@dataclass
class Association:
    """A block newly paired with a reference, with its computed delta."""

    vb: VirtualBlock
    ref_lba: int
    delta: Delta


@dataclass
class ScanResult:
    """Outcome of one similarity scan."""

    new_references: List[VirtualBlock] = field(default_factory=list)
    associations: List[Association] = field(default_factory=list)
    blocks_examined: int = 0
    comparisons: int = 0
    #: CPU seconds the scan consumed (comparisons + delta encodes).
    cpu_time: float = 0.0


class SimilarityScanner:
    """Walks the cache's hot window selecting references and associates."""

    def __init__(self, heatmap: Heatmap, min_signature_match: int,
                 delta_accept_bytes: int, scan_compare_s: float,
                 compress_s: float) -> None:
        self.heatmap = heatmap
        self.min_signature_match = min_signature_match
        self.delta_accept_bytes = delta_accept_bytes
        self.scan_compare_s = scan_compare_s
        self.compress_s = compress_s

    def scan(self, cache: ICashCache, window: int, max_new_references: int,
             content_fn: Callable[[VirtualBlock], Optional[np.ndarray]],
             ) -> ScanResult:
        """One scan pass.

        ``content_fn`` resolves a virtual block's current content without
        device I/O (RAM data, SSD-resident copies the controller already
        holds) and returns ``None`` when content is not cheaply available —
        such blocks are skipped rather than paged in, as a background scan
        must not thrash the devices.

        ``max_new_references`` lets the controller cap promotions at its
        free SSD slots.
        """
        result = ScanResult()
        candidates = [vb for vb in cache.mru_window(window) if vb.signatures]
        result.blocks_examined = len(candidates)
        if not candidates:
            return result

        ranked = popularity_ranking(
            [(vb, vb.signatures) for vb in candidates], self.heatmap)
        result.cpu_time += len(ranked) * self.scan_compare_s

        # One pass in popularity order (Table 2's semantics): a block that
        # delta-compresses against an existing reference becomes its
        # associate; a popular block no reference covers becomes a new
        # reference itself.  Promoting only the *unmatched* is what spreads
        # reference coverage across content clusters instead of piling
        # redundant references into the hottest one.
        refs: List[VirtualBlock] = [vb for vb, _ in ranked if vb.is_reference]
        index = self._index_by_signature(refs)
        promotable = min(max_new_references,
                         max(4, int(len(ranked) * REF_CANDIDATE_FRACTION)))
        for vb, _pop in ranked:
            if vb.is_reference:
                continue
            if vb.is_associate and vb.has_delta:
                continue  # already well paired; reorganised lazily
            content = content_fn(vb)
            if content is None:
                continue
            best = self._best_reference(vb, index, result)
            if best is not None and best.lba != vb.lba:
                ref_content = content_fn(best)
                if ref_content is not None:
                    delta = encode_delta(content, ref_content)
                    result.cpu_time += self.compress_s
                    if delta.size_bytes <= self.delta_accept_bytes:
                        result.associations.append(Association(
                            vb=vb, ref_lba=best.lba, delta=delta))
                        continue
            if len(result.new_references) < promotable:
                result.new_references.append(vb)
                for row, value in enumerate(vb.signatures):
                    index.setdefault((row, value), []).append(vb)
        return result

    @staticmethod
    def _index_by_signature(refs: Sequence[VirtualBlock],
                            ) -> Dict[Tuple[int, int], List[VirtualBlock]]:
        """(row, value) -> reference blocks carrying that sub-signature."""
        index: Dict[Tuple[int, int], List[VirtualBlock]] = {}
        for ref in refs:
            for row, value in enumerate(ref.signatures):
                index.setdefault((row, value), []).append(ref)
        return index

    def _best_reference(self, vb: VirtualBlock,
                        index: Dict[Tuple[int, int], List[VirtualBlock]],
                        result: ScanResult) -> Optional[VirtualBlock]:
        """Reference with the highest signature overlap, if it clears the
        minimum-match bar."""
        tallies: Dict[int, int] = {}
        by_id: Dict[int, VirtualBlock] = {}
        for row, value in enumerate(vb.signatures):
            for ref in index.get((row, value), ()):
                tallies[id(ref)] = tallies.get(id(ref), 0) + 1
                by_id[id(ref)] = ref
        result.comparisons += len(tallies)
        result.cpu_time += len(tallies) * self.scan_compare_s
        if not tallies:
            return None
        best_id = max(tallies, key=lambda k: tallies[k])
        best = by_id[best_id]
        # Exact tally beats re-deriving overlap, but guard the invariant.
        if tallies[best_id] < self.min_signature_match:
            return None
        if signature_overlap(vb.signatures, best.signatures) \
                < self.min_signature_match:
            return None
        return best
