"""Virtual blocks: the unit of I-CASH metadata.

Section 4.3: "Each virtual block contains the LBA address, the signature,
the pointer to the reference block, the pointer to data block, and the
pointer to delta blocks.  A virtual block can be one of three different
types: reference block, associate block, or independent block."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.delta.encoder import Delta


class BlockKind(enum.Enum):
    """The three virtual-block types of Section 4.3."""

    #: No associated reference block; its content lives in its data block
    #: (RAM) and/or on the HDD data region.
    INDEPENDENT = "independent"
    #: Anchored in the SSD; other blocks delta-compress against it.
    REFERENCE = "reference"
    #: Content = reference block content + delta.
    ASSOCIATE = "associate"


@dataclass
class VirtualBlock:
    """Metadata for one logical block under I-CASH management."""

    lba: int
    kind: BlockKind = BlockKind.INDEPENDENT
    #: Sub-signatures of the block's *current* content.  For reference
    #: blocks the signature is frozen at selection time (Section 4.3: "the
    #: signature of the block does not change since its data is being
    #: referred").
    signatures: Tuple[int, ...] = ()
    #: LBA of the reference this block compresses against (associates, and
    #: reference blocks written since selection — they delta against their
    #: own frozen SSD copy).
    ref_lba: Optional[int] = None
    #: Cached full content, when a RAM data block is allocated to it.
    data: Optional[np.ndarray] = None
    #: In-RAM delta, when one is held in the segment pool.
    delta: Optional[Delta] = None
    #: Segment-pool bytes currently accounted to this block's delta.
    delta_segments_bytes: int = 0
    #: Delta modified since the last flush to the HDD log.
    delta_dirty: bool = False
    #: Data block modified since the last write-back to the HDD.
    data_dirty: bool = False
    #: For reference blocks and spilled blocks: slot in the SSD store.
    ssd_slot: Optional[int] = None
    #: Number of live associate blocks anchored to this reference.
    associate_count: int = 0

    @property
    def is_reference(self) -> bool:
        return self.kind is BlockKind.REFERENCE

    @property
    def is_associate(self) -> bool:
        return self.kind is BlockKind.ASSOCIATE

    @property
    def is_independent(self) -> bool:
        return self.kind is BlockKind.INDEPENDENT

    @property
    def has_data(self) -> bool:
        return self.data is not None

    @property
    def has_delta(self) -> bool:
        return self.delta is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = "".join((
            "D" if self.has_data else "-",
            "d" if self.has_delta else "-",
            "*" if self.delta_dirty or self.data_dirty else " ",
        ))
        return (f"VirtualBlock(lba={self.lba}, {self.kind.value}, "
                f"ref={self.ref_lba}, {flags})")
