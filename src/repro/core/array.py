"""An array of I-CASH storage elements.

The paper's title promises an *array*: "Each storage element in the
I-CASH consists of an SSD and an HDD that are coupled by an intelligent
algorithm" (Section 1), with Figure 1 showing elements side by side.
The prototype evaluates a single element; this module supplies the
array composition as the natural scale-out step — the same role RAID0
plays for plain disks.

The logical block space stripes across N elements in fixed chunks.
Each element runs its own Heatmap, scanner, reference store and delta
log over its private SSD+HDD pair, so similarity detection stays local
(references anchor blocks that land on the same element — with chunked
striping, spatial neighbours do).  Requests spanning elements dispatch
in parallel, like RAID0 members.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.core.config import ICASHConfig
from repro.core.controller import ICASHController
from repro.devices.hdd import HDDSpec
from repro.devices.ssd import SSDSpec


class ICASHArray(StorageSystem):
    """Stripe a logical block space over N independent I-CASH elements."""

    def __init__(self, initial_content: np.ndarray, n_elements: int = 2,
                 chunk_blocks: int = 64,
                 config: Optional[ICASHConfig] = None,
                 hdd_spec: Optional[HDDSpec] = None,
                 ssd_spec: Optional[SSDSpec] = None) -> None:
        if n_elements < 1:
            raise ValueError(
                f"need at least one element, got {n_elements}")
        if chunk_blocks < 1:
            raise ValueError(
                f"chunk must be >= 1 block, got {chunk_blocks}")
        capacity_blocks = initial_content.shape[0]
        super().__init__(f"icash-array-x{n_elements}", capacity_blocks)
        self.n_elements = n_elements
        self.chunk_blocks = chunk_blocks
        if config is None:
            config = ICASHConfig()
        self.config = config
        # Partition initial content round-robin by chunk.
        per_element: List[List[np.ndarray]] = [[] for _ in range(n_elements)]
        for chunk_start in range(0, capacity_blocks, chunk_blocks):
            chunk = initial_content[
                chunk_start:chunk_start + chunk_blocks]
            element = (chunk_start // chunk_blocks) % n_elements
            per_element[element].append(chunk)
        self.elements: List[ICASHController] = []
        for element in range(n_elements):
            content = (np.concatenate(per_element[element])
                       if per_element[element]
                       else np.zeros((chunk_blocks, 4096), dtype=np.uint8))
            self.elements.append(
                ICASHController(content, config, hdd_spec, ssd_spec))

    # -- address translation ------------------------------------------------

    def _locate(self, lba: int) -> Tuple[int, int]:
        """Map a logical block to (element index, element-local lba)."""
        chunk = lba // self.chunk_blocks
        offset = lba % self.chunk_blocks
        element = chunk % self.n_elements
        local_chunk = chunk // self.n_elements
        return element, local_chunk * self.chunk_blocks + offset

    def _split(self, lba: int, nblocks: int
               ) -> Dict[int, List[Tuple[int, int, int]]]:
        """Split a span into per-element (local lba, count, span offset)."""
        per_element: Dict[int, List[Tuple[int, int, int]]] = {}
        block = lba
        remaining = nblocks
        offset = 0
        while remaining > 0:
            element, local = self._locate(block)
            room = self.chunk_blocks - (block % self.chunk_blocks)
            take = min(remaining, room)
            per_element.setdefault(element, []).append(
                (local, take, offset))
            block += take
            offset += take
            remaining -= take
        return per_element

    # -- StorageSystem interface ----------------------------------------------

    def devices(self) -> Iterable:
        for element in self.elements:
            yield from element.devices()

    def ingest(self) -> float:
        """Offline organisation runs on all elements (concurrently in a
        real array; the returned setup time is the slowest element's)."""
        return max(element.ingest() for element in self.elements)

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        self._check_span(lba, nblocks)
        contents: List[Optional[np.ndarray]] = [None] * nblocks
        slowest = 0.0
        for element_idx, extents in self._split(lba, nblocks).items():
            element = self.elements[element_idx]
            element_time = 0.0
            for local, take, offset in extents:
                latency, blocks = element.read(local, take)
                element_time += latency
                for i, block in enumerate(blocks):
                    contents[offset + i] = block
            slowest = max(slowest, element_time)
        self.stats.bump("reads")
        return slowest, contents  # type: ignore[return-value]

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        slowest = 0.0
        for element_idx, extents in self._split(lba, len(blocks)).items():
            element = self.elements[element_idx]
            element_time = 0.0
            for local, take, offset in extents:
                element_time += element.write(
                    local, blocks[offset:offset + take])
            slowest = max(slowest, element_time)
        self.stats.bump("writes")
        return slowest

    def flush(self) -> float:
        """Elements flush concurrently; the array waits for the slowest."""
        return max(element.flush() for element in self.elements)

    # -- aggregated accounting -----------------------------------------------------

    @property
    def background_time(self) -> float:  # type: ignore[override]
        return sum(element.background_time for element in self.elements)

    @background_time.setter
    def background_time(self, value: float) -> None:
        # StorageSystem.__init__ assigns 0.0; per-element state is the
        # source of truth afterwards, so only a reset makes sense here.
        if value != 0.0:
            raise AttributeError(
                "array background time aggregates its elements")

    @property
    def cpu_time(self) -> float:  # type: ignore[override]
        return sum(element.cpu_time for element in self.elements)

    @cpu_time.setter
    def cpu_time(self, value: float) -> None:
        if value != 0.0:
            raise AttributeError(
                "array CPU time aggregates its elements")

    def block_kind_counts(self) -> Dict[str, int]:
        totals = {"reference": 0, "associate": 0, "independent": 0}
        for element in self.elements:
            for kind, count in element.block_kind_counts().items():
                totals[kind] += count
        return totals
