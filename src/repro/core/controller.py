"""The I-CASH storage element: one SSD and one HDD, intelligently coupled.

This is the paper's architecture (Figure 1) end to end:

* The **SSD** stores reference blocks (and the few blocks spilled when a
  delta exceeds the threshold).  It sees almost no random writes during
  online operation — references are written by the background scan.
* The **HDD** stores the logical data region (for independent blocks)
  plus an append-only *delta log*: dirty deltas are packed many-per-block
  and flushed sequentially, so one mechanical operation carries many
  logical writes.
* The **RAM buffer** holds hot data blocks and the delta segment pool.
* The **CPU** pays for delta encodes/decodes and the periodic similarity
  scan; the write-path compression largely overlaps I/O processing
  (Section 5.1), so only a configurable fraction of it lands on the
  request critical path.

Reads return real reconstructed content — reference content patched with
the block's delta — so the test suite can verify the entire pipeline
byte-for-byte against a shadow copy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.base import StorageSystem
from repro.core.cache import ICashCache
from repro.core.config import ICASHConfig
from repro.core.heatmap import Heatmap
from repro.core.batch import (block_signatures_batch, block_signatures_many,
                              encode_delta_batch, signature_tuples)
from repro.core.signatures import block_signatures
from repro.core.similarity import SimilarityScanner
from repro.core.virtual_block import BlockKind, VirtualBlock
from repro.delta.encoder import Delta, apply_delta, encode_delta
from repro.delta.packer import DeltaLog, DeltaRecord
from repro.delta.segments import SegmentPool
from repro.devices.dram import DRAMBuffer
from repro.devices.hdd import HardDiskDrive, HDDSpec
from repro.devices.ssd import FlashSSD, SSDSpec
from repro.sim.backing import BackingStore


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A read-only alias of ``arr`` — the zero-copy read-path currency.

    Read results used to be defensive copies; profiling put those copies
    among the top host-time costs of a run.  A locked view is safe here
    because controller-owned buffers are replaced wholesale, never
    mutated in place, and the read contract says results are valid only
    until the next operation.
    """
    view = arr.view()
    view.flags.writeable = False
    return view


class _DeltaMapEntry:
    """Durable metadata for one delta-mapped block.

    Survives virtual-block eviction: a block whose delta lives only in the
    HDD log is still reconstructible via this entry.
    """

    __slots__ = ("ref_lba", "log_slot")

    def __init__(self, ref_lba: int, log_slot: Optional[int]) -> None:
        self.ref_lba = ref_lba
        self.log_slot = log_slot


class ICASHController(StorageSystem):
    """One I-CASH storage element over a logical 4 KB block space."""

    #: Chunked ingest sweep with speculative batch delta encoding; the
    #: scalar sweep stays available (tests flip this per instance) as
    #: the golden reference the batched path must match bit for bit.
    use_batch_ingest = True

    def __init__(self, initial_content: np.ndarray,
                 config: Optional[ICASHConfig] = None,
                 hdd_spec: Optional[HDDSpec] = None,
                 ssd_spec: Optional[SSDSpec] = None) -> None:
        config = config if config is not None else ICASHConfig()
        hdd_spec = hdd_spec if hdd_spec is not None else HDDSpec()
        ssd_spec = ssd_spec if ssd_spec is not None else SSDSpec()
        capacity_blocks = initial_content.shape[0]
        super().__init__("icash", capacity_blocks)
        self.config = config
        self.backing = BackingStore(initial_content)
        if config.log_on_nvram:
            # NVRAM log variant: the HDD keeps only the data region and
            # the log appends persist at memory speed.
            from repro.devices.nvram import NVRAM
            self.hdd = HardDiskDrive(capacity_blocks, hdd_spec)
            self.nvram: Optional[NVRAM] = NVRAM(config.log_blocks)
            self.log = DeltaLog(self.nvram, base_lba=0,
                                size_blocks=config.log_blocks)
        else:
            self.hdd = HardDiskDrive(capacity_blocks + config.log_blocks,
                                     hdd_spec)
            self.nvram = None
            self.log = DeltaLog(self.hdd, base_lba=capacity_blocks,
                                size_blocks=config.log_blocks)
        self.ssd = FlashSSD(config.ssd_capacity_blocks, ssd_spec)
        self.dram = DRAMBuffer(
            config.data_ram_bytes + config.delta_ram_bytes, "icash-ram")
        self.segments = SegmentPool(config.delta_ram_bytes)
        self.cache = ICashCache(config.max_virtual_blocks,
                                config.data_ram_bytes, self.segments)
        self.heatmap = Heatmap()
        self.scanner = SimilarityScanner(
            heatmap=self.heatmap,
            min_signature_match=config.min_signature_match,
            delta_accept_bytes=config.delta_accept_bytes,
            scan_compare_s=config.scan_compare_s,
            compress_s=config.compress_s)

        # SSD bookkeeping: slot free list, and the RAM-side mirror of SSD
        # content (references and spilled blocks) keyed by lba.  The
        # mirror is what the real prototype's metadata makes addressable;
        # device latencies are still charged through self.ssd.
        self._free_slots: List[int] = list(
            range(config.ssd_capacity_blocks - 1, -1, -1))
        self._ssd_data: Dict[int, np.ndarray] = {}
        self._slot_of: Dict[int, int] = {}
        self._spilled: Set[int] = set()

        # Durable delta metadata (lba -> reference + last logged slot).
        self._delta_map: Dict[int, _DeltaMapEntry] = {}
        # How many delta-map entries depend on each reference lba.  A
        # reference can only be retired (its SSD copy released) when this
        # count is zero: an evicted associate's logged delta is useless
        # without the exact reference content it was derived against.
        self._ref_dependents: Dict[int, int] = {}
        # Dirty deltas awaiting a flush, in *arrival order* — the order
        # they pack into delta blocks under flush_order="arrival".
        self._dirty_delta_lbas: "OrderedDict[int, None]" = OrderedDict()
        # References whose *current* content diverged beyond the spill
        # threshold while other blocks still depend on their frozen SSD
        # copy: the copy stays to serve dependents, and the reference's
        # own content lives in the ordinary data path (RAM + HDD region).
        self._shadowed_refs: Set[int] = set()
        self._io_count = 0

        # Host-side memo of delta reconstructions: lba -> (delta object,
        # ref lba, ref content version, read-only content).  Purely a
        # host-CPU saving — :meth:`_read_via_delta` still charges the
        # same device latencies and decompress cost on a hit.  A hit
        # requires the *same* delta object (a rewritten associate gets a
        # new Delta, so identity is the staleness check) against the
        # *same* version of the reference bytes; every `_ssd_data`
        # mutation bumps the version through _note_ssd_content_changed.
        self._recon_cache: "OrderedDict[int, Tuple[Delta, int, int, np.ndarray]]" = OrderedDict()
        self._ssd_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # StorageSystem interface
    # ------------------------------------------------------------------

    def devices(self) -> Iterable:
        if self.nvram is not None:
            return (self.ssd, self.hdd, self.dram, self.nvram)
        return (self.ssd, self.hdd, self.dram)

    def register_metrics(self, registry) -> None:
        """Controller-level instruments (see ``docs/OBSERVABILITY.md``).

        All callback-backed: each reads a cumulative counter or live
        structure size at sample time, so the read/write paths are
        untouched.  Together with the device instruments this covers the
        paper's time-series quantities — delta-hit ratio, RAM fill,
        reference churn, log occupancy.
        """
        if not registry.enabled:
            return
        stats, cache, segments, log = \
            self.stats, self.cache, self.segments, self.log
        registry.counter("delta_hits_total") \
            .set_fn(lambda: stats.count("ram_delta_hits"))
        registry.counter("delta_log_fetches_total") \
            .set_fn(lambda: stats.count("log_delta_fetches"))

        def hit_ratio() -> float:
            hits = stats.count("ram_delta_hits")
            total = hits + stats.count("log_delta_fetches")
            return hits / total if total else 0.0

        registry.gauge("delta_hit_ratio").set_fn(hit_ratio)
        registry.counter("delta_writes_total") \
            .set_fn(lambda: stats.count("delta_writes"))
        registry.gauge("ram_data_fill") \
            .set_fn(lambda: cache.data_blocks_used
                    / max(1, cache.max_data_blocks))
        registry.gauge("ram_delta_fill") \
            .set_fn(lambda: segments.used_segments
                    / max(1, segments.capacity_segments))
        registry.gauge("references_active") \
            .set_fn(lambda: len(cache.references()))
        registry.counter("reference_churn_total") \
            .set_fn(lambda: stats.count("references_created")
                    + stats.count("references_retired"))
        registry.gauge("dirty_deltas") \
            .set_fn(lambda: len(self._dirty_delta_lbas))
        registry.gauge("delta_log_occupancy") \
            .set_fn(lambda: log.occupancy)
        registry.counter("delta_log_wraps_total") \
            .set_fn(lambda: log.wrap_count)
        registry.counter("delta_log_appends_total") \
            .set_fn(lambda: log.blocks_written)
        registry.counter("delta_log_corrupt_total") \
            .set_fn(lambda: log.corrupt_blocks_total)
        registry.counter("recovery_replays_total") \
            .set_fn(lambda: log.replay_count)
        registry.counter("recovery_records_total") \
            .set_fn(lambda: log.replayed_records_total)

    def read(self, lba: int, nblocks: int = 1
             ) -> Tuple[float, List[np.ndarray]]:
        """Read ``nblocks`` starting at ``lba``.

        Returned arrays may be *read-only views* into controller-owned
        buffers (the RAM data cache, the SSD frozen copies, the backing
        store): they are valid until the next controller operation, and
        callers that retain content across operations must copy it.
        Controller-internal buffers are only ever replaced wholesale —
        never mutated in place — so a view can never observe a torn
        update; it can only go stale.
        """
        self._check_span(lba, nblocks)
        latency = 0.0
        contents: List[np.ndarray] = []
        # SSD reads after the first within one host request pipeline
        # across the flash channels, like a native multi-page read.
        self._request_ssd_reads = 0
        for block in range(lba, lba + nblocks):
            block_latency, content = self._read_one(block)
            latency += block_latency
            contents.append(content)
            self._after_io()
        return latency, contents

    def write(self, lba: int, blocks: Sequence[np.ndarray]) -> float:
        self._check_span(lba, len(blocks))
        self._request_ssd_reads = 0
        latency = 0.0
        # Multi-block writes compute all signatures in one cache-aware
        # batch pass; signatures are a pure function of content, so
        # hoisting them out of the per-block loop cannot change what any
        # interleaved scan observes (heatmap recording stays in
        # _write_one, in block order).
        signatures = (block_signatures_many(blocks,
                                            self.config.signature_scheme)
                      if len(blocks) > 1 else None)
        for offset, content in enumerate(blocks):
            latency += self._write_one(
                lba + offset, content,
                signatures[offset] if signatures else None)
            self._after_io()
        return latency

    def flush(self) -> float:
        """Foreground drain of all dirty deltas and data blocks."""
        return self._flush_deltas(background=False) \
            + self._flush_dirty_data(background=False)

    def ingest(self) -> float:
        """Offline reference selection and delta packing (§3.1, case 2).

        "At the time when virtual machines are created, I-CASH compares
        each data block ... derives deltas ... and packs the deltas into
        delta blocks to be stored in HDD."  The same organisation applies
        to any pre-loaded data set (a database load, a mail store): sweep
        the backing store sequentially, promote the first block of each
        content cluster to a reference in the SSD, and pack every
        similar block's delta into the sequential HDD log.

        Returns the setup time (sequential sweep + SSD reference writes +
        log append); callers treat it as load-phase cost, outside the
        measured benchmark window.
        """
        config = self.config
        index: Dict[Tuple[int, int], List[int]] = {}
        pending: List[DeltaRecord] = []
        # Batch tier: one vectorised signature pass + one heatmap scatter
        # over the whole backing store.  Equivalent to the per-block
        # scalar calls — nothing below reads the heatmap mid-sweep, and
        # counter increments commute — but ~N python round trips cheaper.
        sig_matrix = block_signatures_batch(
            self.backing.view_all(), config.signature_scheme)
        all_signatures = signature_tuples(sig_matrix)
        self.heatmap.record_batch(sig_matrix)
        if self.use_batch_ingest:
            total = self._ingest_sweep_batched(all_signatures, index,
                                               pending)
        else:
            total = self._ingest_sweep_scalar(all_signatures, index,
                                              pending)
        if pending:
            total += self._append_to_log(pending, relogging=False)
            self.stats.bump("ingest_deltas", len(pending))
            # Leave the delta buffer warm: the prototype "is able to cache
            # all delta blocks within 32 MB RAM" (Section 5.1).  Whatever
            # exceeds the pool stays reachable through the log.
            for record in pending:
                if not self.segments.can_fit(record.delta.size_bytes):
                    break
                if record.lba in self.cache:
                    continue
                vb = self._install_virtual_block(
                    record.lba, BlockKind.ASSOCIATE,
                    ref_lba=record.ref_lba)
                self.cache.attach_delta(vb, record.delta)
                vb.delta_dirty = False
                self._bump_associate_count(record.ref_lba, +1)
        return total

    def _ingest_best_reference(self, signatures: Tuple[int, ...],
                               index: Dict[Tuple[int, int], List[int]]
                               ) -> Optional[int]:
        tallies: Dict[int, int] = {}
        for row, value in enumerate(signatures):
            for ref_lba in index.get((row, value), ()):
                tallies[ref_lba] = tallies.get(ref_lba, 0) + 1
        self.cpu_time += max(1, len(tallies)) * self.config.scan_compare_s
        if not tallies:
            return None
        best = max(tallies, key=lambda k: tallies[k])
        if tallies[best] < self.config.min_signature_match:
            return None
        return best

    def _ingest_promote(self, lba: int, content: np.ndarray,
                        signatures: Tuple[int, ...],
                        index: Dict[Tuple[int, int], List[int]]
                        ) -> Optional[float]:
        """Promote ``lba`` to an SSD reference; None when no slot is free
        (the block then stays independent on the HDD data region)."""
        if not self._free_slots:
            return None
        slot = self._acquire_ssd_slot(lba)
        self._ssd_data[lba] = content.copy()
        self._note_ssd_content_changed(lba)
        latency = self.ssd.write(slot, 1)
        vb = self._install_virtual_block(lba, BlockKind.REFERENCE,
                                         ssd_slot=slot)
        vb.signatures = signatures
        self.scanner.note_reference(vb)
        for row, value in enumerate(signatures):
            index.setdefault((row, value), []).append(lba)
        self.stats.bump("ingest_references")
        return latency

    def _ingest_sweep_scalar(self, all_signatures: List[Tuple[int, ...]],
                             index: Dict[Tuple[int, int], List[int]],
                             pending: List[DeltaRecord]) -> float:
        """Reference scalar sweep: one best-reference lookup and one
        ``encode_delta`` per block, in LBA order.  Kept as the golden
        semantics that the batched sweep must reproduce exactly."""
        config = self.config
        total = 0.0
        for lba in range(self.capacity_blocks):
            total += self.hdd.read(lba, 1)  # sequential sweep
            content = self.backing.view(lba)
            signatures = all_signatures[lba]
            best_lba = self._ingest_best_reference(signatures, index)
            if best_lba is not None:
                delta = encode_delta(content, self._ssd_data[best_lba])
                self.cpu_time += config.compress_s
                if delta.size_bytes <= config.delta_accept_bytes:
                    pending.append(DeltaRecord(lba, best_lba, delta))
                    self._map_delta(lba, best_lba)
                    continue
            promoted = self._ingest_promote(lba, content, signatures, index)
            if promoted is not None:
                total += promoted
        return total

    #: Blocks per speculation window of the batched ingest sweep.
    INGEST_CHUNK = 256

    def _ingest_sweep_batched(self, all_signatures: List[Tuple[int, ...]],
                              index: Dict[Tuple[int, int], List[int]],
                              pending: List[DeltaRecord]) -> float:
        """Chunked sweep with speculative batch delta encoding.

        Equivalence to ``_ingest_sweep_scalar`` rests on three facts:

        * The scalar best pick (``max`` over an insertion-ordered tally
          dict) equals ``min`` over ``(-count, first_matching_row,
          ref_lba)``: ties on count resolve to the ref inserted first,
          insertion order is (first matching row, position in that index
          cell), and cell lists hold refs in ascending LBA because
          promotion happens in sweep order.
        * References are immutable once promoted, so the chunk-start
          index yields the correct best for every block not beaten by an
          intra-chunk promotion; those rare blocks fall back to the
          scalar ``encode_delta`` path.
        * Device calls (``hdd.read``/``ssd.write``) and the per-block
          ``cpu_time`` additions run in the same order with the same
          values, so stateful latency models and float accumulation are
          bit-identical.
        """
        config = self.config
        min_match = config.min_signature_match
        view = self.backing.view_all()
        total = 0.0
        capacity = self.capacity_blocks
        for lo in range(0, capacity, self.INGEST_CHUNK):
            hi = min(lo + self.INGEST_CHUNK, capacity)
            # Phase A: tallies against the references known at chunk
            # start.  No device or cpu_time accounting happens here.
            pre: List[Tuple[int, Optional[Tuple[int, int, int]]]] = []
            for lba in range(lo, hi):
                count_map: Dict[int, int] = {}
                first_map: Dict[int, int] = {}
                for row, value in enumerate(all_signatures[lba]):
                    for ref_lba in index.get((row, value), ()):
                        if ref_lba in count_map:
                            count_map[ref_lba] += 1
                        else:
                            count_map[ref_lba] = 1
                            first_map[ref_lba] = row
                best_key = None
                for ref_lba, count in count_map.items():
                    key = (-count, first_map[ref_lba], ref_lba)
                    if best_key is None or key < best_key:
                        best_key = key
                pre.append((len(count_map), best_key))
            # Speculative batch encode against each block's chunk-start
            # best.  Wasted only for blocks an intra-chunk promotion
            # later outranks.
            spec_deltas: Dict[int, Delta] = {}
            spec_rows = [i for i, (_n, key) in enumerate(pre)
                         if key is not None and -key[0] >= min_match]
            if spec_rows:
                targets = view[lo:hi][spec_rows]
                refs = np.stack([self._ssd_data[pre[i][1][2]]
                                 for i in spec_rows])
                for i, delta in zip(spec_rows,
                                    encode_delta_batch(targets, refs)):
                    spec_deltas[i] = delta
            # Phase B: the sequential decision loop, in LBA order.
            intra: List[Tuple[int, Tuple[int, ...]]] = []
            for i, lba in enumerate(range(lo, hi)):
                total += self.hdd.read(lba, 1)  # sequential sweep
                content = self.backing.view(lba)
                signatures = all_signatures[lba]
                n_tallies, best_key = pre[i]
                for ref_lba, ref_sigs in intra:
                    count = 0
                    first_row = 0
                    for row in range(len(signatures)):
                        if signatures[row] == ref_sigs[row]:
                            if not count:
                                first_row = row
                            count += 1
                    if count:
                        n_tallies += 1
                        key = (-count, first_row, ref_lba)
                        if best_key is None or key < best_key:
                            best_key = key
                self.cpu_time += max(1, n_tallies) * config.scan_compare_s
                best_lba = None
                if best_key is not None and -best_key[0] >= min_match:
                    best_lba = best_key[2]
                if best_lba is not None:
                    delta = spec_deltas.get(i)
                    if delta is None or best_lba != pre[i][1][2]:
                        delta = encode_delta(content,
                                             self._ssd_data[best_lba])
                    self.cpu_time += config.compress_s
                    if delta.size_bytes <= config.delta_accept_bytes:
                        pending.append(DeltaRecord(lba, best_lba, delta))
                        self._map_delta(lba, best_lba)
                        continue
                promoted = self._ingest_promote(lba, content, signatures,
                                                index)
                if promoted is not None:
                    total += promoted
                    intra.append((lba, signatures))
        return total

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _read_one(self, lba: int) -> Tuple[float, np.ndarray]:
        vb = self.cache.get(lba)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("cache_lookup", lba=lba,
                           outcome="miss" if vb is None else vb.kind.value)
        if vb is None:
            latency, content, vb = self._read_miss(lba)
        elif vb.is_associate or (vb.is_reference and vb.has_delta):
            latency, content = self._read_via_delta(vb)
        elif vb.has_data:
            self.stats.bump("ram_data_hits")
            latency = self.dram.access()
            content = _readonly_view(vb.data)
        elif vb.is_reference:
            if vb.lba in self._shadowed_refs:
                # The frozen SSD copy only serves dependents; the block's
                # own content lives on the HDD data region.
                latency = self.hdd.read(vb.lba, 1)
                content = self.backing.view(vb.lba)
                self._maybe_cache_data(vb, content, dirty=False)
                self.stats.bump("shadowed_ref_reads")
            else:
                latency = self._ssd_read_latency(vb.lba)
                content = _readonly_view(self._ssd_data[vb.lba])
                self.stats.bump("ssd_ref_reads")
                self.stats.bump("ssd_ref_direct_reads")
        elif lba in self._spilled:
            latency = self._ssd_read_latency(lba)
            content = _readonly_view(self._ssd_data[lba])
            self.stats.bump("ssd_spill_reads")
        else:
            # Independent block whose data block was evicted: back to HDD.
            latency = self.hdd.read(lba, 1)
            content = self.backing.view(lba)
            self._maybe_cache_data(vb, content, dirty=False)
            self.stats.bump("hdd_data_reads")
        if not vb.signatures:
            vb.signatures = block_signatures(content,
                                             self.config.signature_scheme)
        self.heatmap.record(vb.signatures)
        return latency, content

    def _read_miss(self, lba: int
                   ) -> Tuple[float, np.ndarray, VirtualBlock]:
        """Resolve a block with no cached virtual block."""
        entry = self._delta_map.get(lba)
        if entry is not None:
            return self._read_miss_delta_mapped(lba, entry)
        if lba in self._spilled:
            latency = self._ssd_read_latency(lba)
            content = _readonly_view(self._ssd_data[lba])
            vb = self._install_virtual_block(
                lba, BlockKind.INDEPENDENT, ssd_slot=self._slot_of[lba])
            self.stats.bump("ssd_spill_reads")
            return latency, content, vb
        latency = self.hdd.read(lba, 1)
        content = self.backing.view(lba)
        vb = self._install_virtual_block(lba, BlockKind.INDEPENDENT)
        self._maybe_cache_data(vb, content, dirty=False)
        self.stats.bump("hdd_data_reads")
        return latency, content, vb

    def _read_miss_delta_mapped(self, lba: int, entry: _DeltaMapEntry
                                ) -> Tuple[float, np.ndarray, VirtualBlock]:
        """An evicted associate: reference from SSD, delta from the log."""
        if entry.log_slot is None:
            raise RuntimeError(
                f"block {lba} delta-mapped but never flushed and not "
                f"cached — eviction must flush first")
        vb = self._install_virtual_block(lba, BlockKind.ASSOCIATE,
                                         ref_lba=entry.ref_lba)
        # Make room with headroom *before* unpacking the log block, so
        # the siblings the mechanical read drags in can hydrate too.
        self._reserve_for_log_fetch(vb)
        latency, delta = self._fetch_delta_from_log(lba, entry)
        latency += self._ssd_read_latency(entry.ref_lba)
        content = apply_delta(delta, self._ssd_data[entry.ref_lba])
        latency += self._decompress_cost()
        if self._ensure_segment_capacity(vb, delta.size_bytes):
            self.cache.attach_delta(vb, delta)
        self._bump_associate_count(entry.ref_lba, +1)
        self.stats.bump("log_delta_fetches")
        return latency, content, vb

    def _read_via_delta(self, vb: VirtualBlock) -> Tuple[float, np.ndarray]:
        """Associate (or written reference): reference content + delta."""
        ref_lba = vb.ref_lba if vb.is_associate else vb.lba
        latency = 0.0
        ref_vb = self.cache.get(ref_lba) if ref_lba != vb.lba else vb
        if ref_vb is not None and ref_vb.has_data:
            latency += self.dram.access()
            self.stats.bump("ram_ref_hits")
        else:
            latency += self._ssd_read_latency(ref_lba)
            self.stats.bump("ssd_ref_reads")
        if vb.has_delta:
            delta = vb.delta
            latency += self.dram.access(vb.delta_segments_bytes)
            self.stats.bump("ram_delta_hits")
        else:
            entry = self._delta_map[vb.lba]
            self._reserve_for_log_fetch(vb)
            log_latency, delta = self._fetch_delta_from_log(vb.lba, entry)
            latency += log_latency
            if self._ensure_segment_capacity(vb, delta.size_bytes):
                self.cache.attach_delta(vb, delta)
            self.stats.bump("log_delta_fetches")
        content = self._reconstruct(vb.lba, delta, ref_lba)
        latency += self._decompress_cost()
        self.stats.bump("delta_reconstructions")
        return latency, content

    #: Bound on memoised reconstructions (one 4 KB block each).
    RECON_CACHE_CAPACITY = 2048

    def _reconstruct(self, lba: int, delta: Delta,
                     ref_lba: int) -> np.ndarray:
        """Patch ``delta`` onto the reference, memoising the result.

        Re-reading an unchanged associate is the common case on a
        skewed read stream; the memo returns the prior reconstruction
        (read-only, like every other read path's view) as long as both
        the delta object and the reference bytes are unchanged.
        """
        version = self._ssd_versions.get(ref_lba, 0)
        entry = self._recon_cache.get(lba)
        if entry is not None and entry[0] is delta \
                and entry[1] == ref_lba and entry[2] == version:
            self._recon_cache.move_to_end(lba)
            self.stats.bump("recon_cache_hits")
            return entry[3]
        content = apply_delta(delta, self._ssd_data[ref_lba])
        content.flags.writeable = False
        self._recon_cache[lba] = (delta, ref_lba, version, content)
        if len(self._recon_cache) > self.RECON_CACHE_CAPACITY:
            self._recon_cache.popitem(last=False)
        return content

    def _note_ssd_content_changed(self, lba: int) -> None:
        """Invalidate memoised reconstructions built on ``lba``'s bytes."""
        self._ssd_versions[lba] = self._ssd_versions.get(lba, 0) + 1

    #: Segment-pool headroom a log fetch evicts for, as a multiple of a
    #: typical delta block's worth of records — the mechanical read is
    #: only amortised if its co-packed siblings have somewhere to live.
    LOG_FETCH_HEADROOM_BYTES = 8 * 1024

    def _reserve_for_log_fetch(self, vb: VirtualBlock) -> None:
        """Best-effort eviction so an imminent log fetch can hydrate."""
        if not self._ensure_segment_capacity(
                vb, self.LOG_FETCH_HEADROOM_BYTES):
            # Pool too small for headroom; the exact-size path in the
            # caller still gets its chance.
            return

    def _fetch_delta_from_log(self, lba: int, entry: _DeltaMapEntry
                              ) -> Tuple[float, Delta]:
        """One HDD log read; hydrates every current sibling delta it holds.

        This is the payoff of delta packing (Section 3.1): the mechanical
        read that fetches one delta brings its whole delta block into RAM,
        so immediately-following requests to the co-packed blocks hit RAM.
        """
        latency, records = self.log.read_block(entry.log_slot)
        wanted: Optional[Delta] = None
        for record in records:
            current = self._delta_map.get(record.lba)
            is_current = (current is not None
                          and current.log_slot == entry.log_slot
                          and current.ref_lba == record.ref_lba)
            if record.lba == lba and is_current:
                wanted = record.delta
                continue
            if not is_current:
                continue
            sibling = self.cache.get(record.lba, touch=False)
            if sibling is not None and sibling.has_delta:
                continue
            if not self.segments.can_fit(record.delta.size_bytes):
                continue
            if sibling is None:
                # Revive the co-packed block's metadata so the delta we
                # already paid the mechanical read for stays usable —
                # speculative, so never evict anyone to make room.
                if self.cache.virtual_blocks_free < 1:
                    continue
                sibling = VirtualBlock(lba=record.lba,
                                       kind=BlockKind.ASSOCIATE,
                                       ref_lba=record.ref_lba)
                self.cache.insert(sibling)
                self._bump_associate_count(record.ref_lba, +1)
            self.cache.attach_delta(sibling, record.delta)
            sibling.delta_dirty = False
            self.stats.bump("delta_hydrations")
        if wanted is None:
            raise RuntimeError(
                f"log slot {entry.log_slot} does not hold the current "
                f"delta for block {lba}")
        return latency, wanted

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _write_one(self, lba: int, content: np.ndarray,
                   signatures: Optional[Tuple[int, ...]] = None) -> float:
        if signatures is None:
            signatures = block_signatures(content,
                                          self.config.signature_scheme)
        self.heatmap.record(signatures)
        vb = self.cache.get(lba)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("cache_lookup", lba=lba,
                           outcome="miss" if vb is None else vb.kind.value)
        if vb is None:
            vb = self._revive_for_write(lba)
        if vb.is_associate:
            latency = self._write_associate(vb, content, signatures)
        elif vb.is_reference:
            latency = self._write_reference(vb, content)
        else:
            latency = self._write_independent(vb, content, signatures)
        return latency

    def _revive_for_write(self, lba: int) -> VirtualBlock:
        """Recreate the virtual block for a write miss."""
        entry = self._delta_map.get(lba)
        if entry is not None:
            vb = self._install_virtual_block(lba, BlockKind.ASSOCIATE,
                                             ref_lba=entry.ref_lba)
            self._bump_associate_count(entry.ref_lba, +1)
            return vb
        if lba in self._spilled:
            return self._install_virtual_block(
                lba, BlockKind.INDEPENDENT, ssd_slot=self._slot_of[lba])
        return self._install_virtual_block(lba, BlockKind.INDEPENDENT)

    def _write_associate(self, vb: VirtualBlock, content: np.ndarray,
                         signatures: Tuple[int, ...]) -> float:
        """Delta-derive against the reference; spill when the delta is big.

        The reference read and the compression run concurrently with
        request processing (Section 5.1), so the request only pays the RAM
        buffering plus the exposed slice of the compression time; the SSD
        read still occupies the device (background time).
        """
        ref_lba = vb.ref_lba
        ref_vb = self.cache.get(ref_lba)
        tracer = self.tracer
        if ref_vb is None or not ref_vb.has_data:
            # The reference read overlaps request processing (§5.1):
            # charged to background time, traced off the critical path.
            if tracer.enabled:
                tracer.begin_background()
            self.background_time += self._ssd_read_latency(ref_lba)
            if tracer.enabled:
                tracer.end_background()
            self.stats.bump("ssd_ref_reads_background")
        delta = encode_delta(content, self._ssd_data[ref_lba])
        cpu = self.config.compress_s
        self.cpu_time += cpu
        exposed = cpu * self.config.compress_exposed_fraction
        latency = self.dram.access() + exposed
        if tracer.enabled:
            tracer.span("delta_encode", exposed, lba=vb.lba,
                        nbytes=delta.size_bytes)
        if delta.size_bytes > self.config.delta_spill_bytes:
            latency += self._spill_to_ssd(vb, content)
            return latency
        if not self._ensure_segment_capacity(vb, delta.size_bytes):
            # Pool cannot hold this delta at all: spill instead.
            latency += self._spill_to_ssd(vb, content)
            return latency
        self.cache.attach_delta(vb, delta)
        vb.delta_dirty = True
        vb.signatures = signatures
        self.cache.drop_data(vb)  # content is now represented by the delta
        self._map_delta(vb.lba, ref_lba)
        self._mark_delta_dirty(vb.lba)
        self.stats.bump("delta_writes")
        return latency

    def _write_reference(self, vb: VirtualBlock,
                         content: np.ndarray) -> float:
        """Writes to a reference update its own delta; its SSD copy and
        signature stay frozen while associates depend on it."""
        delta = encode_delta(content, self._ssd_data[vb.lba])
        cpu = self.config.compress_s
        self.cpu_time += cpu
        exposed = cpu * self.config.compress_exposed_fraction
        latency = self.dram.access() + exposed
        tracer = self.tracer
        if tracer.enabled:
            tracer.span("delta_encode", exposed, lba=vb.lba,
                        nbytes=delta.size_bytes)
        if delta.is_identity:
            # Content reverted to the frozen copy: drop any standing delta.
            self.cache.drop_delta(vb)
            self.cache.drop_data(vb)
            self._unmap_delta(vb.lba)
            self._dirty_delta_lbas.pop(vb.lba, None)
            self._shadowed_refs.discard(vb.lba)
            return latency
        own_dependents = self._dependents_of(vb.lba)
        has_own_entry = vb.lba in self._delta_map
        external_dependents = own_dependents - (1 if has_own_entry else 0)
        if delta.size_bytes > self.config.delta_spill_bytes:
            if external_dependents == 0:
                # Nothing depends on the frozen copy: refresh it in place.
                if tracer.enabled:
                    tracer.begin_background()
                self.background_time += self._ssd_write(vb.lba, content)
                if tracer.enabled:
                    tracer.end_background()
                self.cache.drop_delta(vb)
                self.cache.drop_data(vb)
                self._unmap_delta(vb.lba)
                self._dirty_delta_lbas.pop(vb.lba, None)
                self._shadowed_refs.discard(vb.lba)
                vb.signatures = block_signatures(
                    content, self.config.signature_scheme)
                self.scanner.note_reference(vb)
                self.stats.bump("reference_refreshes")
                return latency
            # Dependents pin the frozen copy, and the delta is too big to
            # keep or log: *shadow* the reference — its current content
            # takes the ordinary data path while the SSD copy lives on.
            self.cache.drop_delta(vb)
            self._unmap_delta(vb.lba)
            self._dirty_delta_lbas.pop(vb.lba, None)
            self._shadowed_refs.add(vb.lba)
            if not self._maybe_cache_data(vb, content, dirty=True):
                latency += self.hdd.write(vb.lba, 1)
                self.backing.set(vb.lba, content)
            self.stats.bump("reference_shadowed")
            return latency
        if not self._ensure_segment_capacity(vb, delta.size_bytes):
            raise MemoryError(
                "segment pool cannot hold a reference block's own delta")
        self.cache.attach_delta(vb, delta)
        self.cache.drop_data(vb)
        vb.delta_dirty = True
        self._map_delta(vb.lba, vb.lba)
        self._mark_delta_dirty(vb.lba)
        self._shadowed_refs.discard(vb.lba)
        self.stats.bump("reference_delta_writes")
        return latency

    def _write_independent(self, vb: VirtualBlock, content: np.ndarray,
                           signatures: Tuple[int, ...]) -> float:
        if vb.lba in self._spilled:
            # Spilled blocks stay SSD-resident: the prototype keeps
            # writing their new data "directly to the SSD to release
            # delta buffer" (Section 5.3) — these are exactly the random
            # SSD writes Table 6 still counts against I-CASH.
            vb.signatures = signatures
            self.stats.bump("spilled_write_through")
            return self._ssd_write(vb.lba, content)
        latency = self.dram.access()
        if not self._maybe_cache_data(vb, content, dirty=True):
            # RAM data budget is irreducibly full: write through to HDD.
            latency += self.hdd.write(vb.lba, 1)
            self.backing.set(vb.lba, content)
            self.stats.bump("hdd_write_through")
        vb.signatures = signatures
        self.stats.bump("independent_writes")
        return latency

    def _spill_to_ssd(self, vb: VirtualBlock, content: np.ndarray) -> float:
        """Delta exceeded the threshold: store the whole block in the SSD
        (the prototype's escape hatch, Section 5.3) and dissociate."""
        if vb.is_associate:
            self._bump_associate_count(vb.ref_lba, -1)
        self.cache.drop_delta(vb)
        self.cache.drop_data(vb)
        self._unmap_delta(vb.lba)
        self._dirty_delta_lbas.pop(vb.lba, None)
        vb.kind = BlockKind.INDEPENDENT
        vb.ref_lba = None
        slot = self._acquire_ssd_slot(vb.lba)
        if slot is None:
            # SSD has no free slot: fall back to the independent path.
            vb.ssd_slot = None
            self.stats.bump("spill_fallbacks")
            latency = self.dram.access()
            if not self._maybe_cache_data(vb, content, dirty=True):
                latency += self.hdd.write(vb.lba, 1)
                self.backing.set(vb.lba, content)
            return latency
        vb.ssd_slot = slot
        self._spilled.add(vb.lba)
        self._ssd_data[vb.lba] = content.copy()
        self._note_ssd_content_changed(vb.lba)
        self.stats.bump("delta_spills")
        return self._ssd_write(vb.lba, content)

    # ------------------------------------------------------------------
    # Flushing (Section 3.3's reliability/performance knob)
    # ------------------------------------------------------------------

    def _flush_deltas(self, background: bool) -> float:
        if not self._dirty_delta_lbas:
            return 0.0
        if self.config.flush_order == "lba":
            dirty_order = sorted(self._dirty_delta_lbas)
        else:
            dirty_order = list(self._dirty_delta_lbas)
        records: List[DeltaRecord] = []
        for lba in dirty_order:
            vb = self.cache.get(lba, touch=False)
            if vb is None or not vb.has_delta:
                continue
            ref_lba = vb.ref_lba if vb.is_associate else vb.lba
            records.append(DeltaRecord(lba, ref_lba, vb.delta))
        self._dirty_delta_lbas.clear()
        if not records:
            return 0.0
        tracer = self.tracer
        scoped = background and tracer.enabled
        if scoped:
            tracer.begin_background("flush", outcome="deltas")
        latency = self._append_to_log(records, relogging=False)
        if scoped:
            tracer.end_background()
        for record in records:
            vb = self.cache.get(record.lba, touch=False)
            if vb is not None:
                vb.delta_dirty = False
        self.stats.bump("delta_flushes")
        self.stats.bump("delta_records_flushed", len(records))
        if background:
            self.background_time += latency
            return 0.0
        return latency

    def _append_to_log(self, records: List[DeltaRecord],
                       relogging: bool = False) -> float:
        """Append records, rescuing any current deltas the wrapping log
        overwrites.

        This is the minimal log cleaning a circular delta log needs:
        displaced records that are still each block's current delta get
        re-appended.  The loop iterates because one rescue can displace
        further current records when the live set sits contiguously in
        the log; each round compacts the live set toward the head, so it
        terminates whenever the live deltas fit in the region at all.  A
        round count beyond the region size means they do not — a
        configuration error worth failing loudly on.
        """
        total_latency = 0.0
        pending = records
        rounds = 0
        while pending:
            rounds += 1
            if rounds > 3:
                # Incremental rescue is chasing a dense live region around
                # the ring (the classic cleaning livelock): fall back to a
                # full compaction, which rewrites the live set once.
                return total_latency + self._compact_log(pending)
            latency, slots, displaced = self.log.append(pending)
            total_latency += latency
            self._update_log_slots(slots)
            pending = self._current_displaced(displaced)
            if pending:
                self.stats.bump("log_rescued_records", len(pending))
        return total_latency

    def _update_log_slots(self, slots: List[int]) -> None:
        """Point each just-flushed lba's delta map at its new log slot."""
        for slot in slots:
            for record in self.log.peek_block(slot):
                entry = self._delta_map.get(record.lba)
                if entry is not None and entry.ref_lba == record.ref_lba:
                    entry.log_slot = slot

    def _current_displaced(self, displaced) -> List[DeltaRecord]:
        """Filter a wrap's displaced records down to the still-current."""
        rescue: List[DeltaRecord] = []
        rescued_lbas: Set[int] = set()
        for old_slot, record in displaced:
            entry = self._delta_map.get(record.lba)
            if (entry is not None and entry.log_slot == old_slot
                    and entry.ref_lba == record.ref_lba
                    and record.lba not in rescued_lbas):
                rescue.append(record)
                rescued_lbas.add(record.lba)
        return rescue

    def _compact_log(self, pending: List[DeltaRecord]) -> float:
        """Rewrite the log to hold exactly the live record set.

        Gathers every block's current logged delta (plus the ``pending``
        records mid-flush), resets the region and appends them in one
        sequential sweep.  Raises when even the compacted live set does
        not fit — the genuine too-small-log misconfiguration.
        """
        live: Dict[int, DeltaRecord] = {}
        # Records still in flight supersede whatever the map points at —
        # a mid-rescue block's slot is legitimately stale until written.
        pending_lbas = {record.lba for record in pending}
        for lba, entry in list(self._delta_map.items()):
            if entry.log_slot is None or lba in pending_lbas:
                continue
            for record in self.log.peek_block(entry.log_slot):
                if record.lba == lba and record.ref_lba == entry.ref_lba:
                    live[lba] = record
                    break
            else:  # pragma: no cover - rescue keeps slots consistent
                raise RuntimeError(
                    f"delta map points block {lba} at log slot "
                    f"{entry.log_slot} which no longer holds its record")
        live.update((record.lba, record) for record in pending)
        records = list(live.values())
        self.log.reset()
        latency, slots, displaced = self.log.append(records)
        if displaced:
            raise RuntimeError(
                "delta log too small: the live delta set does not fit "
                "the log region even fully compacted; raise "
                "config.log_blocks")
        self._update_log_slots(slots)
        self.stats.bump("log_compactions")
        self.stats.bump("log_compacted_records", len(records))
        return latency

    def _flush_dirty_data(self, background: bool) -> float:
        dirty = [vb for vb in self.cache.lru_order()
                 if vb.data_dirty and vb.has_data]
        if not dirty:
            return 0.0
        tracer = self.tracer
        scoped = background and tracer.enabled
        if scoped:
            tracer.begin_background("flush", outcome="data")
        latency = 0.0
        # Sort by lba so the write-back sweeps the disk in one direction.
        for vb in sorted(dirty, key=lambda b: b.lba):
            latency += self.hdd.write(vb.lba, 1)
            self.backing.set(vb.lba, vb.data)
            vb.data_dirty = False
        if scoped:
            tracer.end_background()
        self.stats.bump("data_writebacks", len(dirty))
        if background:
            self.background_time += latency
            return 0.0
        return latency

    # ------------------------------------------------------------------
    # Background scan
    # ------------------------------------------------------------------

    def _after_io(self) -> None:
        self._io_count += 1
        config = self.config
        if self._io_count % config.scan_interval == 0:
            self._run_scan()
        if (config.heatmap_decay_interval
                and self._io_count % config.heatmap_decay_interval == 0):
            self.heatmap.decay(config.heatmap_decay_factor)
        dirty_pressure = (len(self._dirty_delta_lbas)
                          >= config.flush_dirty_count)
        if self._io_count % config.flush_interval == 0 or dirty_pressure:
            self._flush_deltas(background=True)
            if self._io_count % config.flush_interval == 0:
                self._flush_dirty_data(background=True)

    def _scan_content(self, vb: VirtualBlock) -> Optional[np.ndarray]:
        """Cheap (no device I/O) content resolution for the scanner."""
        if vb.is_reference:
            if vb.has_delta or vb.lba in self._shadowed_refs:
                return None  # current content diverged; unstable anchor
            return self._ssd_data.get(vb.lba)
        if vb.has_data:
            return vb.data
        if vb.lba in self._spilled:
            return self._ssd_data.get(vb.lba)
        return None

    def _run_scan(self) -> None:
        config = self.config
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_background("scan")
        needed = max(1, int(config.scan_window * 0.05))
        if len(self._free_slots) < needed:
            self._retire_cold_references(needed - len(self._free_slots))
        result = self.scanner.scan(
            self.cache, config.scan_window,
            max_new_references=len(self._free_slots),
            content_fn=self._scan_content)
        self.cpu_time += result.cpu_time
        self.background_time += result.cpu_time
        for vb in result.new_references:
            self._promote_reference(vb)
        for assoc in result.associations:
            self._apply_association(assoc.vb, assoc.ref_lba, assoc.delta)
        if tracer.enabled:
            # The scan's own CPU comparisons have no individual spans;
            # fold them into the enclosing scan span's duration.
            tracer.end_background(extra_s=result.cpu_time)
        self.stats.bump("scans")
        self.stats.bump("scan_comparisons", result.comparisons)

    def _promote_reference(self, vb: VirtualBlock) -> None:
        content = self._scan_content(vb)
        if content is None:  # pragma: no cover - scanner filtered already
            self.scanner.note_retired(vb.lba)
            return
        content = content.copy()
        was_spilled = vb.lba in self._spilled
        if was_spilled:
            # The SSD already holds exactly this content: reuse the slot.
            slot = self._slot_of[vb.lba]
            self._spilled.discard(vb.lba)
        else:
            slot = self._acquire_ssd_slot(vb.lba)
            if slot is None:
                # Promotion fell through: undo the scan's optimistic
                # signature-index insertion.
                self.scanner.note_retired(vb.lba)
                return
            self._ssd_data[vb.lba] = content
            self._note_ssd_content_changed(vb.lba)
            self.background_time += self._ssd_write(vb.lba, content)
        if vb.data_dirty or was_spilled:
            # Keep the HDD region consistent with the promoted copy so a
            # later demotion (or recovery) never resurrects stale bytes.
            self.background_time += self.hdd.write(vb.lba, 1)
            self.backing.set(vb.lba, content)
            vb.data_dirty = False
        vb.kind = BlockKind.REFERENCE
        vb.ssd_slot = slot
        vb.ref_lba = None
        vb.associate_count = 0
        self.cache.drop_data(vb)  # SSD now serves it; free the RAM block
        self.scanner.note_reference(vb)
        self.stats.bump("references_created")

    def _apply_association(self, vb: VirtualBlock, ref_lba: int,
                           delta: Delta) -> None:
        if vb.is_reference or ref_lba == vb.lba:
            return
        ref_vb = self.cache.get(ref_lba, touch=False)
        if ref_vb is None or not ref_vb.is_reference:
            return  # the reference was retired between scan and apply
        if not self._ensure_segment_capacity(vb, delta.size_bytes):
            return
        if vb.lba in self._spilled:
            self._release_ssd_slot(vb.lba)
            vb.ssd_slot = None
        was_dirty = vb.data_dirty
        self.cache.attach_delta(vb, delta)
        if vb.has_data:
            vb.data_dirty = False
            self.cache.drop_data(vb)
        vb.kind = BlockKind.ASSOCIATE
        vb.ref_lba = ref_lba
        self._map_delta(vb.lba, ref_lba)
        # A dirty data block's content now lives only in the delta: it must
        # reach the log before the virtual block can ever be evicted.
        vb.delta_dirty = True
        self._mark_delta_dirty(vb.lba)
        if was_dirty:
            self.stats.bump("associations_absorbed_dirty_data")
        self._bump_associate_count(ref_lba, +1)
        self.stats.bump("associates_created")

    def _retire_cold_references(self, count: int) -> None:
        """Demote references with no live associates, coldest first."""
        retired = 0
        for vb in self.cache.lru_order():
            if retired >= count:
                break
            if not vb.is_reference or self._dependents_of(vb.lba) > 0:
                continue
            if vb.has_delta:
                continue  # carries its own unlogged changes; leave it
            self._release_ssd_slot(vb.lba)
            vb.kind = BlockKind.INDEPENDENT
            vb.ssd_slot = None
            # A shadowed reference demotes to a plain independent block:
            # its content already lives on the ordinary data path.
            self._shadowed_refs.discard(vb.lba)
            self.scanner.note_retired(vb.lba)
            retired += 1
            self.stats.bump("references_retired")

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------

    def _install_virtual_block(self, lba: int, kind: BlockKind,
                               ref_lba: Optional[int] = None,
                               ssd_slot: Optional[int] = None
                               ) -> VirtualBlock:
        self._ensure_virtual_capacity()
        vb = VirtualBlock(lba=lba, kind=kind, ref_lba=ref_lba,
                          ssd_slot=ssd_slot)
        self.cache.insert(vb)
        return vb

    def _ensure_virtual_capacity(self) -> None:
        while self.cache.virtual_blocks_free < 1:
            victim = self.cache.find_virtual_victim()
            if victim is None:
                raise MemoryError(
                    "every cached virtual block is a reference; raise "
                    "max_virtual_blocks or lower the SSD budget")
            self._evict_virtual_block(victim)

    def _evict_virtual_block(self, victim: VirtualBlock) -> None:
        if victim.delta_dirty:
            self._flush_deltas(background=True)
        if victim.data_dirty and victim.has_data:
            tracer = self.tracer
            if tracer.enabled:
                tracer.begin_background()
            self.background_time += self.hdd.write(victim.lba, 1)
            if tracer.enabled:
                tracer.end_background()
            self.backing.set(victim.lba, victim.data)
            victim.data_dirty = False
        if victim.is_associate:
            self._bump_associate_count(victim.ref_lba, -1)
        self.cache.remove(victim.lba)
        self.stats.bump("virtual_evictions")

    def _maybe_cache_data(self, vb: VirtualBlock, content: np.ndarray,
                          dirty: bool) -> bool:
        """Attach a RAM data block if the budget allows (evicting others).

        Returns False when no budget could be made (the caller falls back
        to a write-through or serves straight from the device).
        """
        if not vb.has_data:
            while self.cache.data_blocks_free < 1:
                victim = self.cache.find_data_victim()
                if victim is None or victim is vb:
                    return False
                if victim.data_dirty:
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.begin_background()
                    self.background_time += self.hdd.write(victim.lba, 1)
                    if tracer.enabled:
                        tracer.end_background()
                    self.backing.set(victim.lba, victim.data)
                self.cache.drop_data(victim)
                self.stats.bump("data_evictions")
        self.cache.attach_data(vb, content.copy())
        vb.data_dirty = dirty
        return True

    def _ensure_segment_capacity(self, vb: VirtualBlock,
                                 nbytes: int) -> bool:
        """Make room in the segment pool for ``vb`` to hold ``nbytes``.

        Accounts for the segments ``vb`` already holds (they are freed on
        re-attach).  Applies the paper's delta-replacement policy: evict
        the first non-reference delta holder from the LRU tail — which
        *removes* that virtual block ("delta replacement leads to virtual
        block replacement"), its delta staying reachable through the log.
        """
        need = self.segments.segments_for(nbytes)
        if need > self.segments.capacity_segments:
            return False
        if vb.delta_segments_bytes:
            # Re-attaching frees the old allocation first.
            need -= self.segments.segments_for(vb.delta_segments_bytes)
        while self.segments.free_segments < need:
            victim = self.cache.find_delta_victim()
            if victim is None or victim is vb:
                return False
            if victim.delta_dirty:
                self._flush_deltas(background=True)
            self._evict_virtual_block(victim)
            self.stats.bump("delta_evictions")
        return True

    # ------------------------------------------------------------------
    # SSD slot management
    # ------------------------------------------------------------------

    def _acquire_ssd_slot(self, lba: int) -> Optional[int]:
        if not self._free_slots:
            return None
        slot = self._free_slots.pop()
        self._slot_of[lba] = slot
        return slot

    def _release_ssd_slot(self, lba: int) -> None:
        slot = self._slot_of.pop(lba, None)
        if slot is None:
            return
        self.ssd.trim(slot, 1)
        self._free_slots.append(slot)
        if self._ssd_data.pop(lba, None) is not None:
            self._note_ssd_content_changed(lba)
        self._spilled.discard(lba)

    def _ssd_read_latency(self, lba: int) -> float:
        count = getattr(self, "_request_ssd_reads", 0)
        self._request_ssd_reads = count + 1
        if count:
            return self.ssd.read_followup(self._slot_of[lba])
        return self.ssd.read(self._slot_of[lba], 1)

    def _ssd_write(self, lba: int, content: np.ndarray) -> float:
        self._ssd_data[lba] = content.copy()
        self._note_ssd_content_changed(lba)
        return self.ssd.write(self._slot_of[lba], 1)

    def _bump_associate_count(self, ref_lba: int, amount: int) -> None:
        ref_vb = self.cache.get(ref_lba, touch=False)
        if ref_vb is not None:
            ref_vb.associate_count = max(0, ref_vb.associate_count + amount)

    # ------------------------------------------------------------------
    # Delta-map maintenance (with reference dependent counting)
    # ------------------------------------------------------------------

    def _map_delta(self, lba: int, ref_lba: int) -> _DeltaMapEntry:
        """Record that ``lba``'s content is a delta against ``ref_lba``."""
        self._unmap_delta(lba)
        entry = _DeltaMapEntry(ref_lba, None)
        self._delta_map[lba] = entry
        self._ref_dependents[ref_lba] = \
            self._ref_dependents.get(ref_lba, 0) + 1
        return entry

    def _unmap_delta(self, lba: int) -> None:
        old = self._delta_map.pop(lba, None)
        if old is None:
            return
        remaining = self._ref_dependents.get(old.ref_lba, 0) - 1
        if remaining > 0:
            self._ref_dependents[old.ref_lba] = remaining
        else:
            self._ref_dependents.pop(old.ref_lba, None)

    def _dependents_of(self, ref_lba: int) -> int:
        return self._ref_dependents.get(ref_lba, 0)

    def _mark_delta_dirty(self, lba: int) -> None:
        """Queue a delta for the next flush; re-dirtying moves the block
        to the tail so arrival order tracks the *latest* write burst."""
        self._dirty_delta_lbas[lba] = None
        self._dirty_delta_lbas.move_to_end(lba)

    def _decompress_cost(self) -> float:
        self.cpu_time += self.config.decompress_s
        tracer = self.tracer
        if tracer.enabled:
            tracer.span("delta_decode", self.config.decompress_s)
        return self.config.decompress_s

    # ------------------------------------------------------------------
    # Introspection for reports, tests and recovery
    # ------------------------------------------------------------------

    def block_kind_counts(self) -> Dict[str, int]:
        """Reference / associate / independent population (Section 5.1's
        1 % / 85 % / 14 % breakdown)."""
        counts = {"reference": 0, "associate": 0, "independent": 0}
        for vb in self.cache.lru_order():
            counts[vb.kind.value] += 1
        # Delta-mapped blocks whose virtual block was evicted are still
        # logically associates.
        for lba, entry in self._delta_map.items():
            if lba not in self.cache and entry.ref_lba != lba:
                counts["associate"] += 1
        return counts

    def ssd_content_snapshot(self) -> Dict[int, np.ndarray]:
        """Copy of the SSD's durable content keyed by lba (recovery)."""
        return {lba: data.copy() for lba, data in self._ssd_data.items()}

    def ssd_block_content(self, lba: int) -> Optional[np.ndarray]:
        """The SSD-resident copy (reference or spill) of ``lba``, or
        None when the block has no SSD copy.

        Returns the live array, not a copy: fault injection corrupts
        it in place and the signature scrub
        (:func:`repro.sim.faults.scrub_references`) must observe that
        damage.
        """
        return self._ssd_data.get(lba)

    @property
    def dirty_delta_count(self) -> int:
        """Deltas awaiting a flush — the crash data-loss window of
        Section 3.3 (what an ill-timed power loss would forget)."""
        return len(self._dirty_delta_lbas)

    def delta_map_snapshot(self) -> Dict[int, Tuple[int, Optional[int]]]:
        """Durable delta metadata: lba -> (ref_lba, log_slot).

        Section 3.3 flushes metadata alongside dirty deltas, so recovery
        may consult this map to tell current log records from stale ones.
        """
        return {lba: (entry.ref_lba, entry.log_slot)
                for lba, entry in self._delta_map.items()}

    @property
    def reference_lbas(self) -> Set[int]:
        return {vb.lba for vb in self.cache.references()}

    @property
    def spilled_lbas(self) -> Set[int]:
        return set(self._spilled)

    @property
    def shadowed_reference_lbas(self) -> Set[int]:
        """References whose own content bypasses their frozen SSD copy."""
        return set(self._shadowed_refs)

    def describe(self) -> str:
        """A human-readable status report of this storage element.

        Covers the quantities an operator would ask about: block
        population, RAM budgets, SSD occupancy and wear, log state and
        the dirty (crash-loss) window.
        """
        counts = self.block_kind_counts()
        total = max(1, sum(counts.values()))
        pool = self.segments
        lines = [
            f"I-CASH element: {self.capacity_blocks} logical blocks "
            f"({self.capacity_blocks * 4096 / 2**20:.0f} MiB)",
            "block population:",
        ]
        lines.extend(f"  {kind:<12} {counts[kind]:>7} "
                     f"({counts[kind] / total:6.1%})"
                     for kind in ("reference", "associate", "independent"))
        lines.extend([
            "ram:",
            f"  data blocks   {self.cache.data_blocks_used:>7} / "
            f"{self.cache.max_data_blocks}",
            f"  delta pool    {pool.used_segments:>7} / "
            f"{pool.capacity_segments} segments "
            f"(peak {pool.peak_segments})",
            f"  virtual blocks{len(self.cache):>7} / "
            f"{self.cache.max_virtual_blocks}",
            "ssd:",
            f"  slots used    "
            f"{self.config.ssd_capacity_blocks - len(self._free_slots):>7}"
            f" / {self.config.ssd_capacity_blocks}"
            f" ({len(self._spilled)} spilled, "
            f"{len(self._shadowed_refs)} shadowed refs)",
            f"  host writes   {self.ssd.stats.count('write_blocks'):>7} "
            f"pages, write amplification "
            f"{self.ssd.write_amplification:.2f}",
            f"  erases        {self.ssd.total_erases:>7}",
            "log:",
            f"  medium        "
            f"{'nvram' if self.nvram is not None else 'hdd'}",
            f"  blocks written{self.log.blocks_written:>7} "
            f"(region {self.config.log_blocks})",
            f"  dirty deltas  {len(self._dirty_delta_lbas):>7} "
            f"(the crash-loss window)",
            f"  mapped blocks {len(self._delta_map):>7}",
        ])
        return "\n".join(lines)
