"""The I-CASH core: the paper's primary contribution.

Modules, in dependency order:

* :mod:`repro.core.config` — every tunable the paper names, with the
  paper's defaults.
* :mod:`repro.core.signatures` — cheap 1-byte sub-signatures (sampled sums,
  Section 4.2) plus a hash-based alternative for the ablation.
* :mod:`repro.core.heatmap` — the S x Vs popularity array that fuses
  temporal and content locality.
* :mod:`repro.core.virtual_block` — reference / associate / independent
  virtual blocks.
* :mod:`repro.core.cache` — the LRU virtual-block cache with the paper's
  three replacement policies.
* :mod:`repro.core.similarity` — reference selection and delta
  association (the periodic scan).
* :mod:`repro.core.controller` — the full I-CASH storage element: read
  path, write path, flushing, spill threshold, background scan.
* :mod:`repro.core.recovery` — crash recovery by replaying the HDD delta
  log against SSD reference blocks (Section 3.3).
"""

from repro.core.array import ICASHArray
from repro.core.config import ICASHConfig
from repro.core.controller import ICASHController
from repro.core.heatmap import Heatmap
from repro.core.signatures import (SignatureScheme, block_signatures,
                                   signature_overlap)
from repro.core.virtual_block import BlockKind, VirtualBlock

__all__ = [
    "BlockKind",
    "ICASHArray",
    "Heatmap",
    "ICASHConfig",
    "ICASHController",
    "SignatureScheme",
    "VirtualBlock",
    "block_signatures",
    "signature_overlap",
]
