"""The hardware (in-controller) implementation of I-CASH (§3.2a).

The paper describes two implementations.  The prototype is the software
one (Figure 2b): the I-CASH logic runs on the host CPU and borrows
system RAM, which costs host cycles and couples storage performance to
host load.  The hardware design (Figure 2a) embeds the logic in the
disk controller or HBA: "The controller board will have added NAND-gate
flash SSD, an embedded processor, and a small DRAM buffer" — the
conclusion names building it as future work.

:class:`EmbeddedICASHController` models that design point:

* the codec and scan run on the *embedded* processor — typically slower
  per operation than a server Xeon (configurable ratio), but their
  cycles no longer appear in host CPU accounting at all;
* the DRAM buffer is the controller's own small memory rather than a
  slice of system RAM;
* host interface DMA adds a small per-request transfer cost.

Everything else — the algorithm, the data layout, recovery — is
inherited unchanged, which is the point: §3.2 presents the two as the
same architecture in different bodies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ICASHConfig
from repro.core.controller import ICASHController
from repro.devices.hdd import HDDSpec
from repro.devices.ssd import SSDSpec


@dataclass(frozen=True)
class EmbeddedSpec:
    """The embedded controller's hardware parameters."""

    #: Embedded-core slowdown vs the host CPU for codec work.  2010-era
    #: controller SoCs ran a few hundred MHz against the host's ~2 GHz;
    #: dedicated (de)compression assists close some of the gap.
    codec_slowdown: float = 2.5
    #: Per-request host-interface DMA cost (s): request + completion.
    dma_per_request_s: float = 2e-6
    #: Controller DRAM size in bytes (the "small DRAM buffer").
    dram_bytes: int = 64 * 1024 * 1024


class EmbeddedICASHController(ICASHController):
    """I-CASH inside the controller board: offloaded, self-contained."""

    def __init__(self, initial_content: np.ndarray,
                 config: Optional[ICASHConfig] = None,
                 embedded: Optional[EmbeddedSpec] = None,
                 hdd_spec: Optional[HDDSpec] = None,
                 ssd_spec: Optional[SSDSpec] = None) -> None:
        from dataclasses import replace

        config = config if config is not None else ICASHConfig()
        embedded = embedded if embedded is not None else EmbeddedSpec()
        self.embedded = embedded
        #: CPU seconds burned on the embedded core (not the host).
        #: Must exist before the base constructor touches ``cpu_time``.
        self.embedded_cpu_time = 0.0
        # The controller brings its own DRAM: cap the RAM budgets at the
        # board's memory, split the same way the config asked for.
        total = config.data_ram_bytes + config.delta_ram_bytes
        if total > embedded.dram_bytes:
            scale = embedded.dram_bytes / total
            config = replace(
                config,
                data_ram_bytes=max(1 << 19,
                                   int(config.data_ram_bytes * scale)),
                delta_ram_bytes=max(1 << 19,
                                    int(config.delta_ram_bytes * scale)))
        # Codec operations run on the embedded core.
        config = replace(
            config,
            compress_s=config.compress_s * embedded.codec_slowdown,
            decompress_s=config.decompress_s * embedded.codec_slowdown,
            scan_compare_s=config.scan_compare_s * embedded.codec_slowdown)
        super().__init__(initial_content, config, hdd_spec, ssd_spec)
        self.name = "icash-hw"

    # -- host CPU accounting ------------------------------------------------

    @property
    def cpu_time(self) -> float:  # type: ignore[override]
        """Host CPU time: zero — the whole point of the hardware design.

        The embedded core's busy time is tracked separately in
        :attr:`embedded_cpu_time`.
        """
        return 0.0

    @cpu_time.setter
    def cpu_time(self, value: float) -> None:
        # The base class accumulates with ``self.cpu_time += x``: the
        # getter contributes 0, so ``value`` is exactly the increment —
        # redirect it onto the embedded core.
        self.embedded_cpu_time += value

    # -- host interface -------------------------------------------------------

    def read(self, lba: int, nblocks: int = 1):
        latency, contents = super().read(lba, nblocks)
        return latency + self.embedded.dma_per_request_s, contents

    def write(self, lba: int, blocks) -> float:
        latency = super().write(lba, blocks)
        return latency + self.embedded.dma_per_request_s
