"""Content-locality and run analysis tools.

The paper's architecture stands on an empirical claim (Section 2.2):
data blocks exhibit *content locality* — many are identical, many more
are similar, and typical writes change only 5–20 % of a block.  This
package measures those properties directly:

* :mod:`repro.analysis.locality` — dataset- and trace-level content
  statistics: duplicate ratio, delta-size distributions against best
  references, signature-overlap histograms, write-change fractions.
* :mod:`repro.analysis.coverage` — how well a reference set covers a
  block population (the "1 % references anchor 85 % of blocks" number).
* :mod:`repro.analysis.explain` — differential diagnosis of two runs:
  noise-aware attribution/scalar diffs, phase-aligned series diffs,
  queueing deltas and a ranked suspect list (``repro explain``).
"""

from repro.analysis.coverage import CoverageReport, reference_coverage
from repro.analysis.locality import (DatasetLocality, WriteLocality,
                                     analyze_dataset, analyze_writes)

__all__ = [
    "CoverageReport",
    "DatasetLocality",
    "WriteLocality",
    "analyze_dataset",
    "analyze_writes",
    "reference_coverage",
]
