"""Reference-coverage analysis.

Section 5.1's structural result: for SysBench, "the percentages of
reference blocks, delta blocks, and independent blocks are 1%, 85%, and
14%" — a tiny reference set anchors the population.  This module
measures that property for any (reference set, population) pair: how
many blocks each reference anchors, the delta bytes the representation
costs, and the space saving versus storing full blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import ICASHController
from repro.delta.encoder import encode_delta
from repro.sim.request import BLOCK_SIZE


@dataclass
class CoverageReport:
    """How a reference set covers a block population."""

    n_blocks: int
    n_references: int
    n_associates: int
    n_independent: int
    #: Total bytes of all association deltas.
    delta_bytes: int
    #: Associates anchored per reference (only references with >= 1).
    fanout: Dict[int, int] = field(repr=False, default_factory=dict)

    @property
    def reference_fraction(self) -> float:
        return self.n_references / self.n_blocks if self.n_blocks else 0.0

    @property
    def associate_fraction(self) -> float:
        return self.n_associates / self.n_blocks if self.n_blocks else 0.0

    @property
    def space_saving(self) -> float:
        """1 - (references + deltas + independents) / full blocks.

        The quantity Table 2's worked example minimises: how much cache
        space the delta representation saves over storing every block.
        """
        full = self.n_blocks * BLOCK_SIZE
        compressed = ((self.n_references + self.n_independent)
                      * BLOCK_SIZE + self.delta_bytes)
        return 1.0 - compressed / full if full else 0.0

    def max_fanout(self) -> int:
        return max(self.fanout.values()) if self.fanout else 0

    def summary(self) -> str:
        return (f"{self.reference_fraction:.1%} references anchor "
                f"{self.associate_fraction:.1%} of {self.n_blocks} blocks "
                f"({self.n_independent} independent); space saving "
                f"{self.space_saving:.1%}, max fanout {self.max_fanout()}")


def reference_coverage(controller: ICASHController) -> CoverageReport:
    """Measure a live I-CASH element's reference coverage.

    Walks the durable delta map (cached and evicted associates alike) and
    re-derives each association's delta size from actual content, so the
    report reflects real bytes, not estimates.
    """
    delta_map = controller.delta_map_snapshot()
    ssd = controller.ssd_content_snapshot()
    references = set(controller.reference_lbas)
    fanout: Dict[int, int] = {}
    delta_bytes = 0
    n_associates = 0
    image = _content_reader(controller)
    for lba, (ref_lba, _slot) in delta_map.items():
        if ref_lba == lba or ref_lba not in ssd:
            continue
        n_associates += 1
        fanout[ref_lba] = fanout.get(ref_lba, 0) + 1
        delta = encode_delta(image(lba), ssd[ref_lba])
        delta_bytes += delta.size_bytes
    n_blocks = controller.capacity_blocks
    n_independent = n_blocks - n_associates - len(references)
    return CoverageReport(
        n_blocks=n_blocks,
        n_references=len(references),
        n_associates=n_associates,
        n_independent=max(0, n_independent),
        delta_bytes=delta_bytes,
        fanout=fanout)


def _content_reader(controller: ICASHController):
    """Current-content accessor that bypasses the data path entirely, so
    the analysis charges no device latency and moves no LRU state."""
    from repro.core.recovery import recover

    # A recovery image already resolves every durable representation;
    # overlay the not-yet-flushed RAM state on top of it.
    image = recover(controller)
    ssd = controller.ssd_content_snapshot()

    def read(lba: int) -> np.ndarray:
        vb = controller.cache.get(lba, touch=False)
        if vb is not None and vb.has_data:
            return vb.data.copy()
        if vb is not None and vb.has_delta:
            from repro.delta.encoder import apply_delta
            ref_lba = vb.ref_lba if vb.ref_lba is not None else vb.lba
            if ref_lba in ssd:
                return apply_delta(vb.delta, ssd[ref_lba])
        return image.read(lba)
    return read
