"""Content-locality measurement.

Quantifies, for any block population or write stream, the properties the
paper's Section 2.2 asserts qualitatively:

* how many blocks are exact duplicates (dedup's food),
* how small blocks' deltas are against their best in-population anchor
  (I-CASH's food),
* how much of a block a write actually changes (the cited 5–20 %).

These functions are exact but O(n·candidates): they use the same
signature index the I-CASH scanner uses to find each block's best
anchor, then compute the true delta.  Suitable for datasets up to a few
tens of thousands of blocks — analysis, not data path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.signatures import block_signatures
from repro.delta.encoder import encode_delta
from repro.sim.request import BLOCK_SIZE, IORequest


@dataclass
class DatasetLocality:
    """Content-locality statistics of one block population."""

    n_blocks: int
    #: Blocks whose exact content occurs more than once.
    duplicate_blocks: int
    #: Distinct contents among the duplicates' classes.
    duplicate_classes: int
    #: Per-block size of the delta against its best anchor (bytes);
    #: ``BLOCK_SIZE`` stands in for "no anchor found".
    delta_sizes: List[int] = field(repr=False, default_factory=list)

    @property
    def duplicate_ratio(self) -> float:
        return self.duplicate_blocks / self.n_blocks if self.n_blocks \
            else 0.0

    def compressible_fraction(self, threshold: int = 2048) -> float:
        """Fraction of blocks whose best delta fits under ``threshold`` —
        the population I-CASH can represent as associates."""
        if not self.delta_sizes:
            return 0.0
        return sum(1 for s in self.delta_sizes if s <= threshold) \
            / len(self.delta_sizes)

    def median_delta_bytes(self) -> float:
        if not self.delta_sizes:
            return 0.0
        return float(np.median(self.delta_sizes))

    def summary(self) -> str:
        return (f"{self.n_blocks} blocks: "
                f"{self.duplicate_ratio:.1%} exact duplicates "
                f"({self.duplicate_classes} classes), "
                f"{self.compressible_fraction():.1%} delta-compressible "
                f"(median delta {self.median_delta_bytes():.0f} B)")


def _signature_index(signatures: List[Tuple[int, ...]]
                     ) -> Dict[Tuple[int, int], List[int]]:
    index: Dict[Tuple[int, int], List[int]] = {}
    for block_id, sigs in enumerate(signatures):
        for row, value in enumerate(sigs):
            index.setdefault((row, value), []).append(block_id)
    return index


def _best_anchor(block_id: int, signatures: List[Tuple[int, ...]],
                 index: Dict[Tuple[int, int], List[int]],
                 min_match: int) -> Optional[int]:
    tallies: Dict[int, int] = {}
    for row, value in enumerate(signatures[block_id]):
        for candidate in index.get((row, value), ()):
            if candidate != block_id:
                tallies[candidate] = tallies.get(candidate, 0) + 1
    if not tallies:
        return None
    best = max(tallies, key=lambda k: tallies[k])
    return best if tallies[best] >= min_match else None


def analyze_dataset(dataset: np.ndarray, min_match: int = 4,
                    sample: Optional[int] = None,
                    seed: int = 0) -> DatasetLocality:
    """Measure a block population's content locality.

    ``sample`` bounds how many blocks get the (expensive) best-anchor
    delta computed; duplicates are always counted exactly.
    """
    n_blocks = dataset.shape[0]
    digests: Dict[bytes, int] = {}
    counts: Dict[bytes, int] = {}
    for lba in range(n_blocks):
        digest = hashlib.sha1(dataset[lba].tobytes()).digest()
        counts[digest] = counts.get(digest, 0) + 1
        digests[digest] = lba
    duplicate_blocks = sum(c for c in counts.values() if c > 1)
    duplicate_classes = sum(1 for c in counts.values() if c > 1)

    signatures = [block_signatures(dataset[lba]) for lba in range(n_blocks)]
    index = _signature_index(signatures)
    if sample is not None and sample < n_blocks:
        rng = np.random.default_rng(seed)
        probe = sorted(rng.choice(n_blocks, size=sample, replace=False))
    else:
        probe = range(n_blocks)
    delta_sizes: List[int] = []
    for block_id in probe:
        anchor = _best_anchor(block_id, signatures, index, min_match)
        if anchor is None:
            delta_sizes.append(BLOCK_SIZE)
            continue
        delta = encode_delta(dataset[block_id], dataset[anchor])
        delta_sizes.append(min(BLOCK_SIZE, delta.size_bytes))
    return DatasetLocality(
        n_blocks=n_blocks,
        duplicate_blocks=duplicate_blocks,
        duplicate_classes=duplicate_classes,
        delta_sizes=delta_sizes)


@dataclass
class WriteLocality:
    """How much content the writes of a stream actually change."""

    n_overwrites: int
    #: Per-overwrite fraction of bytes changed.
    change_fractions: List[float] = field(repr=False,
                                          default_factory=list)

    def mean_change_fraction(self) -> float:
        if not self.change_fractions:
            return 0.0
        return float(np.mean(self.change_fractions))

    def within_paper_band(self, low: float = 0.05,
                          high: float = 0.20) -> float:
        """Fraction of overwrites changing between ``low`` and ``high``
        of the block — the paper's cited 5–20 % band."""
        if not self.change_fractions:
            return 0.0
        return sum(1 for f in self.change_fractions if low <= f <= high) \
            / len(self.change_fractions)

    def summary(self) -> str:
        return (f"{self.n_overwrites} overwrites: mean change "
                f"{self.mean_change_fraction():.1%} of the block, "
                f"{self.within_paper_band():.1%} inside the paper's "
                f"5-20% band")


def analyze_writes(initial: np.ndarray,
                   requests: Iterable[IORequest]) -> WriteLocality:
    """Replay a stream's writes and measure per-overwrite change.

    Maintains its own shadow, so any request iterable works — a live
    generator or a loaded trace.
    """
    shadow = initial.copy()
    fractions: List[float] = []
    for request in requests:
        if not request.is_write:
            continue
        for offset, block in enumerate(request.payload):
            lba = request.lba + offset
            changed = int((shadow[lba] != block).sum())
            fractions.append(changed / BLOCK_SIZE)
            shadow[lba] = block
    return WriteLocality(n_overwrites=len(fractions),
                         change_fractions=fractions)
