"""Phase-aligned series diff.

A whole-run mean smears a mid-run workload shift (a write burst, a
cold-to-warm transition, a compaction storm) over everything around
it; two runs can then look uniformly different when only one phase
moved.  This module segments each run's windowed
:class:`~repro.sim.metrics.SeriesStore` into workload phases via
change-point detection on the :func:`~repro.sim.metrics.
window_fingerprint` vector (read/write mix, delta-hit ratio, seek
locality — the ReCA-style characterization), aligns the phase
sequences of the two runs, and diffs latency/throughput *per aligned
phase* — so the report can say "phase 2 (write-heavy) got slower;
phases 1 and 3 are unchanged".

Everything is deterministic: plain arithmetic over stored windows, no
randomness, stable tie-breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.explain.views import RunView
from repro.sim.metrics import (FINGERPRINT_DIMENSIONS, SeriesStore,
                               window_fingerprint)

#: Mean absolute per-dimension fingerprint distance that opens a new
#: phase (fingerprint components live in [0, 1], so 0.15 means the mix
#: moved by fifteen points on average).
CHANGE_THRESHOLD = 0.15

#: Windows a phase must span before a change-point may close it —
#: absorbs single-window blips without smoothing real transitions.
MIN_PHASE_WINDOWS = 3

#: Per-phase alignment: fingerprint distance above which two phases
#: are considered different workloads (aligning them would compare
#: apples to oranges; a gap is cheaper).
GAP_PENALTY = 0.30


def fingerprint_distance(a: Tuple[float, ...],
                         b: Tuple[float, ...]) -> float:
    """Mean absolute per-dimension distance of two fingerprints.

    A dimension inactive (-1.0) on both sides contributes zero; active
    on exactly one side contributes the maximum (1.0) — traffic
    appearing on a device *is* a workload change.
    """
    total = 0.0
    for va, vb in zip(a, b):
        if va < 0.0 and vb < 0.0:
            continue
        if va < 0.0 or vb < 0.0:
            total += 1.0
        else:
            total += abs(va - vb)
    return total / len(a) if a else 0.0


@dataclass
class Phase:
    """One contiguous run segment with a stable workload fingerprint."""

    index: int
    start_window: int
    #: Exclusive end, so ``range(start_window, end_window)``.
    end_window: int
    fingerprint: Tuple[float, ...] = ()

    @property
    def n_windows(self) -> int:
        return self.end_window - self.start_window

    def describe(self) -> str:
        parts = []
        for name, value in zip(FINGERPRINT_DIMENSIONS,
                               self.fingerprint):
            parts.append(f"{name}={value:.2f}" if value >= 0.0
                         else f"{name}=-")
        return (f"phase {self.index} "
                f"[windows {self.start_window}-{self.end_window - 1}]: "
                + " ".join(parts))


def _segment_mean(store: SeriesStore, start: int,
                  end: int) -> Tuple[float, ...]:
    """Mean fingerprint over ``[start, end)``, per active dimension."""
    sums = [0.0] * len(FINGERPRINT_DIMENSIONS)
    counts = [0] * len(FINGERPRINT_DIMENSIONS)
    for index in range(start, end):
        for dim, value in enumerate(window_fingerprint(store, index)):
            if value >= 0.0:
                sums[dim] += value
                counts[dim] += 1
    return tuple(sums[dim] / counts[dim] if counts[dim] else -1.0
                 for dim in range(len(FINGERPRINT_DIMENSIONS)))


def segment_phases(store: SeriesStore,
                   threshold: float = CHANGE_THRESHOLD,
                   min_windows: int = MIN_PHASE_WINDOWS
                   ) -> List[Phase]:
    """Split the stored windows into workload phases.

    Online change-point detection: each window's fingerprint is
    compared against the running mean of the open segment; a distance
    above ``threshold`` — once the segment holds ``min_windows``
    windows — closes it.  Deterministic by construction.
    """
    n = len(store.windows)
    if n == 0:
        return []
    phases: List[Phase] = []
    start = 0
    for index in range(1, n):
        if index - start < min_windows:
            continue
        mean = _segment_mean(store, start, index)
        if fingerprint_distance(
                window_fingerprint(store, index), mean) > threshold:
            phases.append(Phase(index=len(phases), start_window=start,
                                end_window=index))
            start = index
    phases.append(Phase(index=len(phases), start_window=start,
                        end_window=n))
    for phase in phases:
        phase.fingerprint = _segment_mean(store, phase.start_window,
                                          phase.end_window)
    return phases


def align_phases(phases_a: List[Phase], phases_b: List[Phase],
                 gap_penalty: float = GAP_PENALTY
                 ) -> List[Tuple[Optional[int], Optional[int]]]:
    """Order-preserving alignment of two phase sequences.

    Needleman-Wunsch over fingerprint distance: matching two phases
    costs their distance, skipping a phase costs ``gap_penalty`` — so
    a phase present in only one run (a compaction storm that did not
    recur) aligns against a gap instead of distorting its neighbours.
    Returns ``(index_a or None, index_b or None)`` pairs in order.
    """
    na, nb = len(phases_a), len(phases_b)
    # cost[i][j]: best cost aligning the first i of a with first j of b.
    cost = [[0.0] * (nb + 1) for _ in range(na + 1)]
    for i in range(1, na + 1):
        cost[i][0] = i * gap_penalty
    for j in range(1, nb + 1):
        cost[0][j] = j * gap_penalty
    for i in range(1, na + 1):
        for j in range(1, nb + 1):
            match = cost[i - 1][j - 1] + fingerprint_distance(
                phases_a[i - 1].fingerprint,
                phases_b[j - 1].fingerprint)
            cost[i][j] = min(match,
                             cost[i - 1][j] + gap_penalty,
                             cost[i][j - 1] + gap_penalty)
    pairs: List[Tuple[Optional[int], Optional[int]]] = []
    i, j = na, nb
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            match = cost[i - 1][j - 1] + fingerprint_distance(
                phases_a[i - 1].fingerprint,
                phases_b[j - 1].fingerprint)
            if abs(cost[i][j] - match) < 1e-12:
                pairs.append((i - 1, j - 1))
                i, j = i - 1, j - 1
                continue
        if i > 0 and abs(cost[i][j]
                         - (cost[i - 1][j] + gap_penalty)) < 1e-12:
            pairs.append((i - 1, None))
            i -= 1
            continue
        pairs.append((None, j - 1))
        j -= 1
    pairs.reverse()
    return pairs


# ---------------------------------------------------------------------------
# Per-phase metric diff
# ---------------------------------------------------------------------------


def _phase_stats(store: SeriesStore, phase: Phase
                 ) -> Tuple[float, Optional[float]]:
    """``(requests, mean read latency us)`` over the phase's windows."""
    requests = 0.0
    lat_sum = 0.0
    lat_count = 0.0
    for index in range(phase.start_window, phase.end_window):
        requests += store.window_delta(index, "requests_read_total")
        requests += store.window_delta(index, "requests_write_total")
        count = store.window_delta(index, "read_latency_us_count")
        if count > 0:
            lat_sum += store.window_delta(index, "read_latency_us_sum")
            lat_count += count
    mean = lat_sum / lat_count if lat_count > 0 else None
    return requests, mean


@dataclass(frozen=True)
class PhasePair:
    """Two aligned phases (or one phase against a gap), diffed."""

    phase_a: Optional[Phase]
    phase_b: Optional[Phase]
    distance: Optional[float]
    a_requests: float = 0.0
    b_requests: float = 0.0
    a_read_mean_us: Optional[float] = None
    b_read_mean_us: Optional[float] = None

    @property
    def shifted(self) -> bool:
        """Did the workload mix itself change between the aligned
        phases (as opposed to the same mix running slower)?"""
        return self.distance is not None \
            and self.distance > CHANGE_THRESHOLD

    def render(self) -> str:
        if self.phase_a is None:
            return (f"  (no counterpart) <- {self.phase_b.describe()} "
                    f"[only in b]")
        if self.phase_b is None:
            return (f"  {self.phase_a.describe()} -> (no counterpart) "
                    f"[only in a]")
        lat = ""
        if self.a_read_mean_us is not None \
                and self.b_read_mean_us is not None:
            lat = (f"  read mean {self.a_read_mean_us:.1f} -> "
                   f"{self.b_read_mean_us:.1f} us")
        return (f"  {self.phase_a.describe()} <-> "
                f"{self.phase_b.describe()} "
                f"(distance {self.distance:.3f}){lat}")


@dataclass
class PhaseReport:
    """The phase structure of both runs and their aligned diff."""

    phases_a: List[Phase]
    phases_b: List[Phase]
    pairs: List[PhasePair] = field(default_factory=list)

    @property
    def structure_changed(self) -> bool:
        """More/fewer phases, an unmatched phase, or a shifted mix."""
        if len(self.phases_a) != len(self.phases_b):
            return True
        return any(p.phase_a is None or p.phase_b is None or p.shifted
                   for p in self.pairs)

    def render(self) -> str:
        lines = [f"phases: {len(self.phases_a)} in a, "
                 f"{len(self.phases_b)} in b"
                 + (" (structure changed)" if self.structure_changed
                    else " (aligned)")]
        lines.extend(pair.render() for pair in self.pairs)
        return "\n".join(lines)


def diff_phases(view_a: RunView,
                view_b: RunView) -> Optional[PhaseReport]:
    """Segment, align and diff both runs' series; None unless both
    views carry a windowed SeriesStore (live monitored runs only)."""
    if view_a.series is None or view_b.series is None:
        return None
    phases_a = segment_phases(view_a.series)
    phases_b = segment_phases(view_b.series)
    pairs: List[PhasePair] = []
    for ia, ib in align_phases(phases_a, phases_b):
        pa = phases_a[ia] if ia is not None else None
        pb = phases_b[ib] if ib is not None else None
        a_req = a_lat = b_req = b_lat = None
        if pa is not None:
            a_req, a_lat = _phase_stats(view_a.series, pa)
        if pb is not None:
            b_req, b_lat = _phase_stats(view_b.series, pb)
        pairs.append(PhasePair(
            phase_a=pa, phase_b=pb,
            distance=fingerprint_distance(pa.fingerprint,
                                          pb.fingerprint)
            if pa is not None and pb is not None else None,
            a_requests=a_req or 0.0, b_requests=b_req or 0.0,
            a_read_mean_us=a_lat, b_read_mean_us=b_lat))
    return PhaseReport(phases_a=phases_a, phases_b=phases_b,
                       pairs=pairs)
