"""Queueing diff: per-station deltas and bottleneck migration.

Only ``engine="event"`` runs carry a
:class:`~repro.sim.engine.QueueingSummary`, so this component applies
to live result pairs (and degrades to None elsewhere).  The headline
finding is *bottleneck migration* — the paper's saturation analysis is
about which device the queue builds at, and "bottleneck moved
hdd -> ssd" is a root cause in itself: it says the workload stopped
being seek-bound and the SSD's service rate now gates throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.explain.views import RunView

#: Utilisation movement below this is idle-path noise, not a finding.
UTILIZATION_TOLERANCE = 0.05


@dataclass(frozen=True)
class StationDelta:
    """One device station compared across two runs."""

    name: str
    a_utilization: Optional[float]
    b_utilization: Optional[float]
    a_mean_depth: Optional[float]
    b_mean_depth: Optional[float]

    @property
    def delta_utilization(self) -> Optional[float]:
        if self.a_utilization is None or self.b_utilization is None:
            return None
        return self.b_utilization - self.a_utilization

    @property
    def significant(self) -> bool:
        delta = self.delta_utilization
        return delta is not None and abs(delta) > UTILIZATION_TOLERANCE

    def render(self) -> str:
        def pct(value):
            return "-" if value is None else f"{value:6.1%}"

        def depth(value):
            return "-" if value is None else f"{value:.2f}"

        return (f"  {self.name:<8} util {pct(self.a_utilization)} -> "
                f"{pct(self.b_utilization)}   depth "
                f"{depth(self.a_mean_depth)} -> "
                f"{depth(self.b_mean_depth)}")


@dataclass
class QueueingDiff:
    """Station deltas plus the bottleneck-migration verdict."""

    stations: List[StationDelta]
    bottleneck_a: Optional[str]
    bottleneck_b: Optional[str]
    a_wait_mean_us: float
    b_wait_mean_us: float
    a_wait_p99_us: float
    b_wait_p99_us: float

    @property
    def bottleneck_moved(self) -> bool:
        return self.bottleneck_a != self.bottleneck_b

    @property
    def significant(self) -> bool:
        return self.bottleneck_moved or any(s.significant
                                            for s in self.stations)

    def render(self) -> str:
        if self.bottleneck_moved:
            head = (f"queueing: bottleneck moved "
                    f"{self.bottleneck_a or 'none'} -> "
                    f"{self.bottleneck_b or 'none'}")
        else:
            head = (f"queueing: bottleneck unchanged "
                    f"({self.bottleneck_a or 'none'})")
        lines = [head,
                 f"  wait mean {self.a_wait_mean_us:.1f} -> "
                 f"{self.b_wait_mean_us:.1f} us, p99 "
                 f"{self.a_wait_p99_us:.1f} -> "
                 f"{self.b_wait_p99_us:.1f} us"]
        lines.extend(s.render() for s in self.stations)
        return "\n".join(lines)


def diff_queueing(view_a: RunView,
                  view_b: RunView) -> Optional[QueueingDiff]:
    """Compare both runs' queueing summaries; None unless both views
    carry one (live ``engine="event"`` result pairs only)."""
    qa, qb = view_a.queueing, view_b.queueing
    if qa is None or qb is None:
        return None
    stations: List[StationDelta] = []
    for name in sorted(set(qa.stations) | set(qb.stations)):
        sa = qa.stations.get(name)
        sb = qb.stations.get(name)
        stations.append(StationDelta(
            name=name,
            a_utilization=sa.utilization if sa else None,
            b_utilization=sb.utilization if sb else None,
            a_mean_depth=sa.mean_depth if sa else None,
            b_mean_depth=sb.mean_depth if sb else None))
    return QueueingDiff(
        stations=stations,
        bottleneck_a=qa.bottleneck, bottleneck_b=qb.bottleneck,
        a_wait_mean_us=qa.wait_mean_us, b_wait_mean_us=qb.wait_mean_us,
        a_wait_p99_us=qa.wait_p99_us, b_wait_p99_us=qb.wait_p99_us)
