"""Suspect ranking: from "what moved" to "what probably caused it".

Combines provenance deltas (spec, seed, config overrides, git state)
with the significant metric/attribution/phase/queueing findings into a
ranked hypothesis list.  Scores are fixed per cause kind — this is a
deterministic triage order encoding how conclusive each kind of
evidence is, not a fitted probability: an explicit config override
outranks a tree change outranks a dirty tree outranks a reseed, and
purely behavioural shifts (same recipe, same tree, numbers moved
anyway) rank last because they point at a determinism bug rather than
a cause the ledger recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.explain.attribution import (AttributionDelta,
                                                significant_attribution)
from repro.analysis.explain.phases import PhaseReport
from repro.analysis.explain.queueing import QueueingDiff
from repro.analysis.explain.scalars import (ScalarDelta,
                                            significant_scalars)
from repro.analysis.explain.views import RunView

#: Fixed score per cause kind (the triage order; doc-parity listed in
#: docs/OBSERVABILITY.md).
SUSPECT_SCORES = {
    "incomparable": 1.0,
    "config_override": 0.95,
    "code_change": 0.8,
    "dirty_tree": 0.6,
    "bottleneck_migration": 0.55,
    "seed_change": 0.5,
    "phase_shift": 0.45,
    "behavioural_shift": 0.4,
}

#: Evidence lines kept per suspect (the heaviest movers).
MAX_EVIDENCE = 5


@dataclass(frozen=True)
class Suspect:
    """One ranked root-cause hypothesis."""

    cause: str
    score: float
    summary: str
    evidence: List[str] = field(default_factory=list)

    def render(self, rank: int) -> str:
        lines = [f"{rank}. [{self.score:.2f}] {self.summary}"]
        lines.extend(f"     - {line}" for line in self.evidence)
        return "\n".join(lines)


def _metric_evidence(sig_scalars: List[ScalarDelta],
                     sig_attr: List[AttributionDelta]) -> List[str]:
    """The heaviest significant movers, metric lines first.

    When attribution rows moved too, up to two evidence slots are
    reserved for them — the (device, phase) rows are what localise a
    scalar regression, so they must survive even when many scalars
    moved.
    """
    reserved = min(len(sig_attr), 2)
    evidence = [d.render().strip()
                for d in sig_scalars[:MAX_EVIDENCE - reserved]]
    room = MAX_EVIDENCE - len(evidence)
    evidence.extend(d.render().strip() for d in sig_attr[:room])
    return evidence


def rank_suspects(view_a: RunView, view_b: RunView,
                  scalar_deltas: List[ScalarDelta],
                  attribution_deltas: List[AttributionDelta],
                  phase_report: Optional[PhaseReport] = None,
                  queueing_diff: Optional[QueueingDiff] = None
                  ) -> List[Suspect]:
    """The ranked hypothesis list, highest score first.

    With no significant metric or attribution movement, provenance
    differences alone are *not* suspects (a reseed that changed
    nothing needs no explanation) — the report then says "no
    significant deltas".
    """
    sig_scalars = significant_scalars(scalar_deltas)
    sig_attr = significant_attribution(attribution_deltas)
    moved = bool(sig_scalars or sig_attr)
    sa, sb = view_a.spec, view_b.spec
    suspects: List[Suspect] = []

    mismatched = [key for key in ("workload", "system", "engine")
                  if sa.get(key) != sb.get(key)]
    if mismatched:
        suspects.append(Suspect(
            cause="incomparable", score=SUSPECT_SCORES["incomparable"],
            summary=("runs are not comparable: "
                     + ", ".join(f"{key} {sa.get(key)!r} vs "
                                 f"{sb.get(key)!r}"
                                 for key in mismatched)),
            evidence=["every metric delta below reflects the recipe "
                      "difference, not a regression"]))

    if not moved:
        return suspects

    overrides_a = sa.get("config_overrides")
    overrides_b = sb.get("config_overrides")
    if overrides_a != overrides_b:
        suspects.append(Suspect(
            cause="config_override",
            score=SUSPECT_SCORES["config_override"],
            summary=(f"config overrides differ: {overrides_a!r} vs "
                     f"{overrides_b!r}"),
            evidence=_metric_evidence(sig_scalars, sig_attr)))

    pa, pb = view_a.provenance, view_b.provenance
    sha_a, sha_b = pa.get("git_sha"), pb.get("git_sha")
    if (sha_a or sha_b) and sha_a != sha_b:
        suspects.append(Suspect(
            cause="code_change", score=SUSPECT_SCORES["code_change"],
            summary=(f"trees differ: {(sha_a or 'unknown')[:10]} vs "
                     f"{(sha_b or 'unknown')[:10]}"),
            evidence=_metric_evidence(sig_scalars, sig_attr)))
    if pa.get("git_dirty") or pb.get("git_dirty"):
        which = "both runs" if pa.get("git_dirty") \
            and pb.get("git_dirty") else \
            ("run a" if pa.get("git_dirty") else "run b")
        suspects.append(Suspect(
            cause="dirty_tree", score=SUSPECT_SCORES["dirty_tree"],
            summary=f"{which} used a dirty working tree — "
                    f"uncommitted edits may explain the movement",
            evidence=_metric_evidence(sig_scalars, sig_attr)))

    if queueing_diff is not None and queueing_diff.bottleneck_moved:
        suspects.append(Suspect(
            cause="bottleneck_migration",
            score=SUSPECT_SCORES["bottleneck_migration"],
            summary=(f"bottleneck moved "
                     f"{queueing_diff.bottleneck_a or 'none'} -> "
                     f"{queueing_diff.bottleneck_b or 'none'}"),
            evidence=[s.render().strip()
                      for s in queueing_diff.stations
                      if s.significant][:MAX_EVIDENCE]))

    if sa.get("seed") != sb.get("seed"):
        suspects.append(Suspect(
            cause="seed_change", score=SUSPECT_SCORES["seed_change"],
            summary=(f"seed differs ({sa.get('seed')} vs "
                     f"{sb.get('seed')}): deltas beyond the noise "
                     f"tolerance under a reseed point at "
                     f"seed-sensitive behaviour"),
            evidence=_metric_evidence(sig_scalars, sig_attr)))

    if phase_report is not None and phase_report.structure_changed:
        suspects.append(Suspect(
            cause="phase_shift", score=SUSPECT_SCORES["phase_shift"],
            summary=(f"workload phase structure changed "
                     f"({len(phase_report.phases_a)} -> "
                     f"{len(phase_report.phases_b)} phases)"),
            evidence=[pair.render().strip()
                      for pair in phase_report.pairs
                      if pair.phase_a is None or pair.phase_b is None
                      or pair.shifted][:MAX_EVIDENCE]))

    if not suspects:
        suspects.append(Suspect(
            cause="behavioural_shift",
            score=SUSPECT_SCORES["behavioural_shift"],
            summary="same recipe, seed and tree, yet metrics moved "
                    "beyond tolerance — a behavioural shift (or a "
                    "determinism bug worth chasing)",
            evidence=_metric_evidence(sig_scalars, sig_attr)))

    suspects.sort(key=lambda s: (-s.score, s.cause))
    return suspects
