"""Attribution diff: which ``(device, phase)`` pairs moved, and the
flame-diff export that makes the movement visual.

Rows come from :meth:`repro.sim.profile.AttributionTable.to_rows` (live
and bench views carry the full table; ledger views the heaviest
:data:`repro.ledger.TOP_ATTRIBUTION_ROWS` per class).  Significance is
noise-aware, reusing the bench harness's tolerance shape: a row's mean
contribution must move by more than ``max(rel_tol x |baseline|,
NOISE_Z x sem)`` where ``rel_tol`` is the METRIC_POLICY tolerance of
the class's mean-latency metric and ``sem`` the larger recorded
standard error of the two runs — so an interleaving-level wobble never
becomes "evidence".

The flame-diff exporter writes ``op;device;phase count_a count_b``
lines — the two-column folded format ``difffolded.pl`` produces and
``flamegraph.pl --negate`` (and speedscope's left-heavy diff view)
consume — with counts in integer microseconds of *total* attributed
time, matching :func:`repro.sim.profile.export_folded`'s unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from repro.analysis.explain.views import RunView

#: Rows below this mean contribution (µs) never count as significant on
#: their own — they round to zero in the flame export anyway.
EPSILON_US = 1.0

#: METRIC_POLICY metric whose relative tolerance sizes a class's row
#: tolerance, per operation class.
_CLASS_METRIC = {"read": "read_mean_us", "write": "write_mean_us"}


@dataclass(frozen=True)
class AttributionDelta:
    """One ``(op, device, phase)`` row compared across two runs."""

    op: str
    device: str
    phase: str
    #: Mean contribution per request of the class (µs); 0.0 when the
    #: run has no such row.
    a_mean_us: float
    b_mean_us: float
    #: Total attributed time (µs) on each side — the flame-diff counts.
    a_total_us: float
    b_total_us: float
    tolerance_us: float
    #: Present in only one run's rows (always notable when above
    #: :data:`EPSILON_US`).
    only_in: str = ""  # "" | "a" | "b"

    @property
    def delta_us(self) -> float:
        return self.b_mean_us - self.a_mean_us

    @property
    def significant(self) -> bool:
        if max(abs(self.a_mean_us), abs(self.b_mean_us)) < EPSILON_US:
            return False
        if self.only_in:
            return True
        return abs(self.delta_us) > self.tolerance_us

    def render(self) -> str:
        note = f"  (only in {self.only_in})" if self.only_in else ""
        return (f"  {self.op:<8} {self.device:<8} {self.phase:<14} "
                f"{self.a_mean_us:>10.2f} -> {self.b_mean_us:>10.2f} us"
                f"  ({self.delta_us:+10.2f}, "
                f"tol {self.tolerance_us:.2f}){note}")


def _row_tolerance_us(op: str, a_mean_us: float,
                      view_a: RunView, view_b: RunView) -> float:
    """``max(rel_tol x |baseline mean|, NOISE_Z x pooled sem)``."""
    from repro.experiments.bench import METRIC_POLICY, NOISE_Z
    from repro.ledger import DEFAULT_REL_TOL

    policy = METRIC_POLICY.get(_CLASS_METRIC.get(op, ""))
    rel_tol = policy[1] if policy is not None else DEFAULT_REL_TOL
    tol = rel_tol * abs(a_mean_us)
    sems = [sem for sem in (view_a.noise_sem_us(op),
                            view_b.noise_sem_us(op)) if sem is not None]
    if sems:
        tol = max(tol, NOISE_Z * max(sems))
    return max(tol, EPSILON_US)


def _indexed(view: RunView) -> Dict[Tuple[str, str, str],
                                    Dict[str, object]]:
    return {(str(row["op"]), str(row["device"]), str(row["phase"])): row
            for row in view.attribution}


def diff_attribution(view_a: RunView,
                     view_b: RunView) -> List[AttributionDelta]:
    """Every row either run carries, compared; sorted by absolute mean
    movement (then key, for byte-determinism on ties)."""
    rows_a = _indexed(view_a)
    rows_b = _indexed(view_b)
    deltas: List[AttributionDelta] = []
    for key in sorted(set(rows_a) | set(rows_b)):
        op, device, phase = key
        ra, rb = rows_a.get(key), rows_b.get(key)
        a_mean = float(ra["mean_us"]) if ra else 0.0
        b_mean = float(rb["mean_us"]) if rb else 0.0
        only_in = "" if ra and rb else ("a" if ra else "b")
        deltas.append(AttributionDelta(
            op=op, device=device, phase=phase,
            a_mean_us=a_mean, b_mean_us=b_mean,
            a_total_us=float(ra["total_us"]) if ra else 0.0,
            b_total_us=float(rb["total_us"]) if rb else 0.0,
            tolerance_us=_row_tolerance_us(op, a_mean, view_a, view_b),
            only_in=only_in))
    deltas.sort(key=lambda d: (-abs(d.delta_us), d.op, d.device,
                               d.phase))
    return deltas


def significant_attribution(deltas: Iterable[AttributionDelta]
                            ) -> List[AttributionDelta]:
    return [d for d in deltas if d.significant]


# ---------------------------------------------------------------------------
# Flame diff
# ---------------------------------------------------------------------------


def flame_diff_stacks(view_a: RunView, view_b: RunView
                      ) -> Dict[str, Tuple[int, int]]:
    """``{stack: (a_us, b_us)}`` over both runs' attribution rows.

    Stacks are ``op;device;phase``, counts integer microseconds of
    total attributed time; stacks rounding to zero on both sides are
    dropped, mirroring :func:`repro.sim.profile.export_folded`.
    """
    stacks: Dict[str, Tuple[int, int]] = {}
    for delta in diff_attribution(view_a, view_b):
        a_us = round(delta.a_total_us)
        b_us = round(delta.b_total_us)
        if a_us < 1 and b_us < 1:
            continue
        stacks[f"{delta.op};{delta.device};{delta.phase}"] = (a_us,
                                                              b_us)
    return stacks


def export_flame_diff(view_a: RunView, view_b: RunView,
                      destination: Union[str, TextIO]) -> int:
    """Write ``stack count_a count_b`` lines, sorted by stack.

    The output feeds ``flamegraph.pl --negate`` directly (blue where
    run B spends less, red where it spends more); returns the number
    of lines written.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return export_flame_diff(view_a, view_b, handle)
    stacks = flame_diff_stacks(view_a, view_b)
    for key in sorted(stacks):
        a_us, b_us = stacks[key]
        destination.write(f"{key} {a_us} {b_us}\n")
    return len(stacks)


def parse_flame_diff(source: Union[str, TextIO, Iterable[str]]
                     ) -> Dict[str, Tuple[int, int]]:
    """Inverse of :func:`export_flame_diff` (the round-trip the
    acceptance test asserts).  Accepts a path, handle, or lines."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_flame_diff(handle)
    stacks: Dict[str, Tuple[int, int]] = {}
    for line in source:
        line = line.strip()
        if not line:
            continue
        stack, a_text, b_text = line.rsplit(" ", 2)
        stacks[stack] = (int(a_text), int(b_text))
    return stacks
