"""The explain engine's front door: run it, render it, serialise it.

:func:`explain` takes two :class:`~repro.analysis.explain.views.
RunView`\\ s and produces an :class:`ExplainReport` bundling the four
diagnosis components — scalar diff, attribution diff, phase-aligned
series diff, queueing diff — plus the ranked suspect list.  The
convenience constructors (:func:`explain_ledger_rows`,
:func:`explain_bench_cases`, :func:`explain_results`) adapt each input
shape; :meth:`ExplainReport.render` is byte-deterministic for fixed
inputs and :meth:`ExplainReport.to_json` is the machine form CI and
tooling consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.explain.attribution import (
    AttributionDelta, diff_attribution, significant_attribution)
from repro.analysis.explain.phases import PhaseReport, diff_phases
from repro.analysis.explain.queueing import QueueingDiff, diff_queueing
from repro.analysis.explain.scalars import (ScalarDelta, diff_scalars,
                                            significant_scalars)
from repro.analysis.explain.suspects import Suspect, rank_suspects
from repro.analysis.explain.views import (RunView, view_from_bench_case,
                                          view_from_ledger_row,
                                          view_from_result)

#: Rows shown per section in the rendered report (the full lists live
#: in the JSON form).
MAX_RENDERED_ROWS = 12


@dataclass
class ExplainReport:
    """One differential diagnosis of two runs."""

    view_a: RunView
    view_b: RunView
    scalar_deltas: List[ScalarDelta] = field(default_factory=list)
    attribution_deltas: List[AttributionDelta] = \
        field(default_factory=list)
    phase_report: Optional[PhaseReport] = None
    queueing_diff: Optional[QueueingDiff] = None
    suspects: List[Suspect] = field(default_factory=list)

    @property
    def significant(self) -> bool:
        """Did anything move beyond the noise-aware tolerances?"""
        return bool(significant_scalars(self.scalar_deltas)
                    or significant_attribution(self.attribution_deltas)
                    or (self.queueing_diff is not None
                        and self.queueing_diff.significant))

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The deterministic human-readable report."""
        sig_scalars = significant_scalars(self.scalar_deltas)
        sig_attr = significant_attribution(self.attribution_deltas)
        lines = [f"explain: {self.view_a.label} ({self.view_a.source})"
                 f" vs {self.view_b.label} ({self.view_b.source})",
                 ""]
        if not self.significant:
            lines.append("no significant deltas: every metric and "
                         "attribution row is within its noise-aware "
                         "tolerance")
            lines.append(f"  ({len(self.scalar_deltas)} metric(s) and "
                         f"{len(self.attribution_deltas)} attribution "
                         f"row(s) compared)")
            return "\n".join(lines)

        lines.append(f"suspects ({len(self.suspects)}):")
        for rank, suspect in enumerate(self.suspects, start=1):
            lines.append(suspect.render(rank))
        lines.append("")

        lines.append(f"significant metrics ({len(sig_scalars)} of "
                     f"{len(self.scalar_deltas)}):")
        lines.extend(d.render()
                     for d in sig_scalars[:MAX_RENDERED_ROWS])
        if len(sig_scalars) > MAX_RENDERED_ROWS:
            lines.append(f"  ... {len(sig_scalars) - MAX_RENDERED_ROWS}"
                         f" more (see --json)")
        lines.append("")

        lines.append(f"significant attribution rows ({len(sig_attr)} "
                     f"of {len(self.attribution_deltas)}):")
        if sig_attr:
            lines.extend(d.render()
                         for d in sig_attr[:MAX_RENDERED_ROWS])
            if len(sig_attr) > MAX_RENDERED_ROWS:
                lines.append(f"  ... {len(sig_attr) - MAX_RENDERED_ROWS}"
                             f" more (see --json)")
        else:
            lines.append("  (none — the movement is not "
                         "attribution-visible)")

        if self.queueing_diff is not None:
            lines.append("")
            lines.append(self.queueing_diff.render())
        if self.phase_report is not None:
            lines.append("")
            lines.append(self.phase_report.render())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready document (sorted keys when dumped; stable)."""
        doc: Dict[str, object] = {
            "a": {"label": self.view_a.label,
                  "source": self.view_a.source},
            "b": {"label": self.view_b.label,
                  "source": self.view_b.source},
            "significant": self.significant,
            "suspects": [
                {"cause": s.cause, "score": s.score,
                 "summary": s.summary, "evidence": list(s.evidence)}
                for s in self.suspects],
            "scalars": [
                {"metric": d.metric, "a": d.a, "b": d.b,
                 "delta": d.delta, "rel": d.rel,
                 "tolerance": d.tolerance, "direction": d.direction,
                 "significant": d.significant,
                 "worsened": d.worsened}
                for d in self.scalar_deltas],
            "attribution": [
                {"op": d.op, "device": d.device, "phase": d.phase,
                 "a_mean_us": d.a_mean_us, "b_mean_us": d.b_mean_us,
                 "delta_us": d.delta_us,
                 "tolerance_us": d.tolerance_us,
                 "only_in": d.only_in, "significant": d.significant}
                for d in self.attribution_deltas],
            "queueing": None,
            "phases": None,
        }
        if self.queueing_diff is not None:
            q = self.queueing_diff
            doc["queueing"] = {
                "bottleneck_a": q.bottleneck_a,
                "bottleneck_b": q.bottleneck_b,
                "bottleneck_moved": q.bottleneck_moved,
                "wait_mean_us": [q.a_wait_mean_us, q.b_wait_mean_us],
                "wait_p99_us": [q.a_wait_p99_us, q.b_wait_p99_us],
                "stations": [
                    {"name": s.name,
                     "a_utilization": s.a_utilization,
                     "b_utilization": s.b_utilization,
                     "a_mean_depth": s.a_mean_depth,
                     "b_mean_depth": s.b_mean_depth,
                     "significant": s.significant}
                    for s in q.stations],
            }
        if self.phase_report is not None:
            p = self.phase_report

            def phase_doc(phase):
                return {"index": phase.index,
                        "start_window": phase.start_window,
                        "end_window": phase.end_window,
                        "fingerprint": list(phase.fingerprint)}

            doc["phases"] = {
                "structure_changed": p.structure_changed,
                "a": [phase_doc(ph) for ph in p.phases_a],
                "b": [phase_doc(ph) for ph in p.phases_b],
                "pairs": [
                    {"a": pair.phase_a.index
                     if pair.phase_a is not None else None,
                     "b": pair.phase_b.index
                     if pair.phase_b is not None else None,
                     "distance": pair.distance,
                     "a_read_mean_us": pair.a_read_mean_us,
                     "b_read_mean_us": pair.b_read_mean_us}
                    for pair in p.pairs],
            }
        return doc

    def render_json(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2)

    def top_suspects(self, n: int = 3) -> List[Suspect]:
        return self.suspects[:n]


def explain(view_a: RunView, view_b: RunView) -> ExplainReport:
    """Run the full differential diagnosis over two normalised views."""
    scalar_deltas = diff_scalars(view_a, view_b)
    attribution_deltas = diff_attribution(view_a, view_b)
    phase_report = diff_phases(view_a, view_b)
    queueing_diff = diff_queueing(view_a, view_b)
    suspects = rank_suspects(view_a, view_b, scalar_deltas,
                             attribution_deltas,
                             phase_report=phase_report,
                             queueing_diff=queueing_diff)
    return ExplainReport(view_a=view_a, view_b=view_b,
                         scalar_deltas=scalar_deltas,
                         attribution_deltas=attribution_deltas,
                         phase_report=phase_report,
                         queueing_diff=queueing_diff,
                         suspects=suspects)


# ---------------------------------------------------------------------------
# Input adapters
# ---------------------------------------------------------------------------


def explain_ledger_rows(row_a, row_b) -> ExplainReport:
    """Diagnose two :class:`repro.ledger.LedgerRow` snapshots."""
    return explain(view_from_ledger_row(row_a),
                   view_from_ledger_row(row_b))


def explain_bench_cases(case_a: Dict[str, object],
                        case_b: Dict[str, object],
                        label_a: Optional[str] = None,
                        label_b: Optional[str] = None) -> ExplainReport:
    """Diagnose two ``BENCH_<n>.json`` case records (baseline first)."""
    return explain(view_from_bench_case(case_a, label=label_a),
                   view_from_bench_case(case_b, label=label_b))


def explain_results(result_a, result_b,
                    label_a: str = "a", label_b: str = "b",
                    spec_a: Optional[Dict[str, object]] = None,
                    spec_b: Optional[Dict[str, object]] = None
                    ) -> ExplainReport:
    """Diagnose two live :class:`~repro.experiments.runner.RunResult`
    objects — the only input shape carrying series and queueing state,
    so the only one producing phase and queueing sections."""
    return explain(view_from_result(result_a, label_a, spec=spec_a),
                   view_from_result(result_b, label_b, spec=spec_b))
