"""Scalar metric diff with METRIC_POLICY noise-aware significance.

The same tolerance shape the bench gate uses (``max(rel_tol x
|baseline|, NOISE_Z x sem)``) applied to every scalar and counter the
two views share — so ``repro explain`` and ``repro bench --compare``
never disagree about whether a number "really" moved.  Metrics outside
:data:`~repro.experiments.bench.METRIC_POLICY` fall back to the
ledger's :data:`~repro.ledger.DEFAULT_REL_TOL` relative floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.explain.views import RunView


@dataclass(frozen=True)
class ScalarDelta:
    """One scalar/counter metric compared across two runs."""

    metric: str
    a: Optional[float]
    b: Optional[float]
    tolerance: float
    #: The *good* direction from METRIC_POLICY, or "" when unknown.
    direction: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def rel(self) -> Optional[float]:
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    @property
    def significant(self) -> bool:
        delta = self.delta
        return delta is not None and abs(delta) > self.tolerance

    @property
    def worsened(self) -> Optional[bool]:
        """Moved in the bad direction? None without a known policy."""
        delta = self.delta
        if delta is None or not self.direction:
            return None
        return delta < 0 if self.direction == "higher" else delta > 0

    def render(self) -> str:
        def fmt(value):
            return "-" if value is None else f"{value:>12.4f}"

        rel = self.rel
        rel_text = "" if rel is None else f"  {rel:+8.2%}"
        verdict = ""
        if self.worsened is True:
            verdict = "  WORSE"
        elif self.worsened is False:
            verdict = "  better"
        return (f"  {self.metric:<28} {fmt(self.a)} -> {fmt(self.b)}"
                f"{rel_text}  (tol {self.tolerance:.4f}){verdict}")


def _scalar_tolerance(metric: str, base: Optional[float],
                      view_a: RunView, view_b: RunView) -> float:
    from repro.experiments.bench import METRIC_POLICY, NOISE_Z
    from repro.ledger import DEFAULT_REL_TOL

    policy = METRIC_POLICY.get(metric)
    rel_tol = policy[1] if policy is not None else DEFAULT_REL_TOL
    tol = rel_tol * abs(base or 0.0)
    noise_key = policy[2] if policy is not None else None
    if noise_key:
        sems = [sem for sem in (view_a.noise_sem_us(noise_key),
                                view_b.noise_sem_us(noise_key))
                if sem is not None]
        if sems:
            tol = max(tol, NOISE_Z * max(sems))
    return tol


def _flat(view: RunView) -> Dict[str, float]:
    flat = dict(view.scalars)
    flat.update({f"counters.{name}": value
                 for name, value in view.counters.items()})
    flat["slo.breaches"] = float(view.slo_breaches)
    return flat


def diff_scalars(view_a: RunView,
                 view_b: RunView) -> List[ScalarDelta]:
    """Every metric either view carries, compared; sorted by absolute
    relative movement (missing-on-one-side first, then by name)."""
    from repro.experiments.bench import METRIC_POLICY

    flat_a, flat_b = _flat(view_a), _flat(view_b)
    deltas: List[ScalarDelta] = []
    for metric in sorted(set(flat_a) | set(flat_b)):
        a, b = flat_a.get(metric), flat_b.get(metric)
        policy = METRIC_POLICY.get(metric)
        deltas.append(ScalarDelta(
            metric=metric, a=a, b=b,
            tolerance=_scalar_tolerance(metric, a, view_a, view_b),
            direction=policy[0] if policy is not None else ""))
    deltas.sort(key=lambda d: (
        -(abs(d.rel) if d.rel is not None
          else float("inf") if d.delta is None or d.delta else 0.0),
        d.metric))
    return deltas


def significant_scalars(deltas: Iterable[ScalarDelta]
                        ) -> List[ScalarDelta]:
    return [d for d in deltas if d.significant]
