"""Differential diagnosis of two runs (``repro explain``).

Takes two runs — ledger rows, bench case records, or live results —
and produces a ranked root-cause report: noise-aware scalar and
attribution diffs, a phase-aligned series diff, a queueing diff naming
bottleneck migration, and a suspect ranking built from provenance
deltas.  See docs/OBSERVABILITY.md ("Explaining a delta") and the
"debugging a regression" walkthrough.
"""

from repro.analysis.explain.attribution import (AttributionDelta,
                                                diff_attribution,
                                                export_flame_diff,
                                                flame_diff_stacks,
                                                parse_flame_diff,
                                                significant_attribution)
from repro.analysis.explain.phases import (Phase, PhasePair,
                                           PhaseReport, align_phases,
                                           diff_phases,
                                           fingerprint_distance,
                                           segment_phases)
from repro.analysis.explain.queueing import (QueueingDiff, StationDelta,
                                             diff_queueing)
from repro.analysis.explain.report import (ExplainReport, explain,
                                           explain_bench_cases,
                                           explain_ledger_rows,
                                           explain_results)
from repro.analysis.explain.scalars import (ScalarDelta, diff_scalars,
                                            significant_scalars)
from repro.analysis.explain.suspects import (SUSPECT_SCORES, Suspect,
                                             rank_suspects)
from repro.analysis.explain.views import (RunView, view_from_bench_case,
                                          view_from_ledger_row,
                                          view_from_result)

__all__ = [
    "AttributionDelta", "ExplainReport", "Phase", "PhasePair",
    "PhaseReport", "QueueingDiff", "RunView", "ScalarDelta",
    "StationDelta", "SUSPECT_SCORES", "Suspect", "align_phases",
    "diff_attribution", "diff_phases", "diff_queueing", "diff_scalars",
    "explain", "explain_bench_cases", "explain_ledger_rows",
    "explain_results", "export_flame_diff", "fingerprint_distance",
    "flame_diff_stacks", "parse_flame_diff", "rank_suspects",
    "segment_phases", "significant_attribution", "significant_scalars",
    "view_from_bench_case", "view_from_ledger_row", "view_from_result",
]
