"""Normalised run views: one shape for every comparable artefact.

The explain engine diffs *runs*, but a run reaches it in three forms:
a :class:`repro.ledger.LedgerRow` (curated metric snapshot plus full
provenance), one case record of a ``BENCH_<n>.json`` document (full
attribution table, no provenance beyond the recipe fields), or a live
:class:`repro.experiments.runner.RunResult` pair (everything,
including the windowed :class:`~repro.sim.metrics.SeriesStore` and the
event engine's :class:`~repro.sim.engine.QueueingSummary`).

:class:`RunView` is the common denominator.  Every field is either
populated from the source artefact or ``None``/empty, and each diff
component (:mod:`.attribution`, :mod:`.phases`, :mod:`.queueing`,
:mod:`.suspects`) degrades gracefully when its input is absent — a
ledger-row pair still gets attribution and suspect analysis, a bench
pair adds the full attribution table, and only a live result pair
carries series and queueing state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Scalar keys a live result contributes beyond METRIC_POLICY —
#: mirrors :func:`repro.ledger.snapshot_result` so a live view and the
#: ledger view of the same run diff identically.
EXTRA_SCALARS = ("cpu_utilization", "io_response_ms", "tx_response_ms",
                 "n_measured")


@dataclass
class RunView:
    """One run, normalised for differential diagnosis.

    ``scalars``/``counters`` are the comparable numbers; ``noise`` maps
    a request class to its recorded latency spread (``std_us``, ``n``)
    for the statistical part of significance tolerances;
    ``attribution`` holds JSON-ready ``(op, device, phase)`` rows in
    the :meth:`repro.sim.profile.AttributionTable.to_rows` shape.
    ``spec``/``provenance`` are present for ledger rows (and partially
    for bench cases); ``series``/``queueing`` only for live results.
    """

    label: str
    source: str  # "ledger" | "bench" | "result"
    scalars: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    noise: Dict[str, Dict[str, float]] = field(default_factory=dict)
    attribution: List[Dict[str, object]] = field(default_factory=list)
    spec: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)
    slo_breaches: int = 0
    series: Optional[object] = None      # SeriesStore
    queueing: Optional[object] = None    # QueueingSummary

    def noise_sem_us(self, op: str) -> Optional[float]:
        """Standard error of the class's mean latency, in µs."""
        import math

        entry = self.noise.get(op)
        if not entry:
            return None
        n = max(1.0, float(entry.get("n", 1.0)))
        return float(entry.get("std_us", 0.0)) / math.sqrt(n)


def view_from_ledger_row(row) -> RunView:
    """Adapt one :class:`repro.ledger.LedgerRow`."""
    metrics = row.metrics
    scalars = {name: float(value) for name, value
               in metrics.get("scalars", {}).items()}
    counters = {name: float(value) for name, value
                in metrics.get("counters", {}).items()}
    return RunView(
        label=f"#{row.seq} {row.run_id}",
        source="ledger",
        scalars=scalars,
        counters=counters,
        noise=dict(metrics.get("noise", {}) or {}),
        attribution=list(metrics.get("attribution", []) or []),
        spec=dict(row.spec or {}),
        provenance=dict(row.provenance or {}),
        slo_breaches=int(metrics.get("slo", {}).get("breaches", 0)),
    )


def view_from_bench_case(case: Dict[str, object],
                         label: Optional[str] = None) -> RunView:
    """Adapt one case record of a ``BENCH_<n>.json`` document."""
    spec = {key: case.get(key) for key in
            ("workload", "system", "engine", "seed", "n_requests",
             "scale")}
    return RunView(
        label=label or str(case.get("case")),
        source="bench",
        scalars={name: float(value) for name, value
                 in case.get("metrics", {}).items()},
        counters={},
        noise=dict(case.get("noise", {}) or {}),
        attribution=list(case.get("attribution", []) or []),
        spec=spec,
        provenance={},
    )


def view_from_result(result, label: str,
                     spec: Optional[Dict[str, object]] = None
                     ) -> RunView:
    """Adapt one live :class:`~repro.experiments.runner.RunResult`."""
    from repro.experiments.bench import METRIC_POLICY

    scalars = {name: float(getattr(result, name))
               for name in METRIC_POLICY}
    scalars.update({name: float(getattr(result, name))
                    for name in EXTRA_SCALARS})
    noise: Dict[str, Dict[str, float]] = {}
    rows: List[Dict[str, object]] = []
    table = result.attribution
    if table is not None:
        for op in table.ops:
            stats = table.latency(op)
            noise[op] = {"std_us": stats.std_us, "n": stats.count}
        rows = table.to_rows()
    view_spec = {"workload": result.workload, "system": result.system,
                 "engine": result.engine,
                 "n_requests": result.n_requests}
    if spec:
        view_spec.update(spec)
    return RunView(
        label=label,
        source="result",
        scalars=scalars,
        counters={name: float(value) for name, value
                  in sorted(result.counters.items())},
        noise=noise,
        attribution=rows,
        spec=view_spec,
        provenance={},
        slo_breaches=len(result.slo_breaches),
        series=result.series,
        queueing=result.queueing,
    )
