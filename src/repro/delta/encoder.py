"""Byte-range delta codec.

A delta represents a target block as the list of byte runs in which it
differs from a reference block.  This is the "delta-coding to eliminate
data redundancy" of Section 4.2: the paper reports that typical writes
change only 5–20 % of a block's bits, so a run-based encoding shrinks a
4 KB block to a few hundred bytes.

Encoding walks the XOR mask between target and reference (vectorised with
numpy), extracts maximal runs of differing bytes, and merges runs whose
gap is smaller than the per-run header overhead — merging is never worse
and usually better.

Wire format (used by the HDD log packer and by crash recovery)::

    u16 run_count | run_count x (u16 offset, u16 length) | run payloads

All offsets/lengths fit in u16 because blocks are 4 096 bytes.

This module is the hottest host-time code in the repository (the
``repro critpath``/cProfile attribution puts the codec at roughly a
third of a benchmark run), so :class:`Delta` caches its derived views —
encoded size, wire bytes, and the numpy "patch plan" that
:func:`apply_delta` uses — computed once per immutable instance.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

import numpy as np

from repro.sim.request import BLOCK_SIZE

#: Per-run header bytes in both the in-memory size model and wire format.
RUN_HEADER_BYTES = 4
#: Fixed per-delta header bytes (the run count).
DELTA_HEADER_BYTES = 2
#: Runs closer than this many identical bytes are merged: carrying the gap
#: bytes verbatim costs less than a fresh run header.
MERGE_GAP = RUN_HEADER_BYTES

#: Below this run count :func:`apply_delta` patches with a plain loop;
#: building (and caching) the vectorised patch plan only pays off once a
#: delta carries enough runs to amortise the numpy setup.
_PATCH_PLAN_MIN_RUNS = 3


@dataclass(frozen=True)
class Delta:
    """An immutable delta: byte runs that replace reference content.

    Attributes:
        runs: ``(offset, payload)`` pairs, sorted by offset and
            non-overlapping; ``payload`` is a ``bytes`` object.

    Derived views (``size_bytes``, the serialized wire bytes, the apply
    plan) are cached on first use — safe because instances are frozen.
    """

    runs: Tuple[Tuple[int, bytes], ...]

    @cached_property
    def size_bytes(self) -> int:
        """Encoded size: what the delta costs in RAM segments or log space."""
        return DELTA_HEADER_BYTES + sum(
            RUN_HEADER_BYTES + len(payload) for _, payload in self.runs)

    @property
    def is_identity(self) -> bool:
        """True when target and reference were byte-identical."""
        return not self.runs

    @property
    def changed_bytes(self) -> int:
        return sum(len(payload) for _, payload in self.runs)

    @cached_property
    def _wire(self) -> bytes:
        n = len(self.runs)
        header = struct.pack(
            f"<H{2 * n}H", n,
            *(v for offset, payload in self.runs
              for v in (offset, len(payload))))
        return header + b"".join(payload for _, payload in self.runs)

    @cached_property
    def _patch_plan(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(indices, values)`` arrays patching a reference in one
        fancy assignment; bounds are validated here, once per delta."""
        n = len(self.runs)
        starts = np.fromiter(
            (offset for offset, _ in self.runs), dtype=np.intp, count=n)
        lengths = np.fromiter(
            (len(payload) for _, payload in self.runs),
            dtype=np.intp, count=n)
        ends = starts + lengths
        if n and int(ends.max()) > BLOCK_SIZE:
            worst = int(np.argmax(ends))
            raise ValueError(
                f"delta run [{int(starts[worst])}, {int(ends[worst])}) "
                f"exceeds block size")
        total = int(lengths.sum())
        run_base = np.concatenate(
            (np.zeros(1, dtype=np.intp), np.cumsum(lengths)[:-1]))
        indices = (np.repeat(starts - run_base, lengths)
                   + np.arange(total, dtype=np.intp))
        values = np.frombuffer(
            b"".join(payload for _, payload in self.runs), dtype=np.uint8)
        return indices, values

    def serialize(self) -> bytes:
        """Encode to the wire format used in HDD delta blocks."""
        return self._wire

    @classmethod
    def deserialize(cls, blob: bytes) -> "Delta":
        """Decode from the wire format; raises ``ValueError`` on corruption."""
        if len(blob) < DELTA_HEADER_BYTES:
            raise ValueError("delta blob shorter than its header")
        (run_count,) = struct.unpack_from("<H", blob, 0)
        pos = DELTA_HEADER_BYTES + run_count * RUN_HEADER_BYTES
        if pos > len(blob):
            raise ValueError("truncated delta run header")
        fields = struct.unpack_from(f"<{2 * run_count}H", blob,
                                    DELTA_HEADER_BYTES)
        runs: List[Tuple[int, bytes]] = []
        for i in range(run_count):
            length = fields[2 * i + 1]
            end = pos + length
            if end > len(blob):
                raise ValueError("truncated delta run payload")
            runs.append((fields[2 * i], blob[pos:end]))
            pos = end
        return cls(runs=tuple(runs))


def _diff_run_arrays(target: np.ndarray,
                     reference: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Maximal differing runs as parallel ``(starts, ends)`` arrays."""
    mask = target != reference
    # Transitions of the padded mask give run boundaries.
    padded = np.empty(mask.size + 2, dtype=bool)
    padded[0] = padded[-1] = False
    padded[1:-1] = mask
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return edges[0::2], edges[1::2]


def _diff_runs(target: np.ndarray, reference: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal (start, end) runs where the two arrays differ."""
    starts, ends = _diff_run_arrays(target, reference)
    return list(zip(starts.tolist(), ends.tolist()))


def encode_delta(target: np.ndarray, reference: np.ndarray) -> Delta:
    """Encode ``target`` as a delta against ``reference``.

    Both arguments must be ``uint8`` arrays of :data:`BLOCK_SIZE` bytes.
    The run payloads are materialised as ``bytes`` (copied out of
    ``target``), so the returned delta never aliases the caller's array
    — mutating ``target`` afterwards cannot corrupt the delta.
    """
    if target.nbytes != BLOCK_SIZE or reference.nbytes != BLOCK_SIZE:
        raise ValueError(
            f"delta codec operates on {BLOCK_SIZE}-byte blocks, got "
            f"{target.nbytes} and {reference.nbytes}")
    raw_runs = _diff_runs(target, reference)
    if not raw_runs:
        return Delta(runs=())
    # Merge runs separated by gaps too small to be worth a run header.
    # (Kept as a plain loop: typical deltas carry a few dozen runs, and
    # at that size python beats numpy's per-op overhead — the vectorised
    # form lives in repro.core.batch.encode_delta_batch, where it is
    # amortised over a whole block batch.)
    merged: List[Tuple[int, int]] = [raw_runs[0]]
    changed = raw_runs[0][1] - raw_runs[0][0]
    for start, end in raw_runs[1:]:
        prev_start, prev_end = merged[-1]
        if start - prev_end <= MERGE_GAP:
            merged[-1] = (prev_start, end)
            changed += end - prev_end
        else:
            merged.append((start, end))
            changed += end - start
    # One bulk copy to bytes, then cheap slicing — faster than a
    # per-run ``ndarray.tobytes()`` and byte-identical to it.
    raw = target.tobytes()
    runs = tuple((start, raw[start:end]) for start, end in merged)
    delta = Delta(runs=runs)
    # Preinstall the cached size: it is already known from the merged
    # run bounds, and ``size_bytes`` is read for every encoded delta
    # (the scanner's accept threshold), so skip the lazy genexpr.
    delta.__dict__["size_bytes"] = (
        DELTA_HEADER_BYTES + RUN_HEADER_BYTES * len(runs) + changed)
    return delta


def apply_delta(delta: Delta, reference: np.ndarray) -> np.ndarray:
    """Reconstruct the target block by patching ``reference``.

    Returns a fresh array; the reference is never modified in place (a
    reference block may serve many associate blocks simultaneously), so
    the result never aliases the caller's reference — even when the
    reference is a read-only zero-copy view.
    """
    if reference.nbytes != BLOCK_SIZE:
        raise ValueError(
            f"reference must be {BLOCK_SIZE} bytes, got {reference.nbytes}")
    target = reference.copy()
    runs = delta.runs
    if not runs:
        return target
    if len(runs) < _PATCH_PLAN_MIN_RUNS:
        for offset, payload in runs:
            end = offset + len(payload)
            if end > BLOCK_SIZE:
                raise ValueError(
                    f"delta run [{offset}, {end}) exceeds block size")
            target[offset:end] = np.frombuffer(payload, dtype=np.uint8)
        return target
    indices, values = delta._patch_plan
    target[indices] = values
    return target
