"""64-byte segment allocator for the RAM delta buffer.

Section 4.3 of the paper: "Delta blocks are managed using a linked list of
64-bytes segments."  Deltas have wildly varying sizes (a one-byte change
costs a handful of bytes; a heavy rewrite approaches the 2 KB spill
threshold), so fixed 64-byte segments give cheap allocation with bounded
internal fragmentation.

The pool only does *accounting* — actual delta payloads live in
:class:`~repro.delta.encoder.Delta` objects — but the accounting is what
drives the paper's delta-replacement policy: when the pool is exhausted,
the I-CASH cache must evict a delta-holding virtual block.
"""

from __future__ import annotations

SEGMENT_BYTES = 64


class SegmentPool:
    """Fixed-size segment pool with allocate/free accounting."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < SEGMENT_BYTES:
            raise ValueError(
                f"pool needs at least one segment ({SEGMENT_BYTES} B), "
                f"got {capacity_bytes} B")
        self.capacity_segments = capacity_bytes // SEGMENT_BYTES
        self.used_segments = 0
        #: Highest occupancy ever reached, for sizing reports.
        self.peak_segments = 0

    @staticmethod
    def segments_for(nbytes: int) -> int:
        """Segments needed to hold ``nbytes`` (at least one)."""
        if nbytes < 0:
            raise ValueError(f"size cannot be negative: {nbytes}")
        return max(1, -(-nbytes // SEGMENT_BYTES))

    @property
    def free_segments(self) -> int:
        return self.capacity_segments - self.used_segments

    @property
    def used_bytes(self) -> int:
        return self.used_segments * SEGMENT_BYTES

    def can_fit(self, nbytes: int) -> bool:
        return self.segments_for(nbytes) <= self.free_segments

    def allocate(self, nbytes: int) -> int:
        """Claim segments for a delta of ``nbytes``; returns segment count.

        Raises ``MemoryError`` when the pool is exhausted — callers evict
        via the delta-replacement policy first.
        """
        need = self.segments_for(nbytes)
        if need > self.free_segments:
            raise MemoryError(
                f"segment pool exhausted: need {need}, "
                f"free {self.free_segments}")
        self.used_segments += need
        self.peak_segments = max(self.peak_segments, self.used_segments)
        return need

    def free(self, nbytes: int) -> None:
        """Release the segments previously allocated for ``nbytes``."""
        give_back = self.segments_for(nbytes)
        if give_back > self.used_segments:
            raise ValueError(
                f"freeing {give_back} segments but only "
                f"{self.used_segments} are allocated")
        self.used_segments -= give_back

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SegmentPool(used={self.used_segments}/"
                f"{self.capacity_segments})")
