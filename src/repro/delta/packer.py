"""Delta-block packing and the sequential HDD delta log.

The heart of I-CASH's write path: dirty deltas accumulated in RAM are
packed — many at a time — into 4 KB *delta blocks* and appended
sequentially to a log region on the HDD.  One mechanical HDD operation
thereby carries a potentially large number of logical writes, and on a
later read of any packed delta, fetching its delta block pulls all of its
neighbours into RAM too (Section 3.1's delta packing/unpacking argument).

Wire format of one delta block::

    u32 magic | u32 sequence | u16 record_count |
    record_count x ( u64 lba | u64 ref_lba | u16 delta_len ) |
    concatenated serialized deltas

The sequence number makes the log replayable in order for crash recovery
(Section 3.3): :meth:`DeltaLog.replay` yields every record ever flushed,
oldest first, letting the controller rebuild block contents by applying
each block's most recent delta to its reference.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.delta.encoder import Delta
from repro.sim.request import BLOCK_SIZE
from repro.sim.trace import NULL_TRACER

MAGIC = 0x1CA5_00DD
_BLOCK_HEADER = struct.Struct("<IIH")
_RECORD_HEADER = struct.Struct("<QQH")


@dataclass(frozen=True)
class DeltaRecord:
    """One logical block's delta destined for (or read from) the log."""

    lba: int
    ref_lba: int
    delta: Delta

    @property
    def wire_size(self) -> int:
        return _RECORD_HEADER.size + len(self.delta.serialize())


class DeltaBlockPacker:
    """Packs delta records into 4 KB blocks and unpacks them again."""

    payload_capacity = BLOCK_SIZE - _BLOCK_HEADER.size

    def pack(self, records: Sequence[DeltaRecord],
             start_sequence: int = 0) -> List[bytes]:
        """Greedily pack ``records`` into as few 4 KB blocks as possible.

        Records are packed in order (the flush order preserves the write
        order, which recovery relies on).  Returns the packed blocks, each
        exactly ``BLOCK_SIZE`` bytes (zero padded).
        """
        return [block for block, _ in self.pack_with_records(
            records, start_sequence=start_sequence)]

    def pack_with_records(self, records: Sequence[DeltaRecord],
                          start_sequence: int = 0
                          ) -> List[Tuple[bytes, List[DeltaRecord]]]:
        """:meth:`pack`, but each block is paired with the records it
        holds — the log caches these so a ``peek_block`` right after an
        append never re-unpacks bytes it just sealed."""
        blocks: List[Tuple[bytes, List[DeltaRecord]]] = []
        current: List[Tuple[DeltaRecord, bytes]] = []
        used = 0
        for record in records:
            blob = record.delta.serialize()
            need = _RECORD_HEADER.size + len(blob)
            if need > self.payload_capacity:
                raise ValueError(
                    f"delta for lba {record.lba} ({need} B) cannot fit in "
                    f"one delta block; spill it to the SSD instead")
            if used + need > self.payload_capacity:
                blocks.append((self._seal(current,
                                          start_sequence + len(blocks)),
                               [entry for entry, _ in current]))
                current = []
                used = 0
            current.append((record, blob))
            used += need
        if current:
            blocks.append((self._seal(current,
                                      start_sequence + len(blocks)),
                           [entry for entry, _ in current]))
        return blocks

    @staticmethod
    def _seal(entries: List[Tuple[DeltaRecord, bytes]],
              sequence: int) -> bytes:
        parts = [_BLOCK_HEADER.pack(MAGIC, sequence, len(entries))]
        parts.extend(_RECORD_HEADER.pack(record.lba, record.ref_lba,
                                         len(blob))
                     for record, blob in entries)
        parts.extend(blob for _, blob in entries)
        packed = b"".join(parts)
        return packed + b"\x00" * (BLOCK_SIZE - len(packed))

    @staticmethod
    def unpack(block: bytes) -> List[DeltaRecord]:
        """Decode one delta block; raises ``ValueError`` on corruption."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(
                f"delta blocks are {BLOCK_SIZE} B, got {len(block)}")
        magic, _sequence, count = _BLOCK_HEADER.unpack_from(block, 0)
        if magic != MAGIC:
            raise ValueError(f"bad delta block magic 0x{magic:08x}")
        pos = _BLOCK_HEADER.size
        headers: List[Tuple[int, int, int]] = []
        for _ in range(count):
            lba, ref_lba, length = _RECORD_HEADER.unpack_from(block, pos)
            headers.append((lba, ref_lba, length))
            pos += _RECORD_HEADER.size
        records: List[DeltaRecord] = []
        for lba, ref_lba, length in headers:
            delta = Delta.deserialize(block[pos:pos + length])
            records.append(DeltaRecord(lba, ref_lba, delta))
            pos += length
        return records

    @staticmethod
    def sequence_of(block: bytes) -> int:
        """The sequence number stamped into a packed block."""
        magic, sequence, _ = _BLOCK_HEADER.unpack_from(block, 0)
        if magic != MAGIC:
            raise ValueError(f"bad delta block magic 0x{magic:08x}")
        return sequence


class DeltaLog:
    """Append-only delta log occupying a region of an HDD.

    The log wraps a :class:`HardDiskDrive` region ``[base, base + size)``
    and keeps the packed block contents so that reads and crash recovery
    can actually unpack real bytes — the simulator stores genuine packed
    data, not placeholders.

    When the region fills, the log wraps around (old delta blocks are
    superseded by newer deltas for the same lbas; the controller's flush
    path always appends the *current* delta, so replay order resolves
    conflicts by last-writer-wins).
    """

    def __init__(self, hdd, base_lba: int, size_blocks: int) -> None:
        # ``hdd`` is any block Device; the common case is the HDD region
        # the paper describes, but an NVRAM log (see devices.nvram) plugs
        # in unchanged.
        if size_blocks < 1:
            raise ValueError("delta log needs at least one block")
        self.hdd = hdd
        self.base_lba = base_lba
        self.size_blocks = size_blocks
        self._next = 0
        self._sequence = 0
        self._contents: Dict[int, bytes] = {}
        #: Per-slot unpacked-record cache, invalidated whenever a slot's
        #: bytes change (overwrite, reset, corruption injection).  The
        #: controller peeks freshly appended blocks and re-reads hot log
        #: slots often enough that re-unpacking dominated host time.
        #: Callers must treat the cached lists as immutable.
        self._unpacked: Dict[int, List[DeltaRecord]] = {}
        self._packer = DeltaBlockPacker()
        #: Corrupted blocks the last replay skipped (set by replay()).
        self.corrupt_blocks_skipped = 0
        #: Monotone total of every torn block ever detected — append
        #: overwrites *and* replay skips.  ``corrupt_blocks_skipped``
        #: resets per replay, so the metrics layer (which requires
        #: monotone counters) reads this one instead.
        self.corrupt_blocks_total = 0
        #: Monotone replay-outcome counters: passes started and intact
        #: records yielded, surfaced as ``recovery_*`` instruments.
        self.replay_count = 0
        self.replayed_records_total = 0
        #: Times the circular log wrapped back to slot 0.  Monotone over
        #: the log's life — compaction :meth:`reset` rewinds the write
        #: pointer but not this counter (a wrap happened; the metrics
        #: layer needs monotone counters).
        self.wrap_count = 0

    @property
    def next_sequence(self) -> int:
        return self._sequence

    def append(self, records: Sequence[DeltaRecord]
               ) -> Tuple[float, List[int], List[Tuple[int, DeltaRecord]]]:
        """Pack and append ``records``.

        Returns ``(latency, slots written, displaced records)``.  The
        append is sequential on the HDD whenever the head is already at the
        log tail, which is the common case for periodic flushes.

        When the circular log wraps, the delta blocks it overwrites are
        returned as ``(old slot, record)`` pairs so the controller can
        re-log any records that are still the current delta for their
        block — the minimal log-cleaning a circular delta log needs.
        """
        if not records:
            return 0.0, [], []
        blocks = self._packer.pack_with_records(
            records, start_sequence=self._sequence)
        self._sequence += len(blocks)
        lbas: List[int] = []
        displaced: List[Tuple[int, DeltaRecord]] = []
        for block, packed_records in blocks:
            slot = self._next
            self._next = (self._next + 1) % self.size_blocks
            if self._next == 0:
                self.wrap_count += 1
            old = self._contents.get(slot)
            if old is not None:
                try:
                    displaced.extend(
                        (slot, record)
                        for record in self._cached_unpack(slot))
                except ValueError:
                    # Overwriting a torn block loses nothing recoverable.
                    self.corrupt_blocks_skipped += 1
                    self.corrupt_blocks_total += 1
            self._contents[slot] = block
            self._unpacked[slot] = packed_records
            lbas.append(slot)
        # One physical write covers the whole run of appended blocks when
        # they are contiguous; a wrap splits it in two.
        latency = self._write_extent(lbas)
        return latency, lbas, displaced

    def reset(self) -> None:
        """Drop every stored block and rewind the write pointer.

        Used by log compaction: the controller rewrites the live record
        set from scratch, reclaiming all stale space in one sweep.
        """
        self._contents.clear()
        self._unpacked.clear()
        self._next = 0

    def _cached_unpack(self, slot: int) -> List[DeltaRecord]:
        """The slot's records, unpacking at most once per stored bytes.

        The returned list is shared with the cache — callers iterate it,
        never mutate it.  ``ValueError`` (corruption) propagates exactly
        as an uncached unpack would: corruption injection invalidates
        the slot's cache entry first.
        """
        records = self._unpacked.get(slot)
        if records is None:
            records = self._packer.unpack(self._contents[slot])
            self._unpacked[slot] = records
        return records

    def peek_block(self, slot: int) -> List[DeltaRecord]:
        """Unpack a delta block without charging device latency.

        Used by the controller immediately after an append, when it needs
        the record → slot mapping of blocks it just wrote (metadata it
        holds anyway); genuine data-path reads use :meth:`read_block`.
        """
        if slot not in self._contents:
            raise KeyError(f"log slot {slot} holds no delta block")
        return self._cached_unpack(slot)

    def _write_extent(self, slots: List[int]) -> float:
        # Log appends are semantically distinct from ordinary data-region
        # I/O; re-label the raw device spans for the trace (the event's
        # outcome still carries the device's own access classification).
        tracer = getattr(self.hdd, "tracer", NULL_TRACER)
        if tracer.enabled:
            tracer.push_name_scope("hdd_log_append")
        try:
            latency = 0.0
            run_start = slots[0]
            run_len = 1
            for slot in slots[1:]:
                if slot == run_start + run_len:
                    run_len += 1
                else:
                    latency += self.hdd.write(self.base_lba + run_start,
                                              run_len)
                    run_start, run_len = slot, 1
            latency += self.hdd.write(self.base_lba + run_start, run_len)
            return latency
        finally:
            if tracer.enabled:
                tracer.pop_name_scope()

    def read_block(self, slot: int) -> Tuple[float, List[DeltaRecord]]:
        """Fetch one delta block; returns (latency, all packed records)."""
        if slot not in self._contents:
            raise KeyError(f"log slot {slot} holds no delta block")
        tracer = getattr(self.hdd, "tracer", NULL_TRACER)
        if tracer.enabled:
            tracer.push_name_scope("hdd_log_read")
        try:
            latency = self.hdd.read(self.base_lba + slot, 1)
        finally:
            if tracer.enabled:
                tracer.pop_name_scope()
        return latency, self._cached_unpack(slot)

    def replay(self) -> Iterator[DeltaRecord]:
        """Yield every intact logged record in flush order.

        Crash recovery must survive torn or corrupted log blocks (a
        power cut mid-append): blocks that fail to unpack are skipped —
        and counted in :attr:`corrupt_blocks_skipped` — rather than
        aborting the whole replay.  The deltas they carried fall back to
        older durable state, which is the correct loss semantics.
        """
        self.corrupt_blocks_skipped = 0
        self.replay_count += 1
        ordered = []
        for slot, blob in self._contents.items():
            try:
                sequence = self._packer.sequence_of(blob)
            except ValueError:
                self.corrupt_blocks_skipped += 1
                self.corrupt_blocks_total += 1
                continue
            ordered.append((sequence, slot))
        for _sequence, slot in sorted(ordered):
            try:
                records = self._packer.unpack(self._contents[slot])
            except ValueError:
                self.corrupt_blocks_skipped += 1
                self.corrupt_blocks_total += 1
                continue
            self.replayed_records_total += len(records)
            yield from records

    def corrupt_block(self, slot: int, nbytes: int = 64) -> None:
        """Failure injection: tear the first ``nbytes`` of a log block.

        Models a power cut mid-write; used by the reliability tests.
        """
        if slot not in self._contents:
            raise KeyError(f"log slot {slot} holds no delta block")
        blob = bytearray(self._contents[slot])
        for i in range(min(nbytes, len(blob))):
            blob[i] ^= 0xFF
        self._contents[slot] = bytes(blob)
        # The cached records no longer match the (torn) bytes; drop them
        # so reads observe the corruption.
        self._unpacked.pop(slot, None)

    @property
    def blocks_written(self) -> int:
        return self._sequence

    @property
    def occupancy(self) -> float:
        """Fraction of log slots currently holding a delta block."""
        return len(self._contents) / self.size_blocks
