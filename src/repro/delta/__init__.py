"""Delta compression machinery.

Three layers, bottom-up:

* :mod:`repro.delta.encoder` — a byte-range delta codec: encodes one 4 KB
  block as the set of byte runs where it differs from a reference block,
  and applies such a delta back onto the reference to reconstruct the
  block.
* :mod:`repro.delta.segments` — the 64-byte segment allocator the paper
  uses to manage delta storage in RAM (Section 4.3: "Delta blocks are
  managed using a linked list of 64-bytes segments").
* :mod:`repro.delta.packer` — packs many serialized deltas into 4 KB
  *delta blocks* appended sequentially to the HDD log, so one mechanical
  operation carries many logical I/Os (the core of the paper's
  performance argument), and unpacks them again on read or recovery.
"""

from repro.delta.encoder import Delta, apply_delta, encode_delta
from repro.delta.packer import DeltaBlockPacker, DeltaLog, DeltaRecord
from repro.delta.segments import SegmentPool

__all__ = [
    "Delta",
    "DeltaBlockPacker",
    "DeltaLog",
    "DeltaRecord",
    "SegmentPool",
    "apply_delta",
    "encode_delta",
]
