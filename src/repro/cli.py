"""Command-line interface.

Everything the experiment harness can do, runnable without writing
Python::

    python -m repro list                      # what can I run?
    python -m repro figure figure6a           # one paper figure
    python -m repro figure all                # every figure (long)
    python -m repro profile sysbench          # a Table 4 row
    python -m repro sweep scan_interval 250 500 1000 2000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import figures as figures_module
from repro.experiments.sweeps import render_sweep, sweep_config
from repro.workloads import ALL_WORKLOADS

_WORKLOADS = {cls.name: cls for cls in ALL_WORKLOADS}

#: Which document explains each subcommand.  Every subcommand's help
#: string names its entry here (the CLI help test audits the mapping),
#: so ``repro --help`` always points at the right doc.
COMMAND_DOCS = {
    "list": "README.md",
    "figure": "EXPERIMENTS.md",
    "profile": "docs/MODELING.md",
    "sweep": "docs/TUNING.md",
    "validate": "EXPERIMENTS.md",
    "analyze": "docs/MODELING.md",
    "run": "docs/ARCHITECTURE.md",
    "trace": "docs/OBSERVABILITY.md",
    "monitor": "docs/OBSERVABILITY.md",
    "loadtest": "docs/ARCHITECTURE.md",
    "critpath": "docs/OBSERVABILITY.md",
    "bench": "docs/OBSERVABILITY.md",
    "chaos": "docs/RELIABILITY.md",
    "ledger": "docs/LEDGER.md",
    "explain": "docs/OBSERVABILITY.md",
}

#: ``repro ledger`` subcommands (doc-parity tested against the table
#: in docs/LEDGER.md).
LEDGER_SUBCOMMANDS = ("list", "show", "diff", "trend", "verify",
                      "prune", "export")


def _add_no_ledger(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-ledger", action="store_true",
                        help="skip recording this invocation in the "
                             "persistent run ledger (docs/LEDGER.md); "
                             "REPRO_LEDGER=0 does the same globally")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I-CASH (HPCA 2011) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list",
                   help="list runnable figures and workloads "
                        f"(see {COMMAND_DOCS['list']})")

    figure = sub.add_parser("figure",
                            help="regenerate one paper figure (or 'all') "
                                 f"(see {COMMAND_DOCS['figure']})")
    figure.add_argument("name", help="figure name from 'repro list', "
                                     "or 'all'")
    figure.add_argument("--requests", type=int, default=None,
                        help="requests per benchmark run "
                             "(default: harness default)")
    figure.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the grid runs behind "
                             "the figures (results are identical at any "
                             "job count)")
    _add_no_ledger(figure)

    profile = sub.add_parser("profile",
                             help="measure a workload's Table 4 profile "
                                  f"(see {COMMAND_DOCS['profile']})")
    profile.add_argument("workload", choices=sorted(_WORKLOADS))
    profile.add_argument("--requests", type=int, default=4000)

    sweep = sub.add_parser("sweep",
                           help="sweep one ICASHConfig field on SysBench "
                                f"(see {COMMAND_DOCS['sweep']})")
    sweep.add_argument("parameter",
                       help="ICASHConfig field, e.g. scan_interval")
    sweep.add_argument("values", nargs="+",
                       help="values to sweep (parsed as int when "
                            "possible)")
    sweep.add_argument("--requests", type=int, default=6000)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes, one sweep point each "
                            "(results are identical at any job count)")
    _add_no_ledger(sweep)

    validate = sub.add_parser(
        "validate", help="run every figure and summarise shape scores "
                         "and headline claims "
                         f"(see {COMMAND_DOCS['validate']})")
    validate.add_argument("--requests", type=int, default=None)

    analyze = sub.add_parser(
        "analyze", help="measure a workload's content locality "
                        "(the paper's Section 2.2 claims; see "
                        f"{COMMAND_DOCS['analyze']})")
    analyze.add_argument("workload", choices=sorted(_WORKLOADS))
    analyze.add_argument("--requests", type=int, default=2000)

    run = sub.add_parser(
        "run", help="run one workload on one architecture and print the "
                    "full diagnosis (result, element status, path "
                    f"breakdowns) (see {COMMAND_DOCS['run']})")
    run.add_argument("workload", choices=sorted(_WORKLOADS))
    run.add_argument("--system", default="icash",
                     choices=["fusion-io", "raid0", "dedup", "lru",
                              "icash"])
    run.add_argument("--requests", type=int, default=6000)
    run.add_argument("--verify", action="store_true",
                     help="verify every read against the shadow copy")
    _add_no_ledger(run)

    trace = sub.add_parser(
        "trace", help="run one workload under the tracer and write a "
                      "per-request trace file (see docs/OBSERVABILITY.md)")
    trace.add_argument("--workload", default="sysbench",
                       choices=sorted(_WORKLOADS))
    trace.add_argument("--system", default="icash",
                       choices=["fusion-io", "raid0", "dedup", "lru",
                                "icash"])
    trace.add_argument("--requests", type=int, default=3000)
    trace.add_argument("--out", default="trace.json",
                       help="output path; .jsonl writes JSON Lines, "
                            "anything else writes Chrome trace_event "
                            "JSON for chrome://tracing / Perfetto")
    trace.add_argument("--buffer", type=int, default=1 << 20,
                       help="ring buffer capacity in events (oldest "
                            "events drop beyond this)")

    monitor = sub.add_parser(
        "monitor", help="run one workload under the windowed metrics "
                        "sampler; write CSV/JSONL/Prometheus series and "
                        "print a per-window report "
                        "(see docs/OBSERVABILITY.md)")
    monitor.add_argument("--workload", default="sysbench",
                         choices=sorted(_WORKLOADS))
    monitor.add_argument("--system", default="icash",
                         choices=["fusion-io", "raid0", "dedup", "lru",
                                  "icash"])
    monitor.add_argument("--requests", type=int, default=3000)
    monitor.add_argument("--interval", type=float, default=0.01,
                         help="sample window width in seconds of "
                              "aggregate device busy time")
    monitor.add_argument("--out-dir", default=".",
                         help="directory for series.csv, series.jsonl "
                              "and metrics.prom")
    monitor.add_argument("--max-windows", type=int, default=256,
                         help="series store capacity; beyond it adjacent "
                              "windows merge (downsampling)")
    monitor.add_argument("--json", action="store_true",
                         help="emit the per-window report, SLO "
                              "breaches and consistency verdict as one "
                              "JSON document on stdout instead of the "
                              "ASCII report (exports still written)")
    _add_no_ledger(monitor)

    loadtest = sub.add_parser(
        "loadtest", help="sweep open-loop arrival rate through the "
                         "discrete-event engine to locate the "
                         "saturation knee (throughput/latency curve, "
                         f"CSV + ASCII) (see {COMMAND_DOCS['loadtest']})")
    loadtest.add_argument("--workload", default="sysbench",
                          choices=sorted(_WORKLOADS))
    loadtest.add_argument("--system", default="icash",
                          choices=["fusion-io", "raid0", "dedup", "lru",
                                   "icash"])
    loadtest.add_argument("--requests", type=int, default=3000)
    loadtest.add_argument("--points", type=int, default=6,
                          help="sweep points between --span fractions "
                               "of the calibrated capacity")
    loadtest.add_argument("--span", type=float, nargs=2,
                          default=None, metavar=("LO", "HI"),
                          help="sweep span as fractions of capacity "
                               "(default 0.3 1.6)")
    loadtest.add_argument("--rates", type=float, nargs="+", default=None,
                          help="explicit offered rates (requests/s); "
                               "skips capacity calibration")
    loadtest.add_argument("--distribution", default="poisson",
                          choices=["poisson", "constant"],
                          help="interarrival distribution")
    loadtest.add_argument("--seed", type=int, default=1234,
                          help="arrival-pattern seed (shared across "
                               "sweep points)")
    loadtest.add_argument("--csv", default=None,
                          help="also write the curve as CSV rows")
    loadtest.add_argument("--compare", action="store_true",
                          help="instead of a sweep, compare every "
                               "architecture at its own knee")
    loadtest.add_argument("--jobs", type=int, default=1,
                          help="worker processes across rate points / "
                               "architectures (results are identical "
                               "at any job count)")
    _add_no_ledger(loadtest)

    critpath = sub.add_parser(
        "critpath", help="run one workload under the simulated-time "
                         "profiler and print the critical-path "
                         "attribution table with a blame summary "
                         "(see docs/OBSERVABILITY.md)")
    critpath.add_argument("--workload", default="sysbench",
                          choices=sorted(_WORKLOADS))
    critpath.add_argument("--system", default="icash",
                          choices=["fusion-io", "raid0", "dedup", "lru",
                                   "icash"])
    critpath.add_argument("--requests", type=int, default=3000)
    critpath.add_argument("--engine", default="event",
                          choices=["legacy", "event"],
                          help="wall-clock model; 'event' includes "
                               "per-station queue waits")
    critpath.add_argument("--rate", type=float, default=None,
                          help="open-loop arrival rate (requests/s); "
                               "default is the workload's closed loop. "
                               "Only meaningful with --engine event")
    critpath.add_argument("--seed", type=int, default=1234,
                          help="arrival-pattern seed for --rate")
    critpath.add_argument("--folded", default=None, metavar="PATH",
                          help="also write folded flame stacks "
                               "('op;device;phase count_us' lines) for "
                               "flamegraph tooling")
    critpath.add_argument("--json", action="store_true",
                          help="emit the attribution table, blame and "
                               "consistency verdicts as one JSON "
                               "document on stdout (machine-readable "
                               "form for tooling and CI)")

    bench = sub.add_parser(
        "bench", help="run the canonical benchmark suite, write a "
                      "schema-versioned BENCH_<n>.json and optionally "
                      "compare against a baseline "
                      "(see docs/OBSERVABILITY.md)")
    bench.add_argument("--quick", action="store_true",
                       help="smoke suite (SysBench x both engines) "
                            "instead of the full per-family suite")
    bench.add_argument("--out-dir", default=".",
                       help="directory receiving the next free "
                            "BENCH_<n>.json")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="compare the fresh run against this "
                            "BENCH_*.json; exit 1 on regression")
    bench.add_argument("--against", default=None, metavar="CURRENT",
                       help="with --compare: skip running; compare "
                            "CURRENT against BASELINE instead")
    bench.add_argument("--verbose", action="store_true",
                       help="show every compared metric, not just "
                            "regressions")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes, one suite case each "
                            "(every compared field is identical at any "
                            "job count)")
    bench.add_argument("--seed", type=int, default=None,
                       help="override every case's fixed seed — for "
                            "seed-sensitivity probes feeding 'repro "
                            "ledger diff', not for --compare against "
                            "the committed baseline")
    _add_no_ledger(bench)

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection scenario matrix against "
                      "the I-CASH element and judge every cell against "
                      "its SLO breach budget; exit 1 on any FAIL "
                      f"(see {COMMAND_DOCS['chaos']})")
    chaos.add_argument("--quick", action="store_true",
                       help="one scenario per fault class (the CI "
                            "smoke set) instead of the full matrix")
    chaos.add_argument("--requests", type=int, default=2000,
                       help="requests per scenario run; the fault "
                            "fires at the halfway admission")
    chaos.add_argument("--seed", type=int, default=1234,
                       help="fault and arrival seed — same seed, "
                            "same verdicts, byte-identical JSONL")
    chaos.add_argument("--scenario", nargs="+", default=None,
                       metavar="ID",
                       help="run only these scenario IDs "
                            "(e.g. wearout-sysbench hddfail-tpcc)")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="also write the verdicts as JSONL "
                            "(one meta line + one line per scenario)")
    _add_no_ledger(chaos)

    ledger = sub.add_parser(
        "ledger", help="inspect the persistent run ledger: list, "
                       "show, diff (with provenance hints), sparkline "
                       "trends with anomaly detection, integrity "
                       "verify, retention prune and JSONL export "
                       f"(see {COMMAND_DOCS['ledger']})")
    lsub = ledger.add_subparsers(dest="ledger_command", required=True)

    def _ledger_sub(name: str, help_text: str):
        sub_parser = lsub.add_parser(name, help=help_text)
        sub_parser.add_argument("--dir", default=None,
                                help="ledger directory (default: "
                                     "REPRO_LEDGER_DIR or "
                                     ".repro-ledger)")
        return sub_parser

    l_list = _ledger_sub("list", "newest recorded runs")
    l_list.add_argument("--last", type=int, default=20,
                        help="show at most this many newest rows")
    l_list.add_argument("--filter", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="restrict to matching rows (command/"
                             "workload/system/engine/seed); repeatable")
    l_show = _ledger_sub("show", "one full row as JSON")
    l_show.add_argument("ref", help="seq number or run-id prefix")
    l_diff = _ledger_sub("diff", "field-level diff of two runs with "
                                 "provenance hints")
    l_diff.add_argument("ref_a", help="seq number or run-id prefix")
    l_diff.add_argument("ref_b", help="seq number or run-id prefix")
    l_diff.add_argument("--deep", action="store_true",
                        help="full differential diagnosis via the "
                             "explain engine (noise-aware significance, "
                             "attribution deltas, ranked suspects) "
                             "instead of the field-level diff")
    l_trend = _ledger_sub("trend", "sparkline history of one metric "
                                   "with rolling-window anomaly "
                                   "detection")
    l_trend.add_argument("metric",
                         help="scalar name (e.g. read_p99_us), "
                              "counters.<name>, or slo.breaches")
    l_trend.add_argument("--filter", action="append", default=None,
                         metavar="KEY=VALUE",
                         help="restrict to matching rows; repeatable")
    l_trend.add_argument("--last", type=int, default=50,
                         help="trend over at most this many newest "
                              "matching rows")
    l_trend.add_argument("--window", type=int, default=None,
                         help="rolling history window per point "
                              "(default: 8)")
    _ledger_sub("verify", "integrity check: schema version, content-"
                          "hash run ids, row/export parity; exit 1 "
                          "on any issue")
    l_prune = _ledger_sub("prune", "drop all but the newest N rows "
                                   "and rewrite the export")
    l_prune.add_argument("--keep", type=int, required=True,
                         help="rows to retain")
    l_export = _ledger_sub("export", "rewrite the JSONL export from "
                                     "the database")
    l_export.add_argument("--out", default=None,
                          help="write here instead of the store's "
                               "export.jsonl")
    l_export.add_argument("--canonical", action="store_true",
                          help="drop the volatile sub-object (byte-"
                               "identical across hosts and job "
                               "counts)")

    explain = sub.add_parser(
        "explain", help="differential diagnosis of two runs: noise-"
                        "aware metric and attribution diffs, a ranked "
                        "root-cause suspect list, and a flame-diff "
                        "export; inputs are two ledger refs or two "
                        "BENCH_*.json files "
                        f"(see {COMMAND_DOCS['explain']})")
    explain.add_argument("a", help="baseline: a ledger seq/run-id "
                                   "prefix, or a BENCH_*.json path")
    explain.add_argument("b", help="candidate: a ledger seq/run-id "
                                   "prefix, or a BENCH_*.json path")
    explain.add_argument("--case", default=None,
                         help="with two BENCH files: which suite case "
                              "to diagnose (default: the single shared "
                              "case, error when ambiguous)")
    explain.add_argument("--dir", default=None,
                         help="ledger directory for ref inputs "
                              "(default: REPRO_LEDGER_DIR or "
                              ".repro-ledger)")
    explain.add_argument("--json", action="store_true",
                         help="emit the machine-readable report "
                              "instead of the rendered text")
    explain.add_argument("--flame-diff", default=None, metavar="PATH",
                         help="also write the two-column folded flame "
                              "diff ('op;device;phase a_us b_us') for "
                              "flamegraph.pl --negate / speedscope")
    return parser


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _ledger_note(ledger) -> None:
    """One closing line saying where the run(s) were recorded."""
    if getattr(ledger, "enabled", False) and ledger.recorded:
        noun = "run" if ledger.recorded == 1 else "runs"
        print(f"ledger: recorded {ledger.recorded} {noun} -> "
              f"{ledger.root} (inspect with 'repro ledger list')")


def _cmd_list() -> int:
    print("figures:")
    for name in figures_module.ALL_FIGURES:
        print(f"  {name}")
    print("also: figure7 / figure9 (read+write pairs), table5, table6 "
          "run via pytest benchmarks/")
    print("\nworkloads:")
    for name in sorted(_WORKLOADS):
        print(f"  {name}")
    return 0


def _cmd_figure(name: str, requests: Optional[int],
                jobs: int = 1, ledger=None) -> int:
    names = (list(figures_module.ALL_FIGURES)
             if name == "all" else [name])
    unknown = [n for n in names if n not in figures_module.ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)} — see "
              f"'repro list'", file=sys.stderr)
        return 2

    def _n_requests(fig_name: str) -> Optional[int]:
        # Multi-VM figures take per-VM counts; leave their defaults.
        if requests is not None and "figure1" not in fig_name[:8] \
                and fig_name not in ("figure15", "figure16"):
            return requests
        return None

    if jobs > 1:
        # Fan the grid cells behind the requested figures out across
        # workers; the figure functions below then hit the cache.
        groups: dict = {}
        for fig_name in names:
            groups.setdefault(_n_requests(fig_name), []).append(fig_name)
        for n_req, group in groups.items():
            if n_req is None:
                figures_module.prewarm(group, jobs=jobs)
            else:
                figures_module.prewarm(group, n_requests=n_req, jobs=jobs)
    for fig_name in names:
        fn = figures_module.ALL_FIGURES[fig_name]
        kwargs = {}
        n_req = _n_requests(fig_name)
        if n_req is not None:
            kwargs["n_requests"] = n_req
        result = fn(**kwargs)
        figures_module.record_figure(ledger, result)
        print(result.render())
        print()
    _ledger_note(ledger)
    return 0


def _cmd_profile(workload_name: str, requests: int) -> int:
    cls = _WORKLOADS[workload_name]
    workload = cls(scale=0.25, n_requests=requests)
    measured = workload.measured_profile()
    print("measured:", measured.format_row())
    print("paper:   ", cls.paper_profile.format_row())
    return 0


def _cmd_sweep(parameter: str, raw_values: List[str],
               requests: int, jobs: int = 1, ledger=None) -> int:
    from repro.experiments.parallel import RunSpec
    from repro.workloads import SysBenchWorkload

    values = [_parse_value(v) for v in raw_values]
    try:
        points = sweep_config(
            lambda: SysBenchWorkload(n_requests=requests),
            parameter, values, jobs=jobs,
            base_spec=RunSpec(workload="sysbench", n_requests=requests),
            ledger=ledger)
    except TypeError as error:
        print(f"bad parameter {parameter!r}: {error}", file=sys.stderr)
        return 2
    print(render_sweep(points))
    _ledger_note(ledger)
    return 0


def _cmd_validate(requests: Optional[int]) -> int:
    from repro.experiments.validate import validate

    summary = validate(n_requests=requests)
    print(summary.render())
    return 0 if summary.claims_held == len(summary.claims) else 1


def _cmd_analyze(workload_name: str, requests: int) -> int:
    from repro.analysis import analyze_dataset, analyze_writes

    cls = _WORKLOADS[workload_name]
    workload = cls(scale=0.25, n_requests=requests)
    dataset = workload.build_dataset()
    locality = analyze_dataset(dataset, sample=min(2000,
                                                   workload.n_blocks))
    print(f"{workload_name} initial data set:")
    print(f"  {locality.summary()}")
    writes = analyze_writes(dataset, workload.requests())
    print(f"{workload_name} write stream:")
    print(f"  {writes.summary()}")
    return 0


def _cmd_run(workload_name: str, system_name: str, requests: int,
             verify: bool, ledger=None) -> int:
    from repro.experiments.runner import run_benchmark
    from repro.experiments.systems import make_system

    workload = _WORKLOADS[workload_name](n_requests=requests)
    system = make_system(system_name, workload)
    result = run_benchmark(workload, system, verify_reads=verify)
    if getattr(ledger, "enabled", False):
        ledger.record(result, command="run",
                      spec={"seed": getattr(workload, "seed", None)})
    print(f"{workload_name} on {system_name}: "
          f"{result.transactions_per_s:.1f} tx/s, "
          f"read {result.read_mean_us:.1f} us "
          f"(p99 {result.read_p99_us:.1f}), "
          f"write {result.write_mean_us:.1f} us, "
          f"cpu {result.cpu_utilization:.0%}, "
          f"runtime SSD writes {result.ssd_write_ops}")
    if verify:
        print(f"reads verified byte-exact: {result.verified_reads}")
    if system_name == "icash":
        from repro.experiments.breakdown import (read_breakdown,
                                                 semiconductor_fraction,
                                                 write_breakdown)
        print()
        print(system.describe())
        print()
        print(read_breakdown(system).render())
        print()
        print(write_breakdown(system).render())
        print(f"\nreads served without mechanical I/O: "
              f"{semiconductor_fraction(system):.1%}")
    _ledger_note(ledger)
    return 0


def _cmd_trace(workload_name: str, system_name: str, requests: int,
               out: str, buffer_events: int) -> int:
    from repro.experiments.runner import run_benchmark
    from repro.experiments.systems import make_system
    from repro.sim.trace import (RingBufferTracer, export_chrome_trace,
                                 export_jsonl, phase_breakdown)

    workload = _WORKLOADS[workload_name](n_requests=requests)
    system = make_system(system_name, workload)
    tracer = RingBufferTracer(capacity_events=buffer_events)
    run_benchmark(workload, system, tracer=tracer)
    if out.endswith(".jsonl"):
        written = export_jsonl(tracer.events, out, tracer=tracer)
        kind = "JSONL"
    else:
        written = export_chrome_trace(tracer.events, out, tracer=tracer)
        kind = "Chrome trace_event; open in chrome://tracing or " \
               "https://ui.perfetto.dev"
    print(f"{workload_name} on {system_name}: wrote {written} events "
          f"to {out} ({kind})")
    print(f"events recorded: {len(tracer.events)}, "
          f"dropped: {tracer.dropped}")
    if tracer.dropped:
        print(f"warning: ring buffer overflowed; the {tracer.dropped} "
              f"oldest events were dropped — the trace file and the "
              f"phase breakdowns below cover only the surviving tail. "
              f"Raise --buffer for a complete trace.", file=sys.stderr)
    for op in ("read", "write"):
        breakdown = phase_breakdown(tracer.events, op=op)
        print()
        print(breakdown.render())
    # Cross-check the trace against the independent latency statistics:
    # the read breakdown's mean must reproduce StatsCollector's mean.
    stats_mean = system.stats.latency("read").mean_us
    trace_mean = phase_breakdown(tracer.events, op="read").mean_us
    print(f"\nconsistency: trace read mean {trace_mean:.2f} us vs "
          f"stats read mean {stats_mean:.2f} us")
    return 0


def _cmd_monitor(workload_name: str, system_name: str, requests: int,
                 interval_s: float, out_dir: str,
                 max_windows: int, ledger=None,
                 as_json: bool = False) -> int:
    import json
    import os

    from repro.experiments.runner import run_benchmark
    from repro.experiments.systems import make_system
    from repro.sim.metrics import (Monitor, export_prometheus,
                                   export_series_csv, export_series_jsonl)

    workload = _WORKLOADS[workload_name](n_requests=requests)
    system = make_system(system_name, workload)
    monitor = Monitor(interval_s=interval_s, max_windows=max_windows)
    result = run_benchmark(workload, system, monitor=monitor)
    if getattr(ledger, "enabled", False):
        ledger.record(result, command="monitor",
                      spec={"seed": getattr(workload, "seed", None)},
                      extra={"interval_s": interval_s})

    os.makedirs(out_dir, exist_ok=True)
    csv_path = os.path.join(out_dir, "series.csv")
    jsonl_path = os.path.join(out_dir, "series.jsonl")
    prom_path = os.path.join(out_dir, "metrics.prom")
    rows = export_series_csv(monitor.store, csv_path)
    export_series_jsonl(monitor.store, jsonl_path)
    samples = export_prometheus(monitor.registry, prom_path)

    # Cross-check the windowed series against the independent run-end
    # statistics: summed window deltas must reproduce the request counts
    # StatsCollector saw (the tracer's consistency check, for metrics).
    store = monitor.store
    stats_reads = system.stats.latency("read").count
    stats_writes = system.stats.latency("write").count
    series_reads = store.counter_total("requests_read_total")
    series_writes = store.counter_total("requests_write_total")
    consistent = (series_reads, series_writes) == (stats_reads,
                                                   stats_writes)
    if as_json:
        doc = {
            "workload": workload_name,
            "system": system_name,
            "interval_s": interval_s,
            "downsample_factor": store.downsample_factor,
            "windows": [
                {"window": index,
                 "t_start_s": window.t_start,
                 "t_end_s": window.t_end,
                 "series": store.window_row(index)}
                for index, window in enumerate(store.windows)],
            "slo_breaches": [
                {"rule": breach.rule.name, "window": breach.window,
                 "t_start_s": breach.t_start, "t_end_s": breach.t_end,
                 "value": breach.value,
                 "threshold": breach.rule.threshold}
                for breach in monitor.breaches],
            "exports": {"csv": csv_path, "jsonl": jsonl_path,
                        "prometheus": prom_path},
            "consistency": {
                "series_reads": series_reads,
                "stats_reads": stats_reads,
                "series_writes": series_writes,
                "stats_writes": stats_writes,
                "ok": consistent},
        }
        print(json.dumps(doc, sort_keys=True, indent=2))
    else:
        print(f"{workload_name} on {system_name}: {rows} sample "
              f"windows -> {csv_path}, {jsonl_path}; {samples} final "
              f"samples -> {prom_path}")
        print()
        print(monitor.render_report())
        print(f"\nconsistency: series reads {series_reads:.0f} vs "
              f"stats {stats_reads}, series writes "
              f"{series_writes:.0f} vs stats {stats_writes}")
    if not consistent:
        print("warning: windowed series disagree with run-end "
              "statistics", file=sys.stderr)
        return 1
    if not as_json:
        _ledger_note(ledger)
    return 0


def _cmd_loadtest(workload_name: str, system_name: str, requests: int,
                  points: int, span: Optional[List[float]],
                  rates: Optional[List[float]], distribution: str,
                  seed: int, csv_path: Optional[str],
                  compare: bool, jobs: int = 1, ledger=None) -> int:
    from repro.experiments import loadtest
    from repro.experiments.parallel import RunSpec

    def workload_factory():
        return _WORKLOADS[workload_name](n_requests=requests)

    base_spec = RunSpec(workload=workload_name, n_requests=requests)

    if compare:
        print(f"comparing architectures at their saturation knees "
              f"({workload_name}, {requests} requests/run)...")
        reports = loadtest.compare_at_knee(
            workload_factory, distribution=distribution, seed=seed,
            progress=True, jobs=jobs, base_spec=base_spec,
            ledger=ledger)
        print(loadtest.render_comparison(reports))
        _ledger_note(ledger)
        return 0

    if rates is not None:
        sweep = sorted(rates)
        print(f"{workload_name} on {system_name}: sweeping "
              f"{len(sweep)} explicit rates ({distribution} arrivals)")
    else:
        capacity = loadtest.calibrate_capacity(workload_factory,
                                               system_name,
                                               ledger=ledger)
        span_t = tuple(span) if span is not None \
            else loadtest.DEFAULT_SPAN
        sweep = loadtest.auto_rates(capacity, points, span=span_t)
        print(f"{workload_name} on {system_name}: calibrated capacity "
              f"{capacity:.0f} requests/s; sweeping {len(sweep)} rates "
              f"across {span_t[0]:.1f}-{span_t[1]:.1f}x "
              f"({distribution} arrivals)")
    curve = loadtest.sweep_rates(workload_factory, system_name, sweep,
                                 distribution=distribution, seed=seed,
                                 jobs=jobs, base_spec=base_spec,
                                 ledger=ledger)
    print()
    print(loadtest.render_curve(curve))
    if csv_path is not None:
        rows = loadtest.export_curve_csv(curve, csv_path)
        print(f"\nwrote {rows} sweep rows to {csv_path}")
    _ledger_note(ledger)
    return 0


def _cmd_critpath(workload_name: str, system_name: str, requests: int,
                  engine: str, rate: Optional[float], seed: int,
                  folded: Optional[str],
                  as_json: bool = False) -> int:
    import json

    from repro.experiments.runner import run_benchmark
    from repro.experiments.systems import make_system
    from repro.sim.load import OpenLoopLoad
    from repro.sim.profile import Profiler, export_folded
    from repro.sim.trace import RingBufferTracer

    workload = _WORKLOADS[workload_name](n_requests=requests)
    system = make_system(system_name, workload)
    profiler = Profiler()
    load = OpenLoopLoad(rate, seed=seed) if rate is not None else None
    tracer = RingBufferTracer() if folded is not None else None
    result = run_benchmark(workload, system, engine=engine, load=load,
                           profiler=profiler, tracer=tracer)
    table = profiler.table
    if not as_json:
        loaded = f" at {rate:.0f} req/s" if rate is not None else ""
        print(f"{workload_name} on {system_name} "
              f"({engine} engine{loaded}), "
              f"{table.latency('read').count + table.latency('write').count} "
              f"measured requests:")
        print()
        print(table.render())
        print()
    # Cross-check attribution against the independent latency
    # statistics: per-request (device, phase) sums must reproduce the
    # run's measured per-class means exactly (docs/OBSERVABILITY.md).
    checks = (("read", result.read_mean_us),
              ("write", result.write_mean_us))
    consistent = True
    consistency = []
    for op, stats_mean in checks:
        table_mean = table.mean_us(op)
        ok = abs(table_mean - stats_mean) <= 1e-6 * max(1.0, stats_mean)
        consistent = consistent and ok
        consistency.append({"op": op, "attribution_mean_us": table_mean,
                            "run_mean_us": stats_mean, "ok": ok})
        if not as_json:
            print(f"consistency: attribution {op} mean "
                  f"{table_mean:.2f} us vs run {op} mean "
                  f"{stats_mean:.2f} us [{'ok' if ok else 'MISMATCH'}]")
    from repro.core.signatures import signature_cache_stats
    cache_stats = signature_cache_stats()
    if not as_json:
        print(f"signature cache: {cache_stats['hits']} hits / "
              f"{cache_stats['misses']} misses, "
              f"{cache_stats['size']} entries "
              f"({cache_stats['size_bytes'] / 1024:.0f} KiB pinned), "
              f"{cache_stats['evictions']} evictions")
    folded_lines = None
    if folded is not None:
        folded_lines = export_folded(tracer.events, folded)
        if not as_json:
            print(f"\nwrote {folded_lines} folded stacks to {folded} "
                  f"(flamegraph.pl / speedscope 'folded' format)")
        if tracer.dropped:
            print(f"warning: ring buffer dropped {tracer.dropped} "
                  f"events; folded stacks cover the surviving tail",
                  file=sys.stderr)
    if as_json:
        blames = {}
        for op in table.ops:
            blame = table.blame(op)
            blames[op] = None if blame is None else {
                "device": blame.device, "phase": blame.phase,
                "share": blame.share, "tail_n": blame.tail_n,
                "threshold_us": blame.threshold_us}
        doc = {
            "workload": workload_name,
            "system": system_name,
            "engine": engine,
            "rate": rate,
            "classes": {
                op: {"n": table.n_requests(op),
                     "mean_us": table.mean_us(op),
                     "p99_us": table.latency(op).percentile(99) * 1e6}
                for op in table.ops},
            "attribution": table.to_rows(),
            "blame": blames,
            "queueing": result.queueing.to_doc()
            if result.queueing is not None else None,
            "consistency": consistency,
            "consistent": consistent,
            "signature_cache": cache_stats,
            "folded": None if folded is None
            else {"path": folded, "lines": folded_lines},
        }
        print(json.dumps(doc, sort_keys=True, indent=2))
    return 0 if consistent else 1


def _cmd_bench(quick: bool, out_dir: str, compare_path: Optional[str],
               against: Optional[str], verbose: bool,
               jobs: int = 1, ledger=None,
               seed: Optional[int] = None) -> int:
    from repro.experiments import bench

    if against is not None and compare_path is None:
        print("--against requires --compare BASELINE", file=sys.stderr)
        return 2

    if against is not None:
        current = bench.load_bench(against)
        print(f"comparing {against} against {compare_path}")
    else:
        suite = "quick" if quick else "full"
        workers = f" ({jobs} jobs)" if jobs > 1 else ""
        print(f"running {suite} suite{workers}...")
        current = bench.run_suite(
            quick=quick, jobs=jobs, ledger=ledger, seed=seed,
            progress=lambda case: print(f"  {case.case}"))
        path = bench.write_bench(current, out_dir)
        print(f"wrote {path} (schema v{current['schema_version']}, "
              f"{len(current['cases'])} cases)")
        _ledger_note(ledger)

    if compare_path is None:
        return 0
    baseline = bench.load_bench(compare_path)
    deltas = bench.compare(baseline, current)
    print()
    print(bench.render_compare(deltas, verbose=verbose))
    regressed = bench.regressions(deltas)
    if regressed:
        _emit_explain_reports(baseline, current, regressed, out_dir)
    return 1 if regressed else 0


def _emit_explain_reports(baseline, current, regressed,
                          out_dir: str) -> None:
    """One differential-diagnosis report per regressed bench case.

    Written as ``EXPLAIN_<case>.txt``/``.json`` next to the BENCH
    documents so CI can upload them as artifacts; the top suspects go
    straight to the job log.
    """
    import os

    from repro.analysis.explain import explain_bench_cases

    base_cases = {c["case"]: c for c in baseline["cases"]}
    cur_cases = {c["case"]: c for c in current["cases"]}
    os.makedirs(out_dir, exist_ok=True)
    for name in sorted({d.case for d in regressed}):
        report = explain_bench_cases(base_cases[name], cur_cases[name],
                                     label_a=f"baseline {name}",
                                     label_b=f"current {name}")
        stem = os.path.join(out_dir, f"EXPLAIN_{name}")
        with open(stem + ".txt", "w", encoding="utf-8") as handle:
            handle.write(report.render() + "\n")
        with open(stem + ".json", "w", encoding="utf-8") as handle:
            handle.write(report.render_json() + "\n")
        print(f"\nexplain: {name} -> {stem}.txt")
        for rank, suspect in enumerate(report.top_suspects(3),
                                       start=1):
            print(suspect.render(rank))


def _cmd_chaos(quick: bool, requests: int, seed: int,
               scenario_ids: Optional[List[str]],
               out: Optional[str], ledger=None) -> int:
    from repro.experiments import chaos

    scenarios = chaos.quick_scenarios() if quick else chaos.SCENARIOS
    if scenario_ids is not None:
        by_id = {s.scenario_id: s for s in chaos.SCENARIOS}
        unknown = [sid for sid in scenario_ids if sid not in by_id]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)} — known: "
                  f"{', '.join(sorted(by_id))}", file=sys.stderr)
            return 2
        scenarios = tuple(by_id[sid] for sid in scenario_ids)
    report = chaos.run_matrix(
        scenarios, seed=seed, n_requests=requests,
        progress=lambda msg: print(msg, file=sys.stderr),
        ledger=ledger)
    print(report.render())
    if out is not None:
        lines = chaos.export_chaos_jsonl(report, out)
        print(f"wrote {lines} JSONL lines to {out}")
    _ledger_note(ledger)
    return 0 if report.all_passed else 1


def _cmd_ledger(args) -> int:
    import os

    from repro import ledger as ledger_module

    root = args.dir or ledger_module.default_root()
    db_path = os.path.join(root, ledger_module.DB_NAME)
    if not os.path.exists(db_path):
        print(f"no ledger at {db_path} — any recorded invocation "
              f"(e.g. 'repro bench --quick') creates one",
              file=sys.stderr)
        return 2
    try:
        store = ledger_module.LedgerWriter(root)
        if args.ledger_command == "list":
            filters = ledger_module.parse_filters(args.filter)
            rows = store.rows(filters or None, last=args.last)
            print(ledger_module.render_rows(rows))
            return 0
        if args.ledger_command == "show":
            print(ledger_module.render_row(store.get(args.ref)))
            return 0
        if args.ledger_command == "diff":
            if args.deep:
                print(store.explain(args.ref_a, args.ref_b).render())
            else:
                print(store.diff(args.ref_a, args.ref_b).render())
            return 0
        if args.ledger_command == "trend":
            filters = ledger_module.parse_filters(args.filter)
            kwargs = ({} if args.window is None
                      else {"window": args.window})
            report = store.trend(args.metric, filters or None,
                                 last=args.last, **kwargs)
            print(report.render())
            return 0
        if args.ledger_command == "verify":
            issues = store.verify()
            for issue in issues:
                print(f"FAIL: {issue}", file=sys.stderr)
            if issues:
                return 1
            print(f"ok: {store.count()} row(s), every run id matches "
                  f"its content, export in sync")
            return 0
        if args.ledger_command == "prune":
            removed = store.prune(args.keep)
            print(f"pruned {removed} row(s); {store.count()} remain, "
                  f"export rewritten")
            return 0
        if args.ledger_command == "export":
            path = args.out or store.export_path
            count = store.export(args.out, canonical=args.canonical)
            form = " (canonical)" if args.canonical else ""
            print(f"wrote {count} row(s) to {path}{form}")
            return 0
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled ledger subcommand {args.ledger_command}")


def _cmd_explain(args) -> int:
    import os

    from repro.analysis.explain import export_flame_diff

    is_bench = [os.path.isfile(ref) or ref.endswith(".json")
                for ref in (args.a, args.b)]
    if any(is_bench) and not all(is_bench):
        print("explain: cannot mix a BENCH file with a ledger ref — "
              "pass two files or two refs", file=sys.stderr)
        return 2
    try:
        if all(is_bench):
            report = _explain_bench_files(args.a, args.b, args.case)
        else:
            from repro import ledger as ledger_module

            root = args.dir or ledger_module.default_root()
            db_path = os.path.join(root, ledger_module.DB_NAME)
            if not os.path.exists(db_path):
                print(f"no ledger at {db_path} — any recorded "
                      f"invocation (e.g. 'repro bench --quick') "
                      f"creates one", file=sys.stderr)
                return 2
            store = ledger_module.LedgerWriter(root)
            report = store.explain(args.a, args.b)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    print(report.render_json() if args.json else report.render())
    if args.flame_diff is not None:
        lines = export_flame_diff(report.view_a, report.view_b,
                                  args.flame_diff)
        print(f"wrote {lines} flame-diff line(s) to {args.flame_diff}",
              file=sys.stderr)
    return 0


def _explain_bench_files(path_a: str, path_b: str,
                         case: Optional[str]):
    """Diagnose one shared case across two BENCH documents."""
    from repro.analysis.explain import explain_bench_cases
    from repro.experiments import bench

    doc_a = bench.load_bench(path_a)
    doc_b = bench.load_bench(path_b)
    cases_a = {c["case"]: c for c in doc_a["cases"]}
    cases_b = {c["case"]: c for c in doc_b["cases"]}
    shared = sorted(set(cases_a) & set(cases_b))
    if not shared:
        raise ValueError(f"no case shared between {path_a} and "
                         f"{path_b}")
    if case is None:
        if len(shared) > 1:
            raise ValueError("ambiguous: both documents carry "
                             f"{len(shared)} shared cases "
                             f"({', '.join(shared)}) — pick one with "
                             f"--case")
        case = shared[0]
    elif case not in shared:
        raise ValueError(f"case {case!r} not in both documents — "
                         f"shared: {', '.join(shared)}")
    return explain_bench_cases(cases_a[case], cases_b[case],
                               label_a=f"{path_a}:{case}",
                               label_b=f"{path_b}:{case}")


def main(argv: Optional[List[str]] = None) -> int:
    # Scope the persistent worker pool + shared-memory dataset arena to
    # this invocation: whatever path we exit through (success, error,
    # KeyboardInterrupt), no /dev/shm segment or worker outlives main().
    from repro.experiments.parallel import parallel_session

    with parallel_session():
        return _dispatch(_build_parser().parse_args(argv))


def _dispatch(args) -> int:
    ledger = None
    if hasattr(args, "no_ledger"):
        from repro.ledger import default_ledger

        ledger = default_ledger(args.no_ledger)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _cmd_figure(args.name, args.requests, args.jobs,
                           ledger=ledger)
    if args.command == "profile":
        return _cmd_profile(args.workload, args.requests)
    if args.command == "sweep":
        return _cmd_sweep(args.parameter, args.values, args.requests,
                          args.jobs, ledger=ledger)
    if args.command == "validate":
        return _cmd_validate(args.requests)
    if args.command == "analyze":
        return _cmd_analyze(args.workload, args.requests)
    if args.command == "run":
        return _cmd_run(args.workload, args.system, args.requests,
                        args.verify, ledger=ledger)
    if args.command == "trace":
        return _cmd_trace(args.workload, args.system, args.requests,
                          args.out, args.buffer)
    if args.command == "monitor":
        return _cmd_monitor(args.workload, args.system, args.requests,
                            args.interval, args.out_dir,
                            args.max_windows, ledger=ledger,
                            as_json=args.json)
    if args.command == "loadtest":
        return _cmd_loadtest(args.workload, args.system, args.requests,
                             args.points, args.span, args.rates,
                             args.distribution, args.seed, args.csv,
                             args.compare, args.jobs, ledger=ledger)
    if args.command == "critpath":
        return _cmd_critpath(args.workload, args.system, args.requests,
                             args.engine, args.rate, args.seed,
                             args.folded, as_json=args.json)
    if args.command == "bench":
        return _cmd_bench(args.quick, args.out_dir, args.compare,
                          args.against, args.verbose, args.jobs,
                          ledger=ledger, seed=args.seed)
    if args.command == "chaos":
        return _cmd_chaos(args.quick, args.requests, args.seed,
                          args.scenario, args.out, ledger=ledger)
    if args.command == "ledger":
        return _cmd_ledger(args)
    if args.command == "explain":
        return _cmd_explain(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
