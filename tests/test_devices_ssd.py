"""Unit tests for the NAND SSD model: FTL, GC, wear, footprint penalty."""

import pytest

from repro.devices.ssd import FlashSSD, SSDSpec


def small_ssd(capacity_blocks: int = 256, **spec_kwargs) -> FlashSSD:
    spec = SSDSpec(pages_per_block=8, **spec_kwargs)
    return FlashSSD(capacity_blocks, spec)


class TestBasicTiming:
    def test_read_latency_small_footprint(self):
        ssd = small_ssd()
        latency = ssd.read(0, 1)
        assert latency == pytest.approx(
            ssd.spec.read_base_s, rel=0.5)

    def test_footprint_penalty_grows(self):
        spec = SSDSpec(pages_per_block=8, footprint_knee_blocks=100)
        ssd = FlashSSD(256, spec)
        first = ssd.read(0, 1)
        for lba in range(100):
            ssd.read(lba, 1)
        late = ssd.read(0, 1)
        assert late > first
        assert late == pytest.approx(
            spec.read_base_s + spec.read_footprint_penalty_s)

    def test_multiblock_read_pipelines(self):
        ssd = small_ssd()
        one = FlashSSD(256, SSDSpec(pages_per_block=8)).read(0, 1)
        eight = ssd.read(0, 8)
        assert eight < 8 * one

    def test_write_is_slower_than_read(self):
        ssd = small_ssd()
        write = ssd.write(0, 1)
        read = ssd.read(0, 1)
        assert write > read

    def test_trim_does_not_advance_busy_time(self):
        ssd = small_ssd()
        ssd.write(0, 1)
        busy = ssd.busy_time
        ssd.trim(0, 1)
        assert ssd.busy_time == busy
        assert ssd.stats.count("trim_ops") == 1


class TestFTL:
    def test_overwrite_invalidates_old_page(self):
        ssd = small_ssd()
        for _ in range(5):
            ssd.write(7, 1)
        # One valid mapping only; the rest are stale pages awaiting GC.
        assert 7 in ssd._map
        valid_total = sum(b.valid_count for b in ssd._blocks)
        assert valid_total == 1

    def test_mapping_unique_per_lba(self):
        ssd = small_ssd()
        for lba in range(64):
            ssd.write(lba, 1)
        for lba in range(0, 64, 2):
            ssd.write(lba, 1)
        seen = set()
        for loc in ssd._map.values():
            assert loc not in seen
            seen.add(loc)

    def test_trim_frees_mapping(self):
        ssd = small_ssd()
        ssd.write(3, 1)
        ssd.trim(3, 1)
        assert 3 not in ssd._map


class TestGarbageCollection:
    def test_gc_triggers_under_overwrite_pressure(self):
        ssd = small_ssd(capacity_blocks=128, overprovision=0.15)
        # Fill the device, then overwrite it repeatedly.
        for _round_ in range(6):
            for lba in range(128):
                ssd.write(lba, 1)
        assert ssd.stats.count("gc_erases") > 0
        assert ssd.total_erases > 0

    def test_gc_never_loses_mappings(self):
        ssd = small_ssd(capacity_blocks=128, overprovision=0.15)
        for _round_ in range(8):
            for lba in range(128):
                ssd.write(lba, 1)
        assert len(ssd._map) == 128
        valid_total = sum(b.valid_count for b in ssd._blocks)
        assert valid_total == 128

    def test_write_amplification_at_least_one(self):
        ssd = small_ssd(capacity_blocks=128, overprovision=0.15)
        assert ssd.write_amplification == 1.0
        for _round_ in range(8):
            for lba in range(128):
                ssd.write(lba, 1)
        assert ssd.write_amplification >= 1.0

    def test_gc_latency_charged_to_triggering_write(self):
        ssd = small_ssd(capacity_blocks=128, overprovision=0.15)
        latencies = []
        for _round_ in range(8):
            latencies.extend(ssd.write(lba, 1) for lba in range(128))
        # Some writes stalled behind at least one erase.
        assert max(latencies) >= ssd.spec.erase_s

    def test_sequential_overwrites_have_low_amplification(self):
        # Purely sequential overwrite leaves victims fully invalid, so GC
        # relocates (almost) nothing.
        ssd = small_ssd(capacity_blocks=128, overprovision=0.15)
        for _round_ in range(10):
            for lba in range(128):
                ssd.write(lba, 1)
        assert ssd.write_amplification < 1.3


class TestWearLeveling:
    def test_erase_counts_reported_per_block(self):
        ssd = small_ssd(capacity_blocks=64, overprovision=0.2)
        for _round_ in range(10):
            for lba in range(64):
                ssd.write(lba, 1)
        counts = ssd.erase_counts()
        assert len(counts) == len(ssd._blocks)
        assert sum(counts) == ssd.total_erases

    def test_wear_spread_stays_bounded(self):
        # Static wear leveling should keep max-min spread near wear_delta.
        ssd = small_ssd(capacity_blocks=64, overprovision=0.2, wear_delta=4)
        for _round_ in range(60):
            for lba in range(64):
                ssd.write(lba, 1)
        counts = [c for c in ssd.erase_counts()]
        assert max(counts) - min(counts) <= 4 * ssd.spec.wear_delta

    def test_footprint_counts_distinct_blocks(self):
        ssd = small_ssd()
        for _ in range(10):
            ssd.read(5, 1)
        assert ssd.footprint_blocks == 1
        ssd.read(6, 1)
        assert ssd.footprint_blocks == 2
        ssd.trim(6, 1)
        assert ssd.footprint_blocks == 1


class TestBounds:
    def test_span_checked(self):
        ssd = small_ssd(capacity_blocks=16)
        with pytest.raises(ValueError):
            ssd.read(16, 1)
        with pytest.raises(ValueError):
            ssd.write(15, 2)
