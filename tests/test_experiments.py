"""Tests for the experiment harness: systems factory, runner, reporting."""

import pytest

from repro.baselines import PureSSD
from repro.core import ICASHController
from repro.experiments import paperdata
from repro.experiments.report import (comparison_table, normalize,
                                      render_shape_check, shape_check,
                                      shape_score, speedup_summary)
from repro.experiments.runner import run_benchmark, run_grid
from repro.experiments.systems import SYSTEM_NAMES, make_system
from repro.workloads import SysBenchWorkload, TPCCWorkload


def tiny_workload(**kwargs):
    defaults = dict(scale=0.05, n_requests=300)
    defaults.update(kwargs)
    return SysBenchWorkload(**defaults)


class TestSystemsFactory:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_every_architecture_builds(self, name):
        system = make_system(name, tiny_workload())
        assert system.capacity_blocks == tiny_workload().n_blocks

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            make_system("zfs", tiny_workload())

    def test_icash_gets_paper_style_budgets(self):
        workload = tiny_workload()
        system = make_system("icash", workload)
        assert isinstance(system, ICASHController)
        assert system.config.ssd_capacity_blocks \
            == workload.ssd_budget_blocks

    def test_fusion_io_holds_whole_dataset(self):
        workload = tiny_workload()
        system = make_system("fusion-io", workload)
        assert isinstance(system, PureSSD)
        assert system.ssd.capacity_blocks == workload.n_blocks


class TestRunner:
    def test_run_produces_complete_result(self):
        workload = tiny_workload()
        system = make_system("fusion-io", workload)
        result = run_benchmark(workload, system, warmup_fraction=0.3)
        assert result.n_requests == 300
        assert result.n_measured == 210
        assert result.wall_time_s > 0
        assert result.transactions_per_s > 0
        assert result.read_mean_us > 0
        assert result.energy.total_wh >= 0
        assert 0 <= result.cpu_utilization <= 1

    def test_verified_run_checks_content(self):
        workload = tiny_workload()
        system = make_system("icash", workload)
        result = run_benchmark(workload, system, verify_reads=True)
        assert result.verified_reads > 0

    def test_warmup_excluded_from_measurement(self):
        workload = tiny_workload()
        system = make_system("fusion-io", workload)
        result = run_benchmark(workload, system, warmup_fraction=0.5)
        assert result.n_measured == 150
        assert result.full_wall_time_s >= result.wall_time_s

    def test_preload_writes_not_counted_as_runtime(self):
        workload = tiny_workload()
        system = make_system("fusion-io", workload)
        result = run_benchmark(workload, system, preload=True)
        # The ingest wrote every block, but the reported count only
        # covers the benchmark itself.
        assert result.ssd_write_ops < workload.n_blocks

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark(tiny_workload(),
                          make_system("fusion-io", tiny_workload()),
                          warmup_fraction=1.0)

    def test_run_grid_covers_all_systems(self):
        results = run_grid(lambda: tiny_workload(), SYSTEM_NAMES)
        assert set(results) == set(SYSTEM_NAMES)

    def test_tx_response_and_scores_positive(self):
        workload = tiny_workload()
        system = make_system("raid0", workload)
        result = run_benchmark(workload, system)
        assert result.tx_response_ms > 0
        assert result.loadsim_score == pytest.approx(
            result.tx_response_ms * 1e3)


class TestReporting:
    MEASURED = {"fusion-io": 10.0, "raid0": 2.0, "icash": 12.0}
    PAPER = {"fusion-io": 180.0, "raid0": 85.0, "icash": 190.0}

    def test_comparison_table_renders_rows(self):
        text = comparison_table("T", ["fusion-io", "raid0", "icash"],
                                self.MEASURED, self.PAPER, unit="tx/s")
        assert "fusion-io" in text
        assert "tx/s" in text
        assert "paper" in text

    def test_normalize(self):
        normalized = normalize(self.MEASURED)
        assert normalized["fusion-io"] == 1.0
        assert normalized["icash"] == pytest.approx(1.2)

    def test_normalize_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize({"icash": 1.0})

    def test_shape_check_all_preserved(self):
        checks = shape_check(self.MEASURED, self.PAPER)
        assert checks and all(checks.values())
        assert shape_score(self.MEASURED, self.PAPER) == 1.0

    def test_shape_check_detects_flips(self):
        flipped = dict(self.MEASURED)
        flipped["raid0"] = 100.0  # now beats fusion-io, unlike the paper
        checks = shape_check(flipped, self.PAPER)
        assert not all(checks.values())
        assert shape_score(flipped, self.PAPER) < 1.0

    def test_render_shape_check(self):
        text = render_shape_check(self.MEASURED, self.PAPER)
        assert "pairwise orderings preserved" in text

    def test_speedup_conventions(self):
        up = speedup_summary(self.MEASURED, "fusion-io", better="higher")
        assert up["icash_over_fusion-io"] == pytest.approx(1.2)
        down = speedup_summary({"icash": 2.0, "raid0": 8.0}, "raid0",
                               better="lower")
        assert down["icash_over_raid0"] == pytest.approx(4.0)


class TestPaperData:
    def test_all_figures_cover_five_systems(self):
        for table in (paperdata.FIG6A_SYSBENCH_TPS,
                      paperdata.FIG10A_TPCC_TPS,
                      paperdata.FIG12_LOADSIM_SCORE,
                      paperdata.FIG14_RUBIS_RPS):
            assert set(table) == set(paperdata.SYSTEMS)

    def test_headline_claims_encoded(self):
        # I-CASH beats everything on SysBench (Figure 6a)...
        fig6a = paperdata.FIG6A_SYSBENCH_TPS
        assert fig6a["icash"] == max(fig6a.values())
        # ...loses to pure SSD on LoadSim (Figure 12, lower=better)...
        fig12 = paperdata.FIG12_LOADSIM_SCORE
        assert fig12["fusion-io"] < fig12["icash"]
        # ...and wins 2.8x on five TPC-C VMs (Figure 15).
        assert paperdata.FIG15_TPCC_5VMS_NORM["icash"] == pytest.approx(2.8)

    def test_table6_has_no_raid_column(self):
        for bench in paperdata.TABLE6_SSD_WRITES.values():
            assert "raid0" not in bench
