"""Unit tests for the Heatmap, including the paper's Table 1 worked
example reproduced value for value."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heatmap import Heatmap

# The paper's toy alphabet: contents A,B,C,D have signatures a,b,c,d.
A, B, C, D = 0, 1, 2, 3


class TestTable1Example:
    """Table 1: 2 sub-blocks per block, Vs = 4, four requests."""

    def test_buildup_step_by_step(self):
        heatmap = Heatmap(rows=2, values=4)
        assert heatmap.row(0) == (0, 0, 0, 0)
        assert heatmap.row(1) == (0, 0, 0, 0)

        heatmap.record((A, B))       # LBA1: content (A, B)
        assert heatmap.row(0) == (1, 0, 0, 0)
        assert heatmap.row(1) == (0, 1, 0, 0)

        heatmap.record((C, D))       # LBA2: content (C, D)
        assert heatmap.row(0) == (1, 0, 1, 0)
        assert heatmap.row(1) == (0, 1, 0, 1)

        heatmap.record((A, D))       # LBA3: content (A, D)
        assert heatmap.row(0) == (2, 0, 1, 0)
        assert heatmap.row(1) == (0, 1, 0, 2)

        heatmap.record((B, D))       # LBA4: content (B, D)
        assert heatmap.row(0) == (2, 1, 1, 0)
        assert heatmap.row(1) == (0, 1, 0, 3)

    def test_popularities_match_table2(self):
        """Table 2's popularity column: 3, 4, 5, 4."""
        heatmap = Heatmap(rows=2, values=4)
        for sigs in ((A, B), (C, D), (A, D), (B, D)):
            heatmap.record(sigs)
        assert heatmap.popularity((A, B)) == 3
        assert heatmap.popularity((C, D)) == 4
        assert heatmap.popularity((A, D)) == 5
        assert heatmap.popularity((B, D)) == 4


class TestHeatmapMechanics:
    def test_default_dimensions_match_prototype(self):
        heatmap = Heatmap()
        assert heatmap.rows == 8
        assert heatmap.values == 256

    def test_record_validates_signature_count(self):
        heatmap = Heatmap(rows=2, values=4)
        with pytest.raises(ValueError):
            heatmap.record((1,))

    def test_record_validates_signature_range(self):
        heatmap = Heatmap(rows=2, values=4)
        with pytest.raises(ValueError):
            heatmap.record((0, 4))

    def test_total_accesses(self):
        heatmap = Heatmap(rows=2, values=4)
        heatmap.record((0, 0))
        heatmap.record((1, 1))
        assert heatmap.total_accesses == 2

    def test_reset(self):
        heatmap = Heatmap(rows=2, values=4)
        heatmap.record((0, 0))
        heatmap.reset()
        assert heatmap.total_accesses == 0
        assert heatmap.popularity((0, 0)) == 0

    def test_decay_halves_counters(self):
        heatmap = Heatmap(rows=1, values=2)
        for _ in range(4):
            heatmap.record((0,))
        heatmap.decay(0.5)
        assert heatmap.popularity((0,)) == 2

    def test_decay_factor_validated(self):
        with pytest.raises(ValueError):
            Heatmap().decay(1.5)

    def test_temporal_locality_captured(self):
        """Re-accessing one block raises its own popularity."""
        heatmap = Heatmap(rows=2, values=4)
        heatmap.record((A, B))
        before = heatmap.popularity((A, B))
        heatmap.record((A, B))
        assert heatmap.popularity((A, B)) == before + 2

    def test_content_locality_captured(self):
        """Accessing a *similar* block (shared sub-signatures at the same
        positions) raises the popularity of both — the Heatmap's point."""
        heatmap = Heatmap(rows=2, values=4)
        heatmap.record((A, D))
        heatmap.record((B, D))  # shares sub-signature D at row 1
        assert heatmap.popularity((A, D)) == 3

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Heatmap(rows=0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    max_size=50))
    def test_row_sums_equal_access_count(self, accesses):
        """Invariant: every access adds exactly one count per row."""
        heatmap = Heatmap(rows=2, values=4)
        for sigs in accesses:
            heatmap.record(sigs)
        for row in range(2):
            assert sum(heatmap.row(row)) == len(accesses)
