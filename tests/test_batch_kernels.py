"""Batch kernels, memoised streams, and the shared-memory fan-out.

Three families of guarantees:

* **golden equivalence** — every vectorised batch kernel in
  :mod:`repro.core.batch` (and the batched scanner/heatmap entry
  points) must be bit-identical to its scalar twin on random shapes,
  non-contiguous views, empty batches and single blocks;
* **memoisation transparency** — the request-stream cache and the
  controller's delta-reconstruction memo must be invisible: identical
  requests, shadow state and read contents whether or not a cache was
  hit;
* **arena lifetime** — shared-memory segments are owned by the
  publishing process: workers (even SIGKILLed ones) can never unlink
  them, and :func:`shutdown_parallel` always leaves ``/dev/shm`` clean.
"""

import json
import multiprocessing
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (apply_delta_batch, block_signatures_batch,
                              block_signatures_many, encode_delta_batch,
                              signature_tuples)
from repro.core.heatmap import Heatmap
from repro.core.signatures import (SignatureScheme, block_signatures,
                                   clear_signature_cache,
                                   signature_cache_stats)
from repro.delta.encoder import Delta, apply_delta, encode_delta
from repro.sim.request import BLOCK_SIZE


def _random_batch(rng, n):
    return rng.integers(0, 256, size=(n, BLOCK_SIZE), dtype=np.uint8)


def _edited_pairs(rng, n, max_edits=24):
    """(targets, references) with clustered random edits per row."""
    references = _random_batch(rng, n)
    targets = references.copy()
    for row in range(n):
        for _ in range(int(rng.integers(0, max_edits + 1))):
            start = int(rng.integers(0, BLOCK_SIZE))
            length = int(rng.integers(1, 64))
            targets[row, start:start + length] = rng.integers(0, 256)
    return targets, references


# ---------------------------------------------------------------------------
# block_signatures_batch vs the scalar implementation
# ---------------------------------------------------------------------------


class TestSignatureBatchEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 24),
           scheme=st.sampled_from(list(SignatureScheme)))
    def test_matches_scalar_on_random_batches(self, seed, n, scheme):
        clear_signature_cache()
        rng = np.random.default_rng(seed)
        batch = _random_batch(rng, n)
        matrix = block_signatures_batch(batch, scheme)
        assert matrix.shape == (n, 8) and matrix.dtype == np.uint8
        assert signature_tuples(matrix) \
            == [block_signatures(batch[i], scheme) for i in range(n)]

    def test_non_contiguous_view_input(self, rng):
        clear_signature_cache()
        doubled = _random_batch(rng, 12)
        view = doubled[::2]  # stride-2 rows: not C-contiguous
        assert not view.flags.c_contiguous
        assert signature_tuples(block_signatures_batch(view)) \
            == [block_signatures(row) for row in view]

    def test_single_block_and_empty_batch(self, rng):
        clear_signature_cache()
        one = _random_batch(rng, 1)
        assert signature_tuples(block_signatures_batch(one)) \
            == [block_signatures(one[0])]
        empty = block_signatures_batch(
            np.empty((0, BLOCK_SIZE), dtype=np.uint8))
        assert empty.shape == (0, 8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            block_signatures_batch(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            block_signatures_batch(
                np.zeros((2, BLOCK_SIZE), dtype=np.uint16))


class TestBlockSignaturesMany:
    def test_matches_scalar_list(self, rng):
        clear_signature_cache()
        blocks = list(_random_batch(rng, 10))
        blocks.append(blocks[0].copy())  # in-batch duplicate
        assert block_signatures_many(blocks) \
            == [block_signatures(b) for b in blocks]

    def test_mixed_hits_and_misses(self, rng):
        clear_signature_cache()
        blocks = list(_random_batch(rng, 6))
        for block in blocks[:3]:
            block_signatures(block)  # pre-warm half the batch
        before = signature_cache_stats()
        result = block_signatures_many(blocks)
        after = signature_cache_stats()
        assert result == [block_signatures(b) for b in blocks]
        assert after["hits"] >= before["hits"] + 3
        assert after["misses"] >= before["misses"] + 3

    def test_cache_size_bytes_and_evictions_accounted(self, rng):
        from repro.core.signatures import SIGNATURE_CACHE_CAPACITY

        clear_signature_cache()
        block_signatures_many(list(_random_batch(rng, 8)))
        stats = signature_cache_stats()
        assert stats["size"] == 8
        # Every entry pins its key (scheme tag + 4 KB of content), the
        # signature tuple, and LRU bookkeeping; the accounting must grow
        # with the population and reset with it.
        assert stats["size_bytes"] > 8 * BLOCK_SIZE
        assert stats["evictions"] == 0
        per_entry = stats["size_bytes"] // 8
        for chunk in range(0, SIGNATURE_CACHE_CAPACITY + 64, 64):
            block_signatures_many(list(_random_batch(rng, 64)))
        stats = signature_cache_stats()
        assert stats["evictions"] > 0
        assert stats["size"] <= SIGNATURE_CACHE_CAPACITY
        assert stats["size_bytes"] \
            <= (SIGNATURE_CACHE_CAPACITY + 1) * per_entry
        clear_signature_cache()
        assert signature_cache_stats()["size_bytes"] == 0


# ---------------------------------------------------------------------------
# encode/apply batch vs the scalar codec
# ---------------------------------------------------------------------------


class TestDeltaBatchEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 16))
    def test_encode_matches_scalar(self, seed, n):
        rng = np.random.default_rng(seed)
        targets, references = _edited_pairs(rng, n)
        batch = encode_delta_batch(targets, references)
        scalar = [encode_delta(targets[i], references[i])
                  for i in range(n)]
        assert len(batch) == n
        for got, want in zip(batch, scalar):
            assert got.runs == want.runs
            assert got.size_bytes == want.size_bytes
            assert got.serialize() == want.serialize()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 16))
    def test_apply_matches_scalar(self, seed, n):
        rng = np.random.default_rng(seed)
        targets, references = _edited_pairs(rng, n)
        deltas = [encode_delta(targets[i], references[i])
                  for i in range(n)]
        batch = apply_delta_batch(deltas, references)
        assert batch.shape == (n, BLOCK_SIZE)
        assert np.array_equal(batch, targets)
        for i in range(n):
            assert np.array_equal(batch[i],
                                  apply_delta(deltas[i], references[i]))

    def test_identity_and_full_rewrite_rows(self, rng):
        references = _random_batch(rng, 3)
        targets = references.copy()
        targets[1] += 1  # uint8 wrap: every byte differs
        deltas = encode_delta_batch(targets, references)
        assert deltas[0].is_identity and deltas[2].is_identity
        assert deltas[1].runs == encode_delta(targets[1],
                                              references[1]).runs
        assert np.array_equal(apply_delta_batch(deltas, references),
                              targets)

    def test_non_contiguous_views(self, rng):
        doubled_t, doubled_r = _edited_pairs(rng, 8)
        t_view, r_view = doubled_t[::2], doubled_r[::2]
        batch = encode_delta_batch(t_view, r_view)
        for i in range(t_view.shape[0]):
            assert batch[i].runs == encode_delta(t_view[i],
                                                 r_view[i]).runs

    def test_empty_batch(self):
        empty = np.empty((0, BLOCK_SIZE), dtype=np.uint8)
        assert encode_delta_batch(empty, empty) == []
        assert apply_delta_batch([], empty).shape == (0, BLOCK_SIZE)

    def test_apply_rejects_out_of_block_runs(self, rng):
        references = _random_batch(rng, 1)
        bad = Delta(runs=((BLOCK_SIZE - 2, b"toolong"),))
        with pytest.raises(ValueError):
            apply_delta_batch([bad], references)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            encode_delta_batch(_random_batch(rng, 2),
                               _random_batch(rng, 3))
        with pytest.raises(ValueError):
            apply_delta_batch([Delta(runs=())], _random_batch(rng, 2))


# ---------------------------------------------------------------------------
# Heatmap batch entry points
# ---------------------------------------------------------------------------


class TestHeatmapBatch:
    def test_record_and_popularity_match_scalar(self, rng):
        matrix = np.asarray(
            signature_tuples(
                block_signatures_batch(_random_batch(rng, 20))),
            dtype=np.int64)
        scalar, batch = Heatmap(), Heatmap()
        for row in matrix:
            scalar.record(tuple(int(v) for v in row))
        batch.record_batch(matrix)
        assert scalar.total_accesses == batch.total_accesses
        pops = batch.popularity_batch(matrix)
        for i, row in enumerate(matrix):
            sig = tuple(int(v) for v in row)
            assert scalar.popularity(sig) == batch.popularity(sig)
            assert int(pops[i]) == scalar.popularity(sig)


# ---------------------------------------------------------------------------
# Batched similarity scan: three-way equivalence
# ---------------------------------------------------------------------------


class TestScannerBatchEquivalence:
    @staticmethod
    def _outcome(blocks, incremental, batched):
        from repro.core.cache import ICashCache
        from repro.core.similarity import SimilarityScanner
        from repro.core.virtual_block import BlockKind, VirtualBlock
        from repro.delta.segments import SegmentPool

        cache = ICashCache(max_virtual_blocks=1024,
                           data_ram_bytes=512 * BLOCK_SIZE,
                           segment_pool=SegmentPool(1 << 20))
        heatmap = Heatmap()
        for lba, content in blocks:
            vb = VirtualBlock(lba=lba, kind=BlockKind.INDEPENDENT)
            vb.signatures = block_signatures(content)
            cache.insert(vb)
            cache.attach_data(vb, content)
            heatmap.record(vb.signatures)
        scanner = SimilarityScanner(heatmap, min_signature_match=4,
                                    delta_accept_bytes=2048,
                                    scan_compare_s=2e-6, compress_s=15e-6,
                                    use_incremental_index=incremental,
                                    use_batch_match=batched)
        result = scanner.scan(cache, window=100, max_new_references=50,
                              content_fn=lambda vb: vb.data)
        return {
            "new_references": [vb.lba for vb in result.new_references],
            "associations": [(a.vb.lba, a.ref_lba, a.delta.runs)
                             for a in result.associations],
            "comparisons": result.comparisons,
            "cpu_time": result.cpu_time,
        }

    def test_three_way_equivalence(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            blocks = []
            lba = 0
            for family in range(2 + seed % 3):
                base = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                for member in range(3 + seed % 4):
                    content = base.copy()
                    content[member * 16:member * 16 + 24] = family
                    blocks.append((lba, content))
                    lba += 1
            for _ in range(seed * 2):
                blocks.append((lba, rng.integers(0, 256, BLOCK_SIZE,
                                                 dtype=np.uint8)))
                lba += 1
            direct = self._outcome(blocks, incremental=False,
                                   batched=False)
            indexed = self._outcome(blocks, incremental=True,
                                    batched=False)
            batched = self._outcome(blocks, incremental=True,
                                    batched=True)
            assert direct == indexed == batched, \
                f"scan paths diverged for seed {seed}"


# ---------------------------------------------------------------------------
# Batched ingest sweep: speculative encode equals the scalar reference
# ---------------------------------------------------------------------------


class TestIngestSweepEquivalence:
    @staticmethod
    def _ingested(workload_cls, batch, chunk):
        from repro.core.controller import ICASHController

        workload = workload_cls(scale=0.02, n_requests=1, seed=17)
        controller = ICASHController(workload.build_dataset())
        controller.use_batch_ingest = batch
        controller.INGEST_CHUNK = chunk
        setup_s = controller.ingest()
        return controller, setup_s

    @pytest.mark.parametrize("chunk", [4, 256])
    @pytest.mark.parametrize("workload_name", ["sysbench", "specsfs"])
    def test_batched_sweep_matches_scalar(self, workload_name, chunk):
        from repro.workloads.specsfs import SpecSFSWorkload
        from repro.workloads.sysbench import SysBenchWorkload

        cls = {"sysbench": SysBenchWorkload,
               "specsfs": SpecSFSWorkload}[workload_name]
        scalar, scalar_s = self._ingested(cls, batch=False, chunk=chunk)
        batched, batched_s = self._ingested(cls, batch=True, chunk=chunk)
        # chunk=4 forces intra-chunk promotions into nearly every window,
        # exercising the speculation-miss fallback; chunk=256 is the
        # production shape.
        assert scalar_s == batched_s
        assert scalar.cpu_time == batched.cpu_time
        assert scalar.stats.counters() == batched.stats.counters()
        assert set(scalar._ssd_data) == set(batched._ssd_data)
        for lba in scalar._ssd_data:
            assert np.array_equal(scalar._ssd_data[lba],
                                  batched._ssd_data[lba])
        assert ({lba: (e.ref_lba, e.log_slot)
                 for lba, e in scalar._delta_map.items()}
                == {lba: (e.ref_lba, e.log_slot)
                    for lba, e in batched._delta_map.items()})


# ---------------------------------------------------------------------------
# Heatmap deferred scatter: buffering is invisible to every reader
# ---------------------------------------------------------------------------


class TestHeatmapDeferredScatter:
    def test_readers_observe_buffered_records(self):
        heatmap = Heatmap(rows=2, values=8)
        heatmap.record((1, 2))
        heatmap.record((1, 3))
        # total_accesses is eager; the scatter itself is pending.
        assert heatmap.total_accesses == 2
        assert heatmap._pending
        assert heatmap.popularity((1, 2)) == 3  # 2 hits row0=1, 1 hit row1=2
        assert not heatmap._pending
        heatmap.record((1, 2))
        assert heatmap.row(0) == (0, 3, 0, 0, 0, 0, 0, 0)
        heatmap.record((0, 0))
        heatmap.decay(0.5)
        assert heatmap.row(0) == (0, 1, 0, 0, 0, 0, 0, 0)

    def test_reset_discards_pending(self):
        heatmap = Heatmap(rows=2, values=8)
        heatmap.record((1, 2))
        heatmap.reset()
        assert heatmap.total_accesses == 0
        assert heatmap.popularity((1, 2)) == 0


# ---------------------------------------------------------------------------
# Request-stream memoisation: replay is invisible
# ---------------------------------------------------------------------------


def _stream_fingerprint(workload):
    records = []
    for request in workload.requests():
        entry = (request.op.value, request.lba, request.nblocks)
        if request.is_write:
            entry += (b"".join(b.tobytes() for b in request.payload),)
        records.append(entry)
    return records, workload.shadow.copy()


class TestStreamCache:
    def test_replay_identical_to_generation(self):
        from repro.workloads import base as workload_base
        from repro.workloads.sysbench import SysBenchWorkload

        workload_base.clear_stream_cache()
        first = SysBenchWorkload(scale=0.25, n_requests=300, seed=11)
        gen_stream, gen_shadow = _stream_fingerprint(first)
        assert workload_base.stream_cache_stats()["misses"] == 1
        replay = SysBenchWorkload(scale=0.25, n_requests=300, seed=11)
        rep_stream, rep_shadow = _stream_fingerprint(replay)
        assert workload_base.stream_cache_stats()["hits"] == 1
        assert rep_stream == gen_stream
        assert np.array_equal(rep_shadow, gen_shadow)
        # Restarting the original instance replays too.
        again_stream, again_shadow = _stream_fingerprint(first)
        assert again_stream == gen_stream
        assert np.array_equal(again_shadow, gen_shadow)

    def test_different_parameters_do_not_collide(self):
        from repro.workloads import base as workload_base
        from repro.workloads.sysbench import SysBenchWorkload

        workload_base.clear_stream_cache()
        a, _ = _stream_fingerprint(
            SysBenchWorkload(scale=0.25, n_requests=200, seed=1))
        b, _ = _stream_fingerprint(
            SysBenchWorkload(scale=0.25, n_requests=200, seed=2))
        assert a != b
        assert workload_base.stream_cache_stats()["misses"] == 2

    def test_partial_consumption_never_seeds_the_cache(self):
        from repro.workloads import base as workload_base
        from repro.workloads.sysbench import SysBenchWorkload

        workload_base.clear_stream_cache()
        workload = SysBenchWorkload(scale=0.25, n_requests=200, seed=3)
        stream = workload.requests()
        for _ in range(10):
            next(stream)
        stream.close()
        assert workload_base.stream_cache_stats()["size"] == 0
        # The next full pass generates (a miss), not a truncated replay.
        full, _ = _stream_fingerprint(workload)
        assert len(full) == 200
        assert workload_base.stream_cache_stats()["size"] == 1

    def test_payloads_are_frozen(self):
        from repro.workloads.sysbench import SysBenchWorkload

        workload = SysBenchWorkload(scale=0.25, n_requests=120, seed=5)
        for request in workload.requests():
            if request.is_write:
                with pytest.raises(ValueError):
                    request.payload[0][0] = 1
                break

    def test_cache_is_bounded(self):
        from repro.workloads import base as workload_base
        from repro.workloads.sysbench import SysBenchWorkload

        workload_base.clear_stream_cache()
        for seed in range(workload_base.STREAM_CACHE_CAPACITY + 2):
            list(SysBenchWorkload(scale=0.05, n_requests=40,
                                  seed=seed).requests())
        stats = workload_base.stream_cache_stats()
        assert stats["size"] <= workload_base.STREAM_CACHE_CAPACITY
        assert stats["bytes"] <= workload_base.STREAM_CACHE_MAX_BYTES
        workload_base.clear_stream_cache()
        assert workload_base.stream_cache_stats()["bytes"] == 0


# ---------------------------------------------------------------------------
# Controller reconstruction memo: correct across delta/reference churn
# ---------------------------------------------------------------------------


class TestReconstructionMemo:
    def test_verified_run_exercises_hits(self):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.systems import make_system
        from repro.workloads import SysBenchWorkload

        workload = SysBenchWorkload(scale=0.25, n_requests=600, seed=7)
        system = make_system("icash", workload)
        result = run_benchmark(workload, system, verify_reads=True)
        assert result.verified_reads > 0
        # The skewed stream re-reads associates, so the memo must both
        # hit and stay invisible to verification.
        assert system.stats.count("recon_cache_hits") > 0
        assert system.stats.count("delta_reconstructions") \
            >= system.stats.count("recon_cache_hits")

    def test_reference_version_bump_invalidates(self):
        from repro.core.controller import ICASHController

        controller = ICASHController.__new__(ICASHController)
        from collections import OrderedDict
        controller._recon_cache = OrderedDict()
        controller._ssd_versions = {}

        class _Stats:
            def bump(self, *a, **k):
                pass

        controller.stats = _Stats()
        reference = np.zeros(BLOCK_SIZE, dtype=np.uint8)
        controller._ssd_data = {9: reference}
        delta = Delta(runs=((0, b"\x07\x07"),))
        first = controller._reconstruct(1, delta, 9)
        assert first[0] == 7
        assert controller._reconstruct(1, delta, 9) is first  # memo hit
        # Same delta object, changed reference bytes: the version bump
        # must force a re-apply.
        controller._ssd_data[9] = np.full(BLOCK_SIZE, 5, dtype=np.uint8)
        controller._note_ssd_content_changed(9)
        second = controller._reconstruct(1, delta, 9)
        assert second is not first
        assert second[2] == 5 and second[0] == 7


# ---------------------------------------------------------------------------
# Shared-memory arena: lifetime, cleanup, and the jobs-N fan-out
# ---------------------------------------------------------------------------


def _attach_and_die(name):  # pragma: no cover - runs in a child process
    from multiprocessing import shared_memory, resource_tracker

    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    os.kill(os.getpid(), signal.SIGKILL)


class TestDatasetArena:
    def test_publish_attach_release_roundtrip(self, rng):
        from multiprocessing import shared_memory

        from repro.experiments.parallel import DatasetArena

        data = rng.integers(0, 256, size=(8, BLOCK_SIZE), dtype=np.uint8)
        with DatasetArena() as arena:
            name, shape = arena.publish(("k", 1), data)
            assert arena.publish(("k", 1), data) == (name, shape)
            assert len(arena) == 1
            shm = shared_memory.SharedMemory(name=name)
            seen = np.ndarray(shape, dtype=np.uint8,
                              buffer=shm.buf).copy()
            shm.close()
            assert np.array_equal(seen, data)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_killed_child_cannot_unlink_segments(self, rng):
        from multiprocessing import shared_memory

        from repro.experiments.parallel import DatasetArena

        data = rng.integers(0, 256, size=(4, BLOCK_SIZE), dtype=np.uint8)
        arena = DatasetArena()
        try:
            name, _shape = arena.publish("key", data)
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(target=_attach_and_die, args=(name,))
            child.start()
            child.join(timeout=30)
            assert child.exitcode == -signal.SIGKILL
            # The segment must have survived the child's death...
            shm = shared_memory.SharedMemory(name=name)
            shm.close()
        finally:
            arena.release()
        # ... and the owner's release must still unlink it cleanly.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        arena.release()  # idempotent

    def test_shutdown_parallel_is_idempotent_and_clean(self):
        from repro.experiments import parallel

        parallel.shutdown_parallel()
        arena = parallel._get_arena()
        arena.publish("key", np.zeros((1, BLOCK_SIZE), dtype=np.uint8))
        names = [ref[0] for ref in arena.refs().values()]
        parallel.shutdown_parallel()
        parallel.shutdown_parallel()
        for name in names:
            assert not os.path.exists(os.path.join("/dev/shm", name))


class TestPersistentPool:
    def test_pool_reused_across_run_specs_calls(self):
        from repro.experiments import parallel
        from repro.experiments.parallel import RunSpec, run_specs

        parallel.shutdown_parallel()
        specs = [RunSpec(workload="sysbench", system=system,
                         n_requests=120, scale=0.05)
                 for system in ("icash", "lru")]
        try:
            run_specs(specs, jobs=2)
            first_pool = parallel._pool
            assert first_pool is not None
            run_specs(specs, jobs=2)
            assert parallel._pool is first_pool
            # Growing the worker count replaces the pool...
            run_specs(specs + specs, jobs=3)
            grown = parallel._pool
            assert grown is not first_pool
            # ... but a smaller wave reuses the grown pool.
            run_specs(specs, jobs=2)
            assert parallel._pool is grown
        finally:
            parallel.shutdown_parallel()
        assert parallel._pool is None

    def test_arena_path_byte_identical_to_local_rebuild(self):
        from repro.experiments import parallel
        from repro.experiments.parallel import RunSpec, run_specs
        from repro.workloads import content as content_model

        parallel.shutdown_parallel()
        content_model.clear_dataset_cache()
        specs = [RunSpec(workload="sysbench", system=system,
                         n_requests=150, scale=0.05)
                 for system in ("icash", "lru")]
        try:
            shared = run_specs(specs, jobs=2, use_arena=True)
            assert len(parallel._get_arena()) > 0
            plain = run_specs(specs, jobs=2, use_arena=False)
        finally:
            parallel.shutdown_parallel()
        for left, right in zip(shared, plain):
            assert json.dumps(left.result.to_payload(), sort_keys=True) \
                == json.dumps(right.result.to_payload(), sort_keys=True)
