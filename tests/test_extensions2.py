"""Tests for the second wave of extensions: flush-order policy, sibling
hydration revival, the controller status report and TraceWorkload."""

import numpy as np
import pytest

from repro.core import ICASHConfig, ICASHController
from repro.sim.request import BLOCK_SIZE
from repro.workloads import TPCCWorkload
from repro.workloads.trace_io import TraceWorkload, save_trace

from test_core_controller import family_dataset, small_config


class TestFlushOrder:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="flush_order"):
            ICASHConfig(flush_order="random")

    @pytest.mark.parametrize("order", ["arrival", "lba"])
    def test_both_orders_preserve_content(self, order, rng):
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(flush_order=order))
        controller.ingest()
        shadow = dataset.copy()
        for _ in range(400):
            lba = int(rng.integers(0, 256))
            content = shadow[lba].copy()
            content[0:48] = rng.integers(0, 256, 48)
            shadow[lba] = content
            controller.write(lba, [content])
        controller.flush()
        for lba in range(0, 256, 5):
            _, (out,) = controller.read(lba)
            assert np.array_equal(out, shadow[lba])

    def test_arrival_order_groups_write_bursts(self):
        """Deltas written back-to-back land in the same delta block
        under arrival order, even at scattered addresses."""
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(flush_order="arrival"))
        controller.ingest()
        mapped = list(controller.delta_map_snapshot())[:6]
        scattered = [mapped[i] for i in (5, 0, 3, 1, 4, 2)]
        for lba in scattered:
            content = controller.backing.get(lba)
            content[0:20] = 7
            controller.write(lba, [content])
        logged_before = controller.log.blocks_written
        controller.flush()
        new_blocks = controller.log.blocks_written - logged_before
        # Six small deltas share one (maybe two) packed blocks.
        assert new_blocks <= 2
        slot = controller.delta_map_snapshot()[scattered[0]][1]
        packed_lbas = {r.lba for r in controller.log.peek_block(slot)}
        assert set(scattered[:4]) & packed_lbas  # burst co-packed


class TestHydrationRevival:
    def test_log_fetch_revives_sibling_metadata(self):
        """One mechanical log read makes its co-packed deltas servable
        from RAM — §3.1's 'one HDD operation yields many I/Os'."""
        dataset = family_dataset()
        controller = ICASHController(
            dataset, small_config(delta_ram_bytes=8 * 1024))
        controller.ingest()
        evicted = [lba for lba in controller.delta_map_snapshot()
                   if lba not in controller.cache]
        assert evicted, "tiny pool must leave some deltas log-only"
        controller.read(evicted[0])
        hydrated = controller.stats.count("delta_hydrations")
        assert hydrated >= 1
        # A hydrated sibling now reads without another HDD access.
        siblings = [lba for lba in evicted[1:]
                    if lba in controller.cache
                    and controller.cache.get(lba, touch=False).has_delta]
        if siblings:
            hdd_reads = controller.hdd.read_ops
            controller.read(siblings[0])
            assert controller.hdd.read_ops == hdd_reads


class TestDescribe:
    def test_report_covers_the_essentials(self):
        controller = ICASHController(family_dataset(), small_config())
        controller.ingest()
        text = controller.describe()
        for needle in ("block population", "reference", "associate",
                       "delta pool", "ssd", "log", "dirty deltas",
                       "write amplification"):
            assert needle in text

    def test_report_shows_nvram_medium(self):
        controller = ICASHController(
            family_dataset(), small_config(log_on_nvram=True))
        assert "nvram" in controller.describe()


class TestTraceWorkload:
    def test_capture_and_replay_match_source(self, tmp_path):
        source = TPCCWorkload(scale=0.05, n_requests=200)
        trace = TraceWorkload.capture(tmp_path / "t.npz", source)
        assert trace.n_requests == 200
        assert trace.n_blocks == source.n_blocks
        assert trace.ios_per_transaction == source.ios_per_transaction
        replayed = [(r.op, r.lba, r.nblocks) for r in trace.requests()]
        original = [(r.op, r.lba, r.nblocks) for r in source.requests()]
        assert replayed == original

    def test_shadow_tracks_replayed_writes(self, tmp_path):
        source = TPCCWorkload(scale=0.05, n_requests=150)
        trace = TraceWorkload.capture(tmp_path / "t.npz", source)
        for request in trace.requests():
            if request.is_write:
                for offset, block in enumerate(request.payload):
                    assert np.array_equal(
                        trace.shadow[request.lba + offset], block)

    def test_trace_drives_the_runner_with_verification(self, tmp_path):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.systems import make_system
        source = TPCCWorkload(scale=0.05, n_requests=300)
        trace = TraceWorkload.capture(tmp_path / "t.npz", source)
        system = make_system("icash", trace)
        result = run_benchmark(trace, system, verify_reads=True)
        assert result.verified_reads > 0

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceWorkload(tmp_path / "absent.npz",
                          np.zeros((8, BLOCK_SIZE), dtype=np.uint8))
