"""Unit tests for the four baseline architectures."""

import numpy as np
import pytest

from repro.baselines import (DedupCacheStorage, LRUCacheStorage, PureSSD,
                             RAID0Storage)
from repro.sim.request import BLOCK_SIZE

from conftest import make_block, make_dataset


def write_read_roundtrip(system, rng, n_ops=200, n_blocks=64):
    shadow = {lba: system.backing.get(lba) for lba in range(n_blocks)}
    for _ in range(n_ops):
        lba = int(rng.integers(0, n_blocks))
        if rng.random() < 0.5:
            content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            system.write(lba, [content])
            shadow[lba] = content
        else:
            _, (out,) = system.read(lba)
            assert np.array_equal(out, shadow[lba])


class TestPureSSD:
    def test_content_roundtrip(self, rng):
        system = PureSSD(make_dataset(64))
        write_read_roundtrip(system, rng)

    def test_every_write_hits_ssd(self):
        system = PureSSD(make_dataset(16))
        system.write(0, [make_block(1)])
        system.write(5, [make_block(2)])
        assert system.ssd_write_ops == 2

    def test_ingest_fills_footprint(self):
        system = PureSSD(make_dataset(32))
        system.ingest()
        assert system.ssd.footprint_blocks == 32

    def test_read_faster_than_write(self):
        system = PureSSD(make_dataset(16))
        write = system.write(0, [make_block()])
        read, _ = system.read(0)
        assert read < write


class TestRAID0Storage:
    def test_content_roundtrip(self, rng):
        system = RAID0Storage(make_dataset(64))
        write_read_roundtrip(system, rng)

    def test_has_no_ssd(self):
        system = RAID0Storage(make_dataset(16))
        system.write(0, [make_block()])
        assert system.ssd_write_ops == 0

    def test_exposes_member_spindles(self):
        system = RAID0Storage(make_dataset(16), ndisks=4)
        assert len(list(system.devices())) == 4


class TestLRUCacheStorage:
    def make(self, n_blocks=64, cache_blocks=8):
        return LRUCacheStorage(make_dataset(n_blocks),
                               cache_blocks=cache_blocks)

    def test_content_roundtrip(self, rng):
        write_read_roundtrip(self.make(), rng)

    def test_read_miss_then_hit(self):
        system = self.make()
        miss, _ = system.read(3)
        hit, _ = system.read(3)
        assert hit < miss
        assert system.stats.count("cache_hits") == 1
        assert system.stats.count("cache_misses") == 1

    def test_miss_fill_writes_ssd(self):
        """Every miss populates the cache — the SSD-write churn of
        Table 6."""
        system = self.make()
        system.read(0)
        assert system.ssd_write_ops == 1

    def test_lru_eviction_order(self):
        system = self.make(cache_blocks=2)
        system.read(0)
        system.read(1)
        system.read(0)   # 1 is now LRU
        system.read(2)   # evicts 1
        assert system.stats.count("evictions") == 1
        system.read(0)   # still cached
        assert system.stats.count("cache_hits") == 2

    def test_dirty_eviction_destages_in_background(self):
        system = self.make(cache_blocks=1)
        system.write(0, [make_block(1)])
        system.read(1)  # evicts dirty block 0
        assert system.stats.count("destages") == 1
        assert system.background_time > 0
        assert system.hdd.write_ops == 1

    def test_flush_destages_all_dirty(self):
        system = self.make(cache_blocks=4)
        system.write(0, [make_block(1)])
        system.write(1, [make_block(2)])
        latency = system.flush()
        assert latency > 0
        assert system.stats.count("flush_destages") == 2

    def test_hit_ratio(self):
        system = self.make()
        system.read(0)
        system.read(0)
        assert system.hit_ratio == pytest.approx(0.5)

    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            LRUCacheStorage(make_dataset(8), cache_blocks=0)


class TestDedupCacheStorage:
    def make(self, n_blocks=64, cache_blocks=8):
        return DedupCacheStorage(make_dataset(n_blocks),
                                 cache_blocks=cache_blocks)

    def test_content_roundtrip(self, rng):
        write_read_roundtrip(self.make(), rng)

    def test_identical_blocks_share_one_slot(self):
        system = self.make()
        same = make_block(0x42)
        system.write(0, [same])
        system.write(1, [same.copy()])
        system.write(2, [same.copy()])
        assert system.stats.count("dedup_hits") == 2
        assert system.dedup_ratio == pytest.approx(3.0)
        # Three logical blocks, one physical SSD copy.
        assert system.stats.count("unique_inserts") == 1

    def test_dedup_extends_effective_capacity(self):
        """More logical blocks stay cached than the SSD has slots."""
        system = self.make(cache_blocks=4)
        same = make_block(7)
        for lba in range(8):
            system.write(lba, [same.copy()])
        hits = system.stats.count("cache_hits")
        for lba in range(8):
            system.read(lba)
        assert system.stats.count("cache_hits") - hits == 8

    def test_cow_counted_on_shared_block_write(self):
        system = self.make()
        same = make_block(9)
        system.write(0, [same])
        system.write(1, [same.copy()])
        system.write(1, [make_block(10)])  # breaks sharing
        assert system.stats.count("shared_block_cow") == 1

    def test_refcount_drops_free_slots(self):
        system = self.make(cache_blocks=4)
        same = make_block(1)
        system.write(0, [same])
        system.write(1, [same.copy()])
        # Rewriting both with distinct content releases the shared chunk.
        system.write(0, [make_block(2)])
        system.write(1, [make_block(3)])
        assert len(system._chunks) == 2

    def test_hashing_costs_cpu(self):
        system = self.make()
        assert system.cpu_time == 0.0
        system.write(0, [make_block()])
        assert system.cpu_time > 0.0

    def test_eviction_destages_dirty(self):
        system = self.make(cache_blocks=1)
        system.write(0, [make_block(1)])
        system.write(1, [make_block(2)])
        assert system.stats.count("destages") == 1
        assert system.background_time > 0


class TestCommonInterface:
    @pytest.mark.parametrize("factory", [
        lambda ds: PureSSD(ds),
        lambda ds: RAID0Storage(ds),
        lambda ds: LRUCacheStorage(ds, cache_blocks=8),
        lambda ds: DedupCacheStorage(ds, cache_blocks=8),
    ])
    def test_process_records_latency_classes(self, factory):
        from repro.sim.request import make_read, make_write
        system = factory(make_dataset(32))
        system.process(make_read(0))
        system.process(make_write(1, [make_block()]))
        assert system.stats.latency("read").count == 1
        assert system.stats.latency("write").count == 1

    @pytest.mark.parametrize("factory", [
        lambda ds: PureSSD(ds),
        lambda ds: RAID0Storage(ds),
        lambda ds: LRUCacheStorage(ds, cache_blocks=8),
        lambda ds: DedupCacheStorage(ds, cache_blocks=8),
    ])
    def test_span_validation(self, factory):
        system = factory(make_dataset(32))
        with pytest.raises(ValueError):
            system.read(32)
        with pytest.raises(ValueError):
            system.write(31, [make_block(), make_block()])
