"""Fault-injection layer tests: plans, each injector end-to-end on a
live event-engine run, degraded-mode windows, instruments, and the
runner/CLI integration."""

import pytest

from repro.experiments.runner import run_benchmark
from repro.experiments.systems import make_system
from repro.sim.engine import EventEngine
from repro.sim.faults import (FAULT_KINDS, FaultInjector, FaultPlan,
                              FaultSpec, scrub_references)
from repro.sim.load import OpenLoopLoad
from repro.sim.metrics import Monitor
from repro.workloads import SysBenchWorkload


def run_with_fault(kind, n_requests=600, at_request=300, seed=9,
                   rate=3000.0, monitor=None, **knobs):
    workload = SysBenchWorkload(n_requests=n_requests)
    system = make_system("icash", workload)
    plan = FaultPlan.single(kind, at_request=at_request, seed=seed,
                            **knobs)
    result = run_benchmark(workload, system, engine="event",
                           load=OpenLoopLoad(rate, seed=seed),
                           monitor=monitor, fault_plan=plan)
    return result, system


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="RELIABILITY"):
            FaultSpec("disk_on_fire", at_request=10)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("ssd_wearout", at_request=-1)
        with pytest.raises(ValueError):
            FaultSpec("ssd_wearout", at_request=0, wear_fraction=0.0)
        with pytest.raises(ValueError):
            FaultSpec("hdd_failure", at_request=0, rebuild_blocks=0)
        with pytest.raises(ValueError):
            FaultSpec("silent_corruption", at_request=0,
                      corruption_target="ram")

    def test_specs_sorted_by_admission_index(self):
        plan = FaultPlan([FaultSpec("hdd_failure", at_request=50),
                          FaultSpec("power_loss", at_request=10)])
        assert [s.at_request for s in plan.specs] == [10, 50]

    def test_single_builds_one_spec(self):
        plan = FaultPlan.single("power_loss", at_request=7, seed=3)
        assert len(plan) == 1
        assert plan.seed == 3
        assert plan.specs[0].kind == "power_loss"


class TestInjectors:
    def test_ssd_wearout_drives_blocks_to_limit(self):
        result, system = run_with_fault("ssd_wearout",
                                        wear_fraction=0.5)
        outcome = result.faults.outcomes[0]
        assert not outcome.skipped
        assert outcome.station == "ssd"
        assert system.ssd.worn_blocks >= 1
        assert outcome.rebuild_blocks == \
            system.ssd.worn_blocks * system.ssd.spec.pages_per_block
        assert outcome.t_recovered_s is not None
        assert outcome.degraded_s > 0.0

    def test_hdd_failure_injects_rebuild_backlog(self):
        result, _ = run_with_fault("hdd_failure", rebuild_blocks=2048)
        outcome = result.faults.outcomes[0]
        assert not outcome.skipped
        assert outcome.rebuild_blocks == 2048
        # 2048 blocks x 2 transfers at ~41 us each, drained over idle
        # slots: the degraded window is substantial but bounded.
        assert 0.1 < outcome.degraded_s < 10.0

    def test_power_loss_reports_loss_window_and_replays(self):
        result, system = run_with_fault("power_loss")
        outcome = result.faults.outcomes[0]
        assert not outcome.skipped
        assert outcome.data_loss_window_blocks is not None
        assert outcome.data_loss_window_blocks >= 0
        assert system.log.replay_count >= 1
        assert outcome.rebuild_blocks > 0

    def test_reference_corruption_is_detected(self):
        result, _ = run_with_fault("silent_corruption")
        outcome = result.faults.outcomes[0]
        assert outcome.detected is True
        assert result.faults.all_detected

    def test_spill_corruption_is_missed(self):
        result, _ = run_with_fault("silent_corruption",
                                   corruption_target="spill")
        outcome = result.faults.outcomes[0]
        # Spilled blocks carry no signatures: either nothing was
        # spilled yet (skipped) or the corruption went undetected.
        assert outcome.skipped or outcome.detected is False

    def test_scrub_is_clean_without_corruption(self):
        workload = SysBenchWorkload(n_requests=200)
        system = make_system("icash", workload)
        system.ingest()
        assert scrub_references(system) == []

    def test_fault_on_system_without_flash_is_skipped(self):
        workload = SysBenchWorkload(n_requests=300)
        system = make_system("raid0", workload)
        plan = FaultPlan.single("ssd_wearout", at_request=100)
        result = run_benchmark(workload, system, engine="event",
                               load=OpenLoopLoad(2000.0, seed=1),
                               fault_plan=plan)
        assert result.faults.outcomes[0].skipped

    def test_power_loss_on_baseline_without_log_is_skipped(self):
        workload = SysBenchWorkload(n_requests=300)
        system = make_system("fusion-io", workload)
        plan = FaultPlan.single("power_loss", at_request=100)
        result = run_benchmark(workload, system, engine="event",
                               load=OpenLoopLoad(2000.0, seed=1),
                               fault_plan=plan)
        assert result.faults.outcomes[0].skipped


class TestInstrumentsAndReport:
    def test_counters_tick(self):
        monitor = Monitor(interval_s=0.02)
        result, _ = run_with_fault("hdd_failure", monitor=monitor)
        values, kinds = {}, {}
        registry = monitor.registry
        registry.counter("faults_injected_total",
                         ("kind",)).collect(values, kinds)
        registry.counter("rebuild_io_total").collect(values, kinds)
        registry.counter("degraded_mode_seconds").collect(values, kinds)
        assert values['faults_injected_total{kind="hdd_failure"}'] == 1.0
        assert values["rebuild_io_total"] == 4096.0
        outcome = result.faults.outcomes[0]
        assert values["degraded_mode_seconds"] == \
            pytest.approx(outcome.degraded_s)

    def test_report_aggregates(self):
        result, _ = run_with_fault("hdd_failure")
        report = result.faults
        assert report.total_rebuild_blocks == 4096
        assert report.max_recovery_s == report.outcomes[0].degraded_s
        assert "hdd_failure" in report.render()

    def test_no_plan_no_report(self):
        workload = SysBenchWorkload(n_requests=200)
        system = make_system("icash", workload)
        result = run_benchmark(workload, system, engine="event",
                               load=OpenLoopLoad(2000.0, seed=1))
        assert result.faults is None

    def test_legacy_engine_rejects_fault_plan(self):
        workload = SysBenchWorkload(n_requests=200)
        system = make_system("icash", workload)
        with pytest.raises(ValueError, match="event"):
            run_benchmark(workload, system,
                          fault_plan=FaultPlan.single(
                              "power_loss", at_request=10))


class TestEventLogIntegration:
    def run_logged(self, seed=7):
        workload = SysBenchWorkload(n_requests=500)
        system = make_system("icash", workload)
        system.ingest()
        engine = EventEngine(system, keep_event_log=True)
        plan = FaultPlan([FaultSpec("hdd_failure", at_request=200),
                          FaultSpec("ssd_wearout", at_request=300)],
                         seed=seed)
        injector = FaultInjector(plan, system, engine)
        engine.attach_faults(injector)
        engine.run(workload, OpenLoopLoad(2500.0, seed=11))
        return engine.event_log, injector.report()

    def test_faults_appear_in_event_log(self):
        log, _ = self.run_logged()
        fault_entries = [label for _t, action, label in log
                         if action == "fault"]
        assert "hdd_failure:injected" in fault_entries
        assert "ssd_wearout:injected" in fault_entries
        assert "hdd_failure:recovered" in fault_entries

    def test_same_seed_identical_event_log_and_report(self):
        log_a, report_a = self.run_logged()
        log_b, report_b = self.run_logged()
        assert log_a == log_b
        keys_a = [(o.kind, o.t_injected_s, o.t_recovered_s,
                   o.rebuild_blocks, o.detail)
                  for o in report_a.outcomes]
        keys_b = [(o.kind, o.t_injected_s, o.t_recovered_s,
                   o.rebuild_blocks, o.detail)
                  for o in report_b.outcomes]
        assert keys_a == keys_b


class TestKindCoverage:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_has_an_injector(self, kind):
        assert hasattr(FaultInjector, f"_inject_{kind}")
