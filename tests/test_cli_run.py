"""Tests for the 'repro run' diagnosis command."""

from repro.cli import main as cli_main


class TestRunCommand:
    def test_icash_run_prints_diagnosis(self, capsys):
        code = cli_main(["run", "sysbench", "--requests", "800",
                         "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tx/s" in out
        assert "block population" in out
        assert "read path breakdown" in out
        assert "verified byte-exact" in out

    def test_baseline_run_skips_icash_internals(self, capsys):
        code = cli_main(["run", "sysbench", "--system", "fusion-io",
                         "--requests", "600"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tx/s" in out
        assert "block population" not in out
