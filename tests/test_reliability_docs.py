"""docs/RELIABILITY.md is a contract: the fault catalogue, the chaos
scenario matrix (with budgets), and the instrument table must match
`repro.sim.faults` / `repro.experiments.chaos` exactly."""

import re
from pathlib import Path

import pytest

from repro.experiments import chaos
from repro.sim.faults import FAULT_KINDS, _CORRUPTION_TARGETS
from repro.sim.metrics import INSTRUMENT_CATALOGUE

DOC = Path(__file__).resolve().parents[1] / "docs" / "RELIABILITY.md"

FAULT_INSTRUMENTS = ("faults_injected_total", "rebuild_io_total",
                     "degraded_mode_seconds")

SCENARIO_ROW = re.compile(
    r"^\| `([\w-]+)` \| (\w+) \| (\w+) \| (\d+) \| ([\d.]+) "
    r"\| ([\d]+|-) \| (yes|-) \|$", re.MULTILINE)


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text()


class TestFaultCatalogueParity:
    def test_every_fault_kind_has_a_section(self, doc_text):
        sections = set(re.findall(r"^### `(\w+)`", doc_text,
                                  re.MULTILINE))
        assert sections == set(FAULT_KINDS)

    def test_corruption_targets_documented(self, doc_text):
        section = doc_text.split("### `silent_corruption`", 1)[1]
        section = section.split("\n## ", 1)[0]
        for target in _CORRUPTION_TARGETS:
            assert f"`{target}`" in section, \
                f"corruption target {target!r} undocumented"


class TestScenarioMatrixParity:
    def rows(self, doc_text):
        return {m.group(1): m.groups()
                for m in SCENARIO_ROW.finditer(doc_text)}

    def test_documented_ids_match_shipped_scenarios(self, doc_text):
        documented = set(self.rows(doc_text))
        shipped = {s.scenario_id for s in chaos.SCENARIOS}
        assert documented == shipped

    def test_budgets_match(self, doc_text):
        rows = self.rows(doc_text)
        for scenario in chaos.SCENARIOS:
            (_id, workload, kind, budget, recovery, loss,
             detect) = rows[scenario.scenario_id]
            assert workload == scenario.workload
            assert kind == scenario.fault_kind
            assert int(budget) == scenario.breach_budget
            assert float(recovery) == scenario.max_recovery_s
            doc_loss = None if loss == "-" else int(loss)
            assert doc_loss == scenario.max_loss_blocks
            assert (detect == "yes") == scenario.must_detect

    def test_quick_column_documented(self, doc_text):
        # --quick is described as the sysbench column; keep both true.
        assert all(s.workload == "sysbench"
                   for s in chaos.quick_scenarios())
        assert "SysBench column" in doc_text


class TestInstrumentParity:
    @pytest.mark.parametrize("name", FAULT_INSTRUMENTS)
    def test_instrument_in_catalogue_and_doc(self, doc_text, name):
        spec = INSTRUMENT_CATALOGUE[name]
        assert spec.kind == "counter"
        row = re.search(
            rf"^\| `{name}` \| (\w+) \| (\S+) \|", doc_text,
            re.MULTILINE)
        assert row is not None, f"{name} missing from doc table"
        assert row.group(1) == spec.kind
        assert row.group(2) == spec.unit


class TestCrossReferences:
    def test_doc_names_real_modules_and_tests(self, doc_text):
        root = Path(__file__).resolve().parents[1]
        assert "tests/test_reliability_docs.py" in doc_text
        assert (root / "tests" / "test_recovery_edges.py").exists()
        assert "tests/test_recovery_edges.py" in doc_text
        assert "repro.sim.faults" in doc_text
        assert "repro.experiments.chaos" in doc_text
