"""Unit tests for the RAID0 array and DRAM buffer models."""

import pytest

from repro.devices.dram import DRAMBuffer
from repro.devices.hdd import HardDiskDrive
from repro.devices.raid import RAID0Array
from repro.sim.request import BLOCK_SIZE


class TestRAID0Layout:
    def test_split_round_robins_chunks(self):
        raid = RAID0Array(1024, ndisks=4, chunk_blocks=16)
        per_disk = raid._split(0, 64)
        assert set(per_disk) == {0, 1, 2, 3}
        for extents in per_disk.values():
            assert extents == [(0, 16)]

    def test_split_handles_offsets_inside_chunk(self):
        raid = RAID0Array(1024, ndisks=2, chunk_blocks=16)
        per_disk = raid._split(8, 16)
        # 8 blocks finish chunk 0 (disk 0); 8 start chunk 1, which is
        # disk 1's chunk 0, i.e. physical offset 0 on that disk.
        assert per_disk[0] == [(8, 8)]
        assert per_disk[1] == [(0, 8)]

    def test_all_blocks_covered_exactly_once(self):
        raid = RAID0Array(512, ndisks=3, chunk_blocks=8)
        per_disk = raid._split(5, 100)
        covered = sum(take for extents in per_disk.values()
                      for _, take in extents)
        assert covered == 100


class TestRAID0Timing:
    def test_large_request_parallel_beats_single_disk(self):
        raid = RAID0Array(4096, ndisks=4, chunk_blocks=16)
        single = HardDiskDrive(4096)
        parallel = raid.read(0, 64)
        serial = single.read(0, 64)
        # Four disks transfer in parallel: the stripe reads faster than
        # one disk reading the same span.
        assert parallel < serial

    def test_small_request_hits_one_disk(self):
        raid = RAID0Array(4096, ndisks=4, chunk_blocks=16)
        raid.read(0, 4)
        active = [d for d in raid.disks if d.read_ops > 0]
        assert len(active) == 1

    def test_parallel_requests_counter(self):
        raid = RAID0Array(4096, ndisks=4, chunk_blocks=4)
        raid.read(0, 16)
        assert raid.stats.count("parallel_requests") == 1

    def test_member_busy_time_sums(self):
        raid = RAID0Array(4096, ndisks=2, chunk_blocks=8)
        raid.write(0, 16)
        assert raid.member_busy_time == pytest.approx(
            sum(d.busy_time for d in raid.disks))

    def test_validation(self):
        with pytest.raises(ValueError):
            RAID0Array(100, ndisks=0)
        with pytest.raises(ValueError):
            RAID0Array(100, chunk_blocks=0)
        raid = RAID0Array(100)
        with pytest.raises(ValueError):
            raid.read(99, 2)


class TestDRAMBuffer:
    def test_reserve_release_accounting(self):
        ram = DRAMBuffer(1024)
        ram.reserve(512)
        assert ram.used_bytes == 512
        assert ram.free_bytes == 512
        ram.release(512)
        assert ram.used_bytes == 0

    def test_over_reserve_raises(self):
        ram = DRAMBuffer(100)
        with pytest.raises(MemoryError):
            ram.reserve(101)

    def test_over_release_raises(self):
        ram = DRAMBuffer(100)
        ram.reserve(10)
        with pytest.raises(ValueError):
            ram.release(11)

    def test_negative_amounts_rejected(self):
        ram = DRAMBuffer(100)
        with pytest.raises(ValueError):
            ram.reserve(-1)
        with pytest.raises(ValueError):
            ram.release(-1)

    def test_can_fit(self):
        ram = DRAMBuffer(100)
        assert ram.can_fit(100)
        ram.reserve(50)
        assert not ram.can_fit(51)

    def test_access_latency_scales_with_blocks(self):
        ram = DRAMBuffer(1 << 20)
        one = ram.access(BLOCK_SIZE)
        four = ram.access(4 * BLOCK_SIZE)
        assert four == pytest.approx(4 * one)
        assert ram.busy_time == pytest.approx(one + four)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DRAMBuffer(0)
