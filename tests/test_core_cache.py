"""Unit tests for the virtual-block cache and its three replacement
policies (paper Section 4.3)."""

import pytest

from repro.core.cache import ICashCache
from repro.core.virtual_block import BlockKind, VirtualBlock
from repro.delta.encoder import Delta
from repro.delta.segments import SegmentPool
from repro.sim.request import BLOCK_SIZE

from conftest import make_block


def make_cache(max_vbs: int = 64, data_blocks: int = 4,
               pool_bytes: int = 4096) -> ICashCache:
    return ICashCache(max_virtual_blocks=max_vbs,
                      data_ram_bytes=data_blocks * BLOCK_SIZE,
                      segment_pool=SegmentPool(pool_bytes))


def vb_of(lba: int, kind: BlockKind = BlockKind.INDEPENDENT) -> VirtualBlock:
    return VirtualBlock(lba=lba, kind=kind)


def delta_of(nbytes: int) -> Delta:
    return Delta(runs=((0, bytes(nbytes)),))


class TestLRUBehaviour:
    def test_insert_get_contains(self):
        cache = make_cache()
        cache.insert(vb_of(5))
        assert 5 in cache
        assert cache.get(5).lba == 5
        assert len(cache) == 1

    def test_duplicate_insert_rejected(self):
        cache = make_cache()
        cache.insert(vb_of(1))
        with pytest.raises(ValueError):
            cache.insert(vb_of(1))

    def test_get_touches_lru_order(self):
        cache = make_cache()
        for lba in range(3):
            cache.insert(vb_of(lba))
        cache.get(0)  # 0 becomes MRU
        order = [vb.lba for vb in cache.lru_order()]
        assert order == [1, 2, 0]

    def test_get_without_touch(self):
        cache = make_cache()
        for lba in range(3):
            cache.insert(vb_of(lba))
        cache.get(0, touch=False)
        assert [vb.lba for vb in cache.lru_order()] == [0, 1, 2]

    def test_mru_window_returns_hot_end(self):
        cache = make_cache()
        for lba in range(5):
            cache.insert(vb_of(lba))
        window = cache.mru_window(2)
        assert [vb.lba for vb in window] == [4, 3]

    def test_capacity_enforced(self):
        cache = make_cache(max_vbs=8)
        for lba in range(8):
            cache.insert(vb_of(lba))
        with pytest.raises(MemoryError):
            cache.insert(vb_of(99))


class TestDataBudget:
    def test_attach_data_counts(self):
        cache = make_cache(data_blocks=2)
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_data(vb, make_block())
        assert cache.data_blocks_used == 1
        assert cache.data_blocks_free == 1

    def test_data_budget_enforced(self):
        cache = make_cache(data_blocks=1)
        a, b = vb_of(0), vb_of(1)
        cache.insert(a)
        cache.insert(b)
        cache.attach_data(a, make_block())
        with pytest.raises(MemoryError):
            cache.attach_data(b, make_block())

    def test_reattach_does_not_double_count(self):
        cache = make_cache(data_blocks=1)
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_data(vb, make_block(1))
        cache.attach_data(vb, make_block(2))
        assert cache.data_blocks_used == 1
        assert vb.data[0] == 2

    def test_drop_data_releases_budget(self):
        cache = make_cache(data_blocks=1)
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_data(vb, make_block())
        vb.data_dirty = True
        cache.drop_data(vb)
        assert cache.data_blocks_used == 0
        assert vb.data is None
        assert not vb.data_dirty


class TestDeltaBudget:
    def test_attach_delta_allocates_segments(self):
        cache = make_cache(pool_bytes=4096)
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_delta(vb, delta_of(100))
        assert cache.segments.used_segments > 0
        assert vb.has_delta

    def test_reattach_frees_old_allocation(self):
        cache = make_cache(pool_bytes=4096)
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_delta(vb, delta_of(1000))
        big = cache.segments.used_segments
        cache.attach_delta(vb, delta_of(10))
        assert cache.segments.used_segments < big

    def test_drop_delta_releases_segments(self):
        cache = make_cache()
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_delta(vb, delta_of(100))
        cache.drop_delta(vb)
        assert cache.segments.used_segments == 0
        assert not vb.has_delta

    def test_remove_releases_everything(self):
        cache = make_cache()
        vb = vb_of(0)
        cache.insert(vb)
        cache.attach_data(vb, make_block())
        cache.attach_delta(vb, delta_of(100))
        cache.remove(0)
        assert len(cache) == 0
        assert cache.data_blocks_used == 0
        assert cache.segments.used_segments == 0


class TestReplacementPolicies:
    def test_policy1_first_non_reference_from_tail(self):
        cache = make_cache()
        ref = vb_of(0, BlockKind.REFERENCE)
        cache.insert(ref)
        cache.insert(vb_of(1))
        cache.insert(vb_of(2))
        victim = cache.find_virtual_victim()
        assert victim.lba == 1  # 0 is a reference, skip it

    def test_policy1_none_when_all_references(self):
        cache = make_cache()
        cache.insert(vb_of(0, BlockKind.REFERENCE))
        assert cache.find_virtual_victim() is None

    def test_policy2_first_data_holder_from_tail(self):
        cache = make_cache(data_blocks=4)
        for lba in range(3):
            vb = vb_of(lba)
            cache.insert(vb)
        vb1 = cache.get(1, touch=False)
        cache.attach_data(vb1, make_block())
        assert cache.find_data_victim().lba == 1

    def test_policy2_reference_data_evictable(self):
        """Section 4.3: 'The data block of a reference block can also be
        evicted'."""
        cache = make_cache()
        ref = vb_of(0, BlockKind.REFERENCE)
        cache.insert(ref)
        cache.attach_data(ref, make_block())
        assert cache.find_data_victim() is ref

    def test_policy3_first_non_reference_delta_holder(self):
        cache = make_cache()
        ref = vb_of(0, BlockKind.REFERENCE)
        cache.insert(ref)
        cache.attach_delta(ref, delta_of(10))
        assoc = vb_of(1, BlockKind.ASSOCIATE)
        cache.insert(assoc)
        cache.attach_delta(assoc, delta_of(10))
        assert cache.find_delta_victim() is assoc

    def test_policy3_none_when_only_reference_deltas(self):
        cache = make_cache()
        ref = vb_of(0, BlockKind.REFERENCE)
        cache.insert(ref)
        cache.attach_delta(ref, delta_of(10))
        assert cache.find_delta_victim() is None

    def test_victim_order_follows_lru_touch(self):
        cache = make_cache()
        for lba in range(3):
            vb = vb_of(lba)
            cache.insert(vb)
            cache.attach_delta(vb, delta_of(10))
        cache.touch(0)
        assert cache.find_delta_victim().lba == 1

    def test_references_listing(self):
        cache = make_cache()
        cache.insert(vb_of(0, BlockKind.REFERENCE))
        cache.insert(vb_of(1))
        refs = cache.references()
        assert [vb.lba for vb in refs] == [0]

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            make_cache(max_vbs=4)
