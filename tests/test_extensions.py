"""Tests for the extension subsystems: the NVRAM log variant, the host
page-cache wrapper, the sweep utility and the CLI."""

import numpy as np
import pytest

from repro.baselines import PureSSD, RAID0Storage
from repro.cli import main as cli_main
from repro.core import ICASHConfig, ICASHController
from repro.devices.nvram import NVRAM, NVRAMSpec
from repro.experiments.sweeps import (SweepPoint, render_sweep,
                                      sweep_config, sweep_workload)
from repro.sim.pagecache import HostCachedSystem
from repro.sim.request import BLOCK_SIZE
from repro.workloads import SysBenchWorkload

from conftest import make_block, make_dataset
from test_core_controller import family_dataset, small_config


class TestNVRAMDevice:
    def test_read_write_latencies(self):
        nvram = NVRAM(1024)
        read = nvram.read(0, 1)
        write = nvram.write(0, 1)
        assert read == pytest.approx(nvram.spec.read_s)
        assert write == pytest.approx(nvram.spec.write_s)
        assert write > read

    def test_streaming_blocks_cheaper(self):
        nvram = NVRAM(1024)
        eight = nvram.write(0, 8)
        assert eight < 8 * nvram.spec.write_s

    def test_orders_faster_than_hdd(self):
        from repro.devices.hdd import HardDiskDrive
        nvram = NVRAM(1024)
        hdd = HardDiskDrive(100_000)
        hdd.read(50_000, 1)  # park the head far away
        assert nvram.write(0, 1) * 100 < hdd.write(0, 1)

    def test_bounds(self):
        nvram = NVRAM(16)
        with pytest.raises(ValueError):
            nvram.read(16, 1)


class TestNVRAMLogVariant:
    def make(self, **overrides) -> ICASHController:
        return ICASHController(
            family_dataset(), small_config(log_on_nvram=True, **overrides))

    def test_content_roundtrip(self, rng):
        controller = self.make()
        controller.ingest()
        shadow = {}
        for _ in range(300):
            lba = int(rng.integers(0, 256))
            if rng.random() < 0.5:
                content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                controller.write(lba, [content])
                shadow[lba] = content
            elif lba in shadow:
                _, (out,) = controller.read(lba)
                assert np.array_equal(out, shadow[lba])

    def test_log_appends_hit_nvram_not_hdd(self):
        controller = self.make()
        controller.ingest()
        hdd_writes = controller.hdd.write_ops
        lba = next(iter(controller.delta_map_snapshot()))
        content = controller.backing.get(lba)
        content[0:30] = 1
        controller.write(lba, [content])
        controller.flush()
        assert controller.nvram.write_ops > 0
        assert controller.hdd.write_ops == hdd_writes

    def test_flush_is_orders_faster(self):
        slow = ICASHController(family_dataset(), small_config())
        fast = self.make()
        for controller in (slow, fast):
            controller.ingest()
            lba = next(iter(controller.delta_map_snapshot()))
            content = controller.backing.get(lba)
            content[0:30] = 1
            controller.write(lba, [content])
            # Park the HDD head away from the log tail, as a busy data
            # region would: the HDD flush now pays a real seek.
            controller.hdd.read(0, 1)
        assert fast.flush() * 10 < slow.flush()

    def test_recovery_from_nvram_log(self):
        from repro.core.recovery import recover
        controller = self.make()
        controller.ingest()
        lba = next(iter(controller.delta_map_snapshot()))
        content = controller.backing.get(lba)
        content[0:30] = 9
        controller.write(lba, [content])
        controller.flush()
        assert np.array_equal(recover(controller).read(lba), content)

    def test_devices_include_nvram(self):
        names = [d.name for d in self.make().devices()]
        assert "nvram" in names


class TestHostPageCache:
    def make(self, cache_blocks: int = 16) -> HostCachedSystem:
        return HostCachedSystem(PureSSD(make_dataset(64)), cache_blocks)

    def test_content_roundtrip(self, rng):
        system = self.make()
        shadow = {lba: system.inner.backing.get(lba) for lba in range(64)}
        for _ in range(300):
            lba = int(rng.integers(0, 64))
            if rng.random() < 0.5:
                content = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
                system.write(lba, [content])
                shadow[lba] = content
            else:
                _, (out,) = system.read(lba)
                assert np.array_equal(out, shadow[lba])

    def test_hits_avoid_the_inner_system(self):
        system = self.make()
        system.read(3)
        inner_reads = system.inner.ssd.read_ops
        latency, _ = system.read(3)
        assert system.inner.ssd.read_ops == inner_reads
        assert latency < 2e-6
        assert system.hit_ratio > 0

    def test_writes_are_absorbed_until_sync(self):
        system = self.make()
        system.write(0, [make_block(1)])
        assert system.inner.ssd.write_ops == 0
        system.flush()
        assert system.inner.ssd.write_ops == 1

    def test_dirty_eviction_writes_back_in_background(self):
        system = self.make(cache_blocks=1)
        system.write(0, [make_block(1)])
        system.write(1, [make_block(2)])  # evicts dirty page 0
        assert system.stats.count("writebacks") == 1
        assert system.inner.background_time > 0
        # Block 0's content must not be lost.
        _, (out,) = system.read(0)
        assert (out == 1).all()

    def test_miss_runs_fetch_as_one_span(self):
        system = self.make(cache_blocks=32)
        system.read(0, 8)
        assert system.inner.ssd.read_ops == 1  # one 8-block fetch

    def test_wraps_any_system(self, rng):
        wrapped = HostCachedSystem(RAID0Storage(make_dataset(64)), 8)
        _, (out,) = wrapped.read(5)
        assert np.array_equal(out, wrapped.inner.backing.get(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(cache_blocks=0)


class TestSweeps:
    def test_sweep_config_runs_each_value(self):
        points = sweep_config(
            lambda: SysBenchWorkload(scale=0.05, n_requests=400),
            "scan_interval", [200, 400])
        assert [p.value for p in points] == [200, 400]
        assert all(isinstance(p, SweepPoint) for p in points)
        assert all(p.result.transactions_per_s > 0 for p in points)

    def test_sweep_workload(self):
        results = sweep_workload([
            lambda: SysBenchWorkload(scale=0.05, n_requests=300, seed=1),
            lambda: SysBenchWorkload(scale=0.05, n_requests=300, seed=2),
        ])
        assert len(results) == 2

    def test_render_sweep(self):
        points = sweep_config(
            lambda: SysBenchWorkload(scale=0.05, n_requests=300),
            "scan_interval", [250])
        text = render_sweep(points)
        assert "scan_interval" in text
        assert "250" in text

    def test_render_empty(self):
        assert "empty" in render_sweep([])

    def test_bad_parameter_raises(self):
        with pytest.raises(TypeError):
            sweep_config(
                lambda: SysBenchWorkload(scale=0.05, n_requests=300),
                "not_a_field", [1])


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure6a" in out
        assert "sysbench" in out

    def test_profile(self, capsys):
        assert cli_main(["profile", "rubis", "--requests", "500"]) == 0
        out = capsys.readouterr().out
        assert "measured:" in out and "paper:" in out

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert cli_main(["figure", "figure99"]) == 2

    def test_sweep(self, capsys):
        assert cli_main(["sweep", "scan_interval", "300",
                         "--requests", "600"]) == 0
        out = capsys.readouterr().out
        assert "scan_interval" in out

    def test_sweep_bad_parameter(self, capsys):
        assert cli_main(["sweep", "bogus_field", "1",
                         "--requests", "300"]) == 2
