"""Unit tests for the logical content backing store."""

import numpy as np
import pytest

from repro.sim.backing import BackingStore
from repro.sim.request import BLOCK_SIZE

from conftest import make_block, make_dataset


class TestConstruction:
    def test_owns_a_copy(self):
        # Mutating the source array must not change the store's content.
        dataset = make_dataset(4)
        store = BackingStore(dataset)
        original = store.get(1).copy()
        dataset[1, :] = 0
        assert np.array_equal(store.get(1), original)

    def test_zeros_constructor(self):
        store = BackingStore.zeros(8)
        assert store.capacity_blocks == 8
        assert not store.get(3).any()

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape|expects"):
            BackingStore(np.zeros((4, 100), dtype=np.uint8))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="uint8"):
            BackingStore(np.zeros((4, BLOCK_SIZE), dtype=np.int32))


class TestAccess:
    def test_set_then_get_roundtrip(self):
        store = BackingStore.zeros(4)
        block = make_block(0x5A)
        store.set(2, block)
        assert np.array_equal(store.get(2), block)

    def test_get_returns_copy(self):
        store = BackingStore.zeros(4)
        got = store.get(0)
        got[:] = 1
        assert not store.get(0).any()

    def test_set_copies_in(self):
        store = BackingStore.zeros(4)
        block = make_block(7)
        store.set(0, block)
        block[:] = 0
        assert store.get(0)[0] == 7

    def test_view_is_readonly(self):
        store = BackingStore.zeros(4)
        view = store.view(1)
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 1

    def test_out_of_range_lba(self):
        store = BackingStore.zeros(4)
        with pytest.raises(IndexError):
            store.get(4)
        with pytest.raises(IndexError):
            store.set(-1, make_block())

    def test_set_rejects_wrong_size(self):
        store = BackingStore.zeros(4)
        with pytest.raises(ValueError, match="bytes"):
            store.set(0, np.zeros(10, dtype=np.uint8))
